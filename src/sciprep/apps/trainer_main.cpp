// trainer — end-to-end training driver with observability export.
//
// Runs the full §VI integration (encoded dataset -> DataPipeline -> model)
// like examples/cosmoflow_train, but with command-line control over the
// workload and decode placement, and with sciprep::obs wired up:
//
//   trainer --workload cosmo --samples 24 --epochs 2 --placement gpu
//           --trace-out trace.json --metrics-out metrics.json
//
// --trace-out enables the global tracer and writes the run's span timeline
// as Chrome/Perfetto trace_event JSON (open in https://ui.perfetto.dev).
// --metrics-out dumps the global metrics registry (per-stage latency
// histograms with p50/p90/p99, byte counters, pool telemetry) as JSON; a
// human-readable metrics table is always printed at the end of the run.
// --validate re-reads the emitted files and checks them: both must be valid
// JSON, the trace must contain the expected pipeline/sim span names, the
// metrics dump must contain the per-stage histograms, and the pipeline's
// PipelineStats snapshot must agree with the registry. Exits nonzero on any
// violation (this backs the obs_trace_smoke ctest).
//
// Checkpoint & resume (sciprep::guard, DESIGN.md §9):
//   --checkpoint-out FILE [--checkpoint-every N] writes a crash-consistent
//   progress snapshot every N delivered batches; --resume-from FILE restarts
//   a killed run at its last checkpoint and delivers the bit-identical
//   remaining batch sequence. --digest-out records per-batch content CRCs
//   (plus a final-counter footer); --expect-digest cross-checks a resumed
//   run's digests against an uninterrupted run's file, which is how the
//   kill_resume_smoke ctest proves the resume property end to end.
//   --kill-after-batches N simulates the crash (hard exit 42 after the Nth
//   delivered batch); --stage-deadline-ms arms the pipeline watchdog so
//   injected stalls (--inject-delay/--inject-delay-ms) trip deadlines and
//   flow through the fault policy like any other transient.
//
// Insight (sciprep::insight, DESIGN.md §10):
//   --metrics-jsonl FILE [--metrics-interval-ms N] streams delta-aware
//   metrics ticks (totals + per-second rates) to a JSONL time-series while
//   the run is live; --metrics-prom FILE additionally maintains a
//   Prometheus-style text file. --report-out FILE runs the critical-path
//   analyzer after the epoch loop and writes a ranked BottleneckReport (the
//   human table is printed too). --flightrec-dir DIR attaches the flight
//   recorder: every recovery/guard event dumps a rate-limited incident file
//   with the last spans, a metrics snapshot, the recovery-decision log, and
//   the pipeline's config fingerprint. --validate extends to these files.
#include <unistd.h>

#include <chrono>
#include <cmath>
#include <cstdio>
#include <thread>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "sciprep/apps/models.hpp"
#include "sciprep/common/crc.hpp"
#include "sciprep/common/error.hpp"
#include "sciprep/common/format.hpp"
#include "sciprep/codec/cam_codec.hpp"
#include "sciprep/codec/cosmo_codec.hpp"
#include "sciprep/common/log.hpp"
#include "sciprep/common/stats.hpp"
#include "sciprep/common/threadpool.hpp"
#include "sciprep/guard/guard.hpp"
#include "sciprep/data/cam_gen.hpp"
#include "sciprep/data/cosmo_gen.hpp"
#include "sciprep/dnn/loss.hpp"
#include "sciprep/dnn/optimizer.hpp"
#include "sciprep/fault/fault.hpp"
#include "sciprep/flow/fleet.hpp"
#include "sciprep/flow/merge.hpp"
#include "sciprep/insight/insight.hpp"
#include "sciprep/obs/obs.hpp"
#include "sciprep/perfscope/resource.hpp"
#include "sciprep/pipeline/pipeline.hpp"
#include "sciprep/serve/service.hpp"
#include "sciprep/shard/coordinator.hpp"
#include "sciprep/wire/client.hpp"
#include "sciprep/wire/server.hpp"

namespace {

using namespace sciprep;

struct TrainerArgs {
  std::string workload = "cosmo";   // cosmo | cam
  int samples = 24;
  int epochs = 2;
  int dim = 16;                     // cosmo volume edge / cam image edge
  int batch = 4;
  std::size_t workers = 2;
  std::string placement = "gpu";    // cpu | gpu
  std::string trace_out;
  std::string metrics_out;
  bool validate = false;
  // Fault injection + recovery (see src/sciprep/fault/).
  double inject_transient = 0;      // P(transient read fault) per sample read
  double inject_corrupt = 0;        // P(record corrupt at rest) per sample
  double inject_truncate = 0;       // P(record truncated at rest) per sample
  double inject_delay = 0;          // P(stalled read) per sample read
  double inject_delay_ms = 50;      // stall length when a delay fires
  std::uint64_t inject_seed = 1234;
  std::string fault_policy = "fail";  // fail | skip | retry-skip
  std::uint64_t fault_budget = 1u << 20;
  // Guard: checkpoint/resume + watchdog deadlines (see src/sciprep/guard/).
  std::string checkpoint_out;       // snapshot file, written atomically
  std::uint64_t checkpoint_every = 32;  // delivered batches per checkpoint
  std::string resume_from;          // snapshot file to resume from
  double stage_deadline_ms = 0;     // decode/gunzip/io.read deadline (0 = off)
  std::string digest_out;           // per-batch content CRC log
  std::string expect_digest;        // digest file to cross-check against
  std::uint64_t kill_after_batches = 0;  // simulate a crash (exit 42)
  // Insight: continuous export, bottleneck report, flight recorder.
  double metrics_interval_ms = 100;  // exporter sampling interval
  bool resource_sampling = true;     // proc.* gauges on the exporter cadence
  std::string metrics_jsonl;         // JSONL time-series ("" = off)
  std::string metrics_prom;          // Prometheus text file ("" = off)
  std::string report_out;            // BottleneckReport JSON ("" = off)
  std::string flightrec_dir;         // incident files directory ("" = off)
  // Shard: simulated multi-rank run with elastic recovery (sciprep::shard).
  int ranks = 0;                     // 0 = unsharded; N >= 1 = shard mode
  int kill_rank = -1;                // rank to kill mid-run (-1 = none)
  std::uint64_t kill_at_batch = 8;   // globally delivered batches before kill
  bool resharding = true;            // elastic re-shard vs abort on rank loss
  bool staged = true;                // per-rank staged dataset placement
  double heartbeat_ms = 250;         // per-rank heartbeat deadline
  std::string checkpoint_dir;        // coordinated rank-<r>.ckpt directory
  // Serve: resident multi-tenant data service (sciprep::serve).
  bool serve = false;                // serve mode: N tenants on one service
  int tenants = 4;                   // concurrent tenant sessions
  int faulty_tenant = -1;            // tenant given the injector + policy
  int kill_tenant = -1;              // tenant whose consumer dies mid-epoch
  bool overload = false;             // shrink the byte budget below demand
  std::uint64_t serve_cache_mb = 64; // shared decode cache size (0 = off)
  double lease_ms = 200;             // session lease deadline
  // Wire: cross-process serving over AF_UNIX sockets (sciprep::wire).
  std::string serve_socket;          // server mode: listen on this path
  std::string connect;               // client mode: attach to this path
  std::string tenant_name;           // client mode: tenant to attach as
  bool expect_resumed = false;       // client: assert this process resumed
  double inject_wire_corrupt = 0;    // server: P(outgoing frame corrupted)
  double inject_wire_drop = 0;       // server: P(connection severed mid-reply)
  // Flow: cross-process tracing + fleet federation (sciprep::flow).
  bool trace_propagate = false;      // client: trace context on every NEXT
  std::string flow_merge_out;        // client: merged two-process trace file
  std::string fleet_out;             // client: fleet.v1 JSONL of server deltas
  double throttle_wire_ms = 0;       // server: per-reply send throttle (drill)

  [[nodiscard]] bool sharded() const { return ranks > 0; }
  [[nodiscard]] bool wire_server() const { return !serve_socket.empty(); }
  [[nodiscard]] bool wire_client() const { return !connect.empty(); }

  [[nodiscard]] bool injecting() const {
    return inject_transient > 0 || inject_corrupt > 0 || inject_truncate > 0 ||
           inject_delay > 0;
  }
};

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--workload cosmo|cam] [--samples N] [--epochs N]\n"
      "          [--dim N] [--batch N] [--workers N] [--placement cpu|gpu]\n"
      "          [--trace-out FILE] [--metrics-out FILE] [--validate]\n"
      "          [--inject-transient P] [--inject-corrupt P]\n"
      "          [--inject-truncate P] [--inject-delay P]\n"
      "          [--inject-delay-ms MS] [--inject-seed N]\n"
      "          [--fault-policy fail|skip|retry-skip] [--fault-budget N]\n"
      "          [--checkpoint-out FILE] [--checkpoint-every N]\n"
      "          [--resume-from FILE] [--stage-deadline-ms MS]\n"
      "          [--digest-out FILE] [--expect-digest FILE]\n"
      "          [--kill-after-batches N]\n"
      "          [--metrics-interval-ms N] [--metrics-jsonl FILE]\n"
      "          [--metrics-prom FILE] [--report-out FILE]\n"
      "          [--flightrec-dir DIR] [--no-resource-sampling]\n"
      "          [--ranks N] [--kill-rank R] [--kill-at-batch N]\n"
      "          [--no-resharding] [--unstaged] [--heartbeat-ms MS]\n"
      "          [--checkpoint-dir DIR]\n"
      "          [--serve] [--tenants N] [--faulty-tenant T]\n"
      "          [--kill-tenant T] [--overload] [--serve-cache-mb N]\n"
      "          [--lease-ms MS]\n"
      "          [--serve-socket PATH] [--connect PATH] [--tenant-name T]\n"
      "          [--resumed] [--inject-wire-corrupt P]\n"
      "          [--inject-wire-drop P]\n"
      "          [--trace-propagate] [--flow-merge FILE] [--fleet-out FILE]\n"
      "          [--throttle-wire-ms MS]\n",
      argv0);
  std::exit(2);
}

TrainerArgs parse_args(int argc, char** argv) {
  TrainerArgs args;
  for (int i = 1; i < argc; ++i) {
    const std::string_view a = argv[i];
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) usage(argv[0]);
      return argv[++i];
    };
    if (a == "--workload") {
      args.workload = value();
    } else if (a == "--samples") {
      args.samples = std::atoi(value());
    } else if (a == "--epochs") {
      args.epochs = std::atoi(value());
    } else if (a == "--dim") {
      args.dim = std::atoi(value());
    } else if (a == "--batch") {
      args.batch = std::atoi(value());
    } else if (a == "--workers") {
      args.workers = static_cast<std::size_t>(std::atoi(value()));
    } else if (a == "--placement") {
      args.placement = value();
    } else if (a == "--trace-out") {
      args.trace_out = value();
    } else if (a == "--metrics-out") {
      args.metrics_out = value();
    } else if (a == "--validate") {
      args.validate = true;
    } else if (a == "--inject-transient") {
      args.inject_transient = std::atof(value());
    } else if (a == "--inject-corrupt") {
      args.inject_corrupt = std::atof(value());
    } else if (a == "--inject-truncate") {
      args.inject_truncate = std::atof(value());
    } else if (a == "--inject-delay") {
      args.inject_delay = std::atof(value());
    } else if (a == "--inject-delay-ms") {
      args.inject_delay_ms = std::atof(value());
    } else if (a == "--inject-seed") {
      args.inject_seed = static_cast<std::uint64_t>(std::atoll(value()));
    } else if (a == "--fault-policy") {
      args.fault_policy = value();
    } else if (a == "--fault-budget") {
      args.fault_budget = static_cast<std::uint64_t>(std::atoll(value()));
    } else if (a == "--checkpoint-out") {
      args.checkpoint_out = value();
    } else if (a == "--checkpoint-every") {
      args.checkpoint_every = static_cast<std::uint64_t>(std::atoll(value()));
    } else if (a == "--resume-from") {
      args.resume_from = value();
    } else if (a == "--stage-deadline-ms") {
      args.stage_deadline_ms = std::atof(value());
    } else if (a == "--digest-out") {
      args.digest_out = value();
    } else if (a == "--expect-digest") {
      args.expect_digest = value();
    } else if (a == "--kill-after-batches") {
      args.kill_after_batches = static_cast<std::uint64_t>(std::atoll(value()));
    } else if (a == "--metrics-interval-ms") {
      args.metrics_interval_ms = std::atof(value());
    } else if (a == "--metrics-jsonl") {
      args.metrics_jsonl = value();
    } else if (a == "--metrics-prom") {
      args.metrics_prom = value();
    } else if (a == "--report-out") {
      args.report_out = value();
    } else if (a == "--flightrec-dir") {
      args.flightrec_dir = value();
    } else if (a == "--no-resource-sampling") {
      args.resource_sampling = false;
    } else if (a == "--ranks") {
      args.ranks = std::atoi(value());
    } else if (a == "--kill-rank") {
      args.kill_rank = std::atoi(value());
    } else if (a == "--kill-at-batch") {
      args.kill_at_batch = static_cast<std::uint64_t>(std::atoll(value()));
    } else if (a == "--no-resharding") {
      args.resharding = false;
    } else if (a == "--unstaged") {
      args.staged = false;
    } else if (a == "--heartbeat-ms") {
      args.heartbeat_ms = std::atof(value());
    } else if (a == "--checkpoint-dir") {
      args.checkpoint_dir = value();
    } else if (a == "--serve") {
      args.serve = true;
    } else if (a == "--tenants") {
      args.tenants = std::atoi(value());
    } else if (a == "--faulty-tenant") {
      args.faulty_tenant = std::atoi(value());
    } else if (a == "--kill-tenant") {
      args.kill_tenant = std::atoi(value());
    } else if (a == "--overload") {
      args.overload = true;
    } else if (a == "--serve-cache-mb") {
      args.serve_cache_mb = static_cast<std::uint64_t>(std::atoll(value()));
    } else if (a == "--lease-ms") {
      args.lease_ms = std::atof(value());
    } else if (a == "--serve-socket") {
      args.serve_socket = value();
    } else if (a == "--connect") {
      args.connect = value();
    } else if (a == "--tenant-name") {
      args.tenant_name = value();
    } else if (a == "--resumed") {
      args.expect_resumed = true;
    } else if (a == "--inject-wire-corrupt") {
      args.inject_wire_corrupt = std::atof(value());
    } else if (a == "--inject-wire-drop") {
      args.inject_wire_drop = std::atof(value());
    } else if (a == "--trace-propagate") {
      args.trace_propagate = true;
    } else if (a == "--flow-merge") {
      args.flow_merge_out = value();
    } else if (a == "--fleet-out") {
      args.fleet_out = value();
    } else if (a == "--throttle-wire-ms") {
      args.throttle_wire_ms = std::atof(value());
    } else {
      std::fprintf(stderr, "trainer: unknown flag '%s'\n", argv[i]);
      usage(argv[0]);
    }
  }
  if (args.workload != "cosmo" && args.workload != "cam") usage(argv[0]);
  if (args.placement != "cpu" && args.placement != "gpu") usage(argv[0]);
  if (args.samples < 1 || args.epochs < 1 || args.dim < 4 || args.batch < 1) {
    usage(argv[0]);
  }
  if (args.fault_policy != "fail" && args.fault_policy != "skip" &&
      args.fault_policy != "retry-skip") {
    usage(argv[0]);
  }
  if (args.ranks < 0 || args.kill_rank >= args.ranks) usage(argv[0]);
  if (args.serve) {
    if (args.sharded()) usage(argv[0]);  // serve and shard modes are exclusive
    if (args.tenants < 1 || args.faulty_tenant >= args.tenants ||
        args.kill_tenant >= args.tenants || args.lease_ms <= 0) {
      usage(argv[0]);
    }
  }
  if (args.wire_server()) {
    // The wire server is the serve drill behind a socket: same tenant knobs,
    // but consumers are separate processes, so in-process consumer drills
    // (--kill-tenant) don't apply.
    if (args.wire_client() || args.serve || args.sharded() ||
        args.kill_tenant >= 0 || args.tenants < 1 || args.lease_ms <= 0) {
      usage(argv[0]);
    }
  }
  if (args.wire_client()) {
    if (args.serve || args.sharded() || args.tenant_name.empty()) {
      usage(argv[0]);
    }
  }
  // Flow flags bind to a specific arm: propagation (and everything riding on
  // it) is a client feature, the send throttle a server drill.
  if (args.trace_propagate && !args.wire_client()) usage(argv[0]);
  if ((!args.flow_merge_out.empty() || !args.fleet_out.empty()) &&
      !args.trace_propagate) {
    usage(argv[0]);
  }
  if (args.throttle_wire_ms > 0 && !args.wire_server()) usage(argv[0]);
  return args;
}

fault::FaultPolicy make_fault_policy(const TrainerArgs& args) {
  fault::FaultPolicy policy;  // default: kFail everywhere
  if (args.fault_policy == "skip") {
    policy.on_transient = fault::Action::kSkipSample;
    policy.on_corrupt = fault::Action::kSkipSample;
  } else if (args.fault_policy == "retry-skip") {
    policy.on_transient = fault::Action::kRetry;
    policy.retry = {.max_attempts = 3,
                    .backoff_seconds = 1e-4,
                    .backoff_multiplier = 2};
    policy.on_retry_exhausted = fault::Action::kSkipSample;
    policy.on_corrupt = fault::Action::kSkipSample;
  }
  policy.error_budget = args.fault_budget;
  return policy;
}

/// Configure the trainer's injector: transient faults on the sample-read
/// site, at-rest corruption on whichever record-format site the dataset
/// uses (all three are armed; the pipeline consults the one matching its
/// storage format).
void configure_injector(fault::Injector& injector, const TrainerArgs& args) {
  injector.configure(fault::Site::kIoRead,
                     {.transient_probability = args.inject_transient,
                      .delay_probability = args.inject_delay,
                      .delay_seconds = args.inject_delay_ms / 1e3});
  const fault::SiteConfig corrupt{.corrupt_probability = args.inject_corrupt,
                                  .truncate_probability = args.inject_truncate};
  injector.configure(fault::Site::kTfrecordPayloadCrc, corrupt);
  injector.configure(fault::Site::kH5ChunkCrc, corrupt);
  injector.configure(fault::Site::kCodecDecode, corrupt);
  // Wire transport drills (server side): bit-flip outgoing frames and sever
  // connections mid-reply. Both must be absorbed by the client's CRC check +
  // reconnect/ack protocol without perturbing the delivered stream.
  injector.configure(fault::Site::kWireFrameCrc,
                     {.corrupt_probability = args.inject_wire_corrupt});
  injector.configure(fault::Site::kWireConnDrop,
                     {.transient_probability = args.inject_wire_drop});
}

/// Arm the pipeline's guard features from the command line: one deadline for
/// every decode-path stage (the end-to-end prefetch wait gets 8x — it covers
/// a whole batch of samples, not one).
void apply_guard_config(pipeline::PipelineConfig& pcfg,
                        const TrainerArgs& args) {
  if (args.stage_deadline_ms > 0) {
    const double s = args.stage_deadline_ms / 1e3;
    pcfg.deadlines.decode_seconds = s;
    pcfg.deadlines.gunzip_seconds = s;
    pcfg.deadlines.io_read_seconds = s;
    pcfg.deadlines.prefetch_wait_seconds = 8 * s;
  }
}

/// Per-run guard driver: resume, per-batch content digests, periodic
/// checkpoints, and the simulated crash. One instance spans the epoch loop of
/// either workload arm.
struct RunGuard {
  explicit RunGuard(const TrainerArgs& args) : args_(args) {
    if (!args.checkpoint_out.empty()) {
      checkpointer_.emplace(args.checkpoint_out, args.checkpoint_every,
                            &obs::MetricsRegistry::global());
    }
  }

  /// Restore `pipe` from --resume-from (if given). Returns the epoch the run
  /// starts at; the caller must NOT start_epoch() that first epoch — resume()
  /// has already positioned the pipeline inside it.
  int begin(pipeline::DataPipeline& pipe) {
    if (args_.resume_from.empty()) return 0;
    const guard::Snapshot snap = guard::read_snapshot(args_.resume_from);
    pipe.resume(snap);
    resumed_ = true;
    std::printf("resume: %s -> epoch %llu, %llu samples into the order, "
                "batch %llu\n",
                args_.resume_from.c_str(),
                static_cast<unsigned long long>(snap.epoch),
                static_cast<unsigned long long>(snap.cursor),
                static_cast<unsigned long long>(snap.batch_index));
    return static_cast<int>(snap.epoch);
  }

  [[nodiscard]] bool skip_epoch_reset(int epoch, int first_epoch) const {
    return resumed_ && epoch == first_epoch;
  }

  /// Content CRC of a delivered batch: every tensor's shape, values, and
  /// labels, chained. Two runs produce the same digest iff their delivered
  /// batches are bit-identical (augmentations included).
  static std::uint32_t batch_crc(const pipeline::Batch& batch) {
    std::uint32_t crc = 0;
    for (const auto& t : batch.samples) {
      crc = crc32c(as_bytes(t.shape), crc);
      crc = crc32c(as_bytes(t.values), crc);
      crc = crc32c(as_bytes(t.float_labels), crc);
      crc = crc32c(as_bytes(t.byte_labels), crc);
    }
    return crc;
  }

  /// Called once per delivered batch, before the train step: record the
  /// digest, checkpoint if the cadence says so, and crash if asked to.
  void on_batch(pipeline::DataPipeline& pipe, const pipeline::Batch& batch) {
    ++delivered_;
    digest_lines_.push_back(fmt("B {} {} {:08x}", batch.epoch,
                                batch.index_in_epoch, batch_crc(batch)));
    if (checkpointer_ && checkpointer_->due(delivered_)) {
      checkpointer_->write(pipe.snapshot());
    }
    if (args_.kill_after_batches > 0 &&
        delivered_ >= args_.kill_after_batches) {
      // Simulated crash: no flushing, no destructors, no atexit — the next
      // run has only the (atomically written) checkpoint to go on.
      std::printf("kill: simulating crash after batch %llu\n",
                  static_cast<unsigned long long>(delivered_));
      std::fflush(stdout);
      std::_Exit(42);
    }
  }

  /// Write --digest-out and cross-check --expect-digest. Returns the number
  /// of violations (0 = clean).
  int finish(const pipeline::PipelineStats& stats,
             const std::vector<std::size_t>& quarantine) {
    const std::uint32_t qcrc = crc32c(as_bytes(quarantine));
    // The footer excludes the live retry counter by contract: retries are
    // spent wall clock, and a resumed run legitimately repeats some.
    const std::string footer =
        fmt("T samples {} batches {} bytes {} skipped {} fallbacks {} "
            "qcrc {:08x}",
            stats.samples, stats.batches, stats.bytes_at_rest,
            stats.samples_skipped, stats.fallbacks, qcrc);
    if (!args_.digest_out.empty()) {
      std::ofstream out(args_.digest_out, std::ios::trunc);
      if (!out) {
        throw IoError(fmt("trainer: cannot write '{}'", args_.digest_out));
      }
      for (const std::string& line : digest_lines_) out << line << '\n';
      out << footer << '\n';
      std::printf("digest: %zu batches -> %s\n", digest_lines_.size(),
                  args_.digest_out.c_str());
    }
    if (args_.expect_digest.empty()) return 0;

    int failures = 0;
    auto fail = [&](const std::string& what) {
      std::fprintf(stderr, "digest: FAIL %s\n", what.c_str());
      ++failures;
    };
    std::ifstream in(args_.expect_digest);
    if (!in) {
      fail(fmt("cannot read expected digest '{}'", args_.expect_digest));
      return failures;
    }
    // Index the uninterrupted run's lines by (epoch, batch) key. A resumed
    // run produces a suffix of them: every line it produced must match the
    // full run's line exactly, and the final counters must agree.
    std::vector<std::string> expected_lines;
    std::string expected_footer;
    for (std::string line; std::getline(in, line);) {
      if (line.rfind("B ", 0) == 0) expected_lines.push_back(line);
      if (line.rfind("T ", 0) == 0) expected_footer = line;
    }
    auto key_of = [](const std::string& line) {
      return line.substr(0, line.rfind(' '));  // "B <epoch> <index>"
    };
    std::size_t matched = 0;
    for (const std::string& line : digest_lines_) {
      bool found = false;
      for (const std::string& exp : expected_lines) {
        if (key_of(exp) != key_of(line)) continue;
        found = true;
        if (exp != line) {
          fail(fmt("batch digest mismatch: produced '{}', expected '{}'",
                   line, exp));
        } else {
          ++matched;
        }
        break;
      }
      if (!found) fail(fmt("unexpected batch '{}'", key_of(line)));
    }
    if (footer != expected_footer) {
      fail(fmt("final counters differ: produced '{}', expected '{}'", footer,
               expected_footer));
    }
    if (failures == 0) {
      std::printf("digest: OK — %zu batches bit-identical, counters agree\n",
                  matched);
    }
    return failures;
  }

 private:
  const TrainerArgs& args_;
  std::optional<guard::Checkpointer> checkpointer_;
  std::vector<std::string> digest_lines_;
  std::uint64_t delivered_ = 0;
  bool resumed_ = false;
};

/// Run the CosmoFlow arm: encoded dataset -> pipeline (with one augmentation
/// op so the pipeline.ops stage is exercised) -> tiny 3D-conv model.
void run_cosmo(const TrainerArgs& args, sim::SimGpu& gpu,
               fault::Injector& injector, RunGuard& rg,
               insight::FlightRecorder* recorder,
               pipeline::PipelineStats& stats_out,
               std::vector<std::size_t>& quarantine_out,
               std::uint64_t& fingerprint_out) {
  data::CosmoGenConfig gen_cfg;
  gen_cfg.dim = args.dim;
  gen_cfg.seed = 2022;
  const data::CosmoGenerator generator(gen_cfg);
  const codec::CosmoCodec codec;
  const auto dataset = pipeline::InMemoryDataset::make_cosmo(
      generator, static_cast<std::size_t>(args.samples),
      pipeline::StorageFormat::kEncoded, &codec);
  std::printf("dataset: %zu encoded cosmo samples, %s at rest\n",
              dataset.size(), format_bytes(dataset.total_bytes()).c_str());

  pipeline::PipelineConfig pcfg;
  pcfg.batch_size = args.batch;
  pcfg.worker_threads = args.workers;
  pcfg.seed = 7;
  pcfg.decode_placement = args.placement == "gpu" ? codec::Placement::kGpu
                                                  : codec::Placement::kCpu;
  pcfg.ops.push_back(std::make_shared<pipeline::ScaleOp>(1.0F));
  pcfg.metrics = &obs::MetricsRegistry::global();
  pcfg.fault_policy = make_fault_policy(args);
  pcfg.injector = args.injecting() ? &injector : nullptr;
  apply_guard_config(pcfg, args);
  if (recorder != nullptr) pcfg.on_recovery_event = recorder->listener();
  pipeline::DataPipeline pipe(dataset, codec, pcfg,
                              pcfg.decode_placement == codec::Placement::kGpu
                                  ? &gpu
                                  : nullptr);
  fingerprint_out = pipe.config_fingerprint();
  if (recorder != nullptr) recorder->set_config_fingerprint(fingerprint_out);

  Rng rng(11);
  auto model = apps::build_cosmoflow_model(args.dim, rng);
  dnn::Sgd optimizer(*model, {.learning_rate = 0.02F, .momentum = 0.9F,
                              .weight_decay = 0.0F, .warmup_steps = 4,
                              .decay_every = 0});

  const int first_epoch = rg.begin(pipe);
  for (int epoch = first_epoch; epoch < args.epochs; ++epoch) {
    if (!rg.skip_epoch_reset(epoch, first_epoch)) {
      pipe.start_epoch(static_cast<std::uint64_t>(epoch));
    }
    double epoch_loss = 0;
    std::size_t steps = 0;
    pipeline::Batch batch;
    while (pipe.next_batch(batch)) {
      rg.on_batch(pipe, batch);
      double batch_loss = 0;
      for (const auto& tensor : batch.samples) {
        const dnn::Tensor input = apps::cosmo_input_from_fp16(tensor);
        const dnn::Tensor pred = model->forward(input);
        const auto loss = dnn::mse_loss(pred, tensor.float_labels);
        model->backward(loss.grad);
        batch_loss += loss.loss;
      }
      optimizer.step(static_cast<float>(batch.size()));
      epoch_loss += batch_loss / batch.size();
      ++steps;
    }
    std::printf("epoch %d: mean loss %.5f (%zu steps)\n", epoch,
                steps > 0 ? epoch_loss / static_cast<double>(steps) : 0.0,
                steps);
  }
  stats_out = pipe.stats();
  quarantine_out = pipe.quarantine();
}

/// Run the DeepCAM arm: decode-only batch pump (the paper's DeepCAM
/// evaluation is loader-bound; the model step adds nothing to the
/// observability surface being exercised here).
void run_cam(const TrainerArgs& args, sim::SimGpu& gpu,
             fault::Injector& injector, RunGuard& rg,
             insight::FlightRecorder* recorder,
             pipeline::PipelineStats& stats_out,
             std::vector<std::size_t>& quarantine_out,
             std::uint64_t& fingerprint_out) {
  data::CamGenConfig gen_cfg;
  gen_cfg.height = args.dim;
  gen_cfg.width = args.dim;
  gen_cfg.channels = 4;
  gen_cfg.seed = 2022;
  const data::CamGenerator generator(gen_cfg);
  const codec::CamCodec codec;
  const auto dataset = pipeline::InMemoryDataset::make_cam(
      generator, static_cast<std::size_t>(args.samples),
      pipeline::StorageFormat::kEncoded, &codec);
  std::printf("dataset: %zu encoded cam samples, %s at rest\n", dataset.size(),
              format_bytes(dataset.total_bytes()).c_str());

  pipeline::PipelineConfig pcfg;
  pcfg.batch_size = args.batch;
  pcfg.worker_threads = args.workers;
  pcfg.seed = 7;
  pcfg.decode_placement = args.placement == "gpu" ? codec::Placement::kGpu
                                                  : codec::Placement::kCpu;
  pcfg.ops.push_back(std::make_shared<pipeline::RandomFlipX>());
  pcfg.metrics = &obs::MetricsRegistry::global();
  pcfg.fault_policy = make_fault_policy(args);
  pcfg.injector = args.injecting() ? &injector : nullptr;
  apply_guard_config(pcfg, args);
  if (recorder != nullptr) pcfg.on_recovery_event = recorder->listener();
  pipeline::DataPipeline pipe(dataset, codec, pcfg,
                              pcfg.decode_placement == codec::Placement::kGpu
                                  ? &gpu
                                  : nullptr);
  fingerprint_out = pipe.config_fingerprint();
  if (recorder != nullptr) recorder->set_config_fingerprint(fingerprint_out);

  const int first_epoch = rg.begin(pipe);
  for (int epoch = first_epoch; epoch < args.epochs; ++epoch) {
    if (!rg.skip_epoch_reset(epoch, first_epoch)) {
      pipe.start_epoch(static_cast<std::uint64_t>(epoch));
    }
    pipeline::Batch batch;
    std::size_t steps = 0;
    while (pipe.next_batch(batch)) {
      rg.on_batch(pipe, batch);
      ++steps;
    }
    std::printf("epoch %d: %zu batches decoded\n", epoch, steps);
  }
  stats_out = pipe.stats();
  quarantine_out = pipe.quarantine();
}

/// Shard-mode run summary, handed to the digest writer and validator.
struct ShardRunResult {
  shard::ShardStats stats;
  std::uint32_t stream_digest = 0;
  std::vector<std::string> digest_lines;  // "S <epoch> <pos> <crc>"
  std::uint64_t delivered_batches = 0;
  bool killed = false;
};

/// Run the sharded arm (sciprep::shard, DESIGN.md §12): N simulated ranks
/// deliver a deterministic global shuffle; --kill-rank injects a mid-epoch
/// rank death whose shard is elastically redistributed. The merged stream is
/// digest-verified — the "S" lines are emitted from the coordinator's
/// position-keyed digest at the END of the run, so a killed-and-recovered
/// run writes the byte-identical digest file a healthy run does.
void run_shard(const TrainerArgs& args, fault::Injector& injector,
               insight::FlightRecorder* recorder, ShardRunResult& out) {
  std::unique_ptr<codec::SampleCodec> codec;
  std::unique_ptr<pipeline::InMemoryDataset> dataset;
  pipeline::PipelineConfig pcfg;
  if (args.workload == "cosmo") {
    data::CosmoGenConfig gen_cfg;
    gen_cfg.dim = args.dim;
    gen_cfg.seed = 2022;
    const data::CosmoGenerator generator(gen_cfg);
    codec = std::make_unique<codec::CosmoCodec>();
    dataset = std::make_unique<pipeline::InMemoryDataset>(
        pipeline::InMemoryDataset::make_cosmo(
            generator, static_cast<std::size_t>(args.samples),
            pipeline::StorageFormat::kEncoded, codec.get()));
    pcfg.ops.push_back(std::make_shared<pipeline::ScaleOp>(1.0F));
  } else {
    data::CamGenConfig gen_cfg;
    gen_cfg.height = args.dim;
    gen_cfg.width = args.dim;
    gen_cfg.channels = 4;
    gen_cfg.seed = 2022;
    const data::CamGenerator generator(gen_cfg);
    codec = std::make_unique<codec::CamCodec>();
    dataset = std::make_unique<pipeline::InMemoryDataset>(
        pipeline::InMemoryDataset::make_cam(
            generator, static_cast<std::size_t>(args.samples),
            pipeline::StorageFormat::kEncoded, codec.get()));
    pcfg.ops.push_back(std::make_shared<pipeline::RandomFlipX>());
  }
  std::printf("dataset: %zu encoded %s samples, %s at rest, %d rank(s)\n",
              dataset->size(), args.workload.c_str(),
              format_bytes(dataset->total_bytes()).c_str(), args.ranks);

  pcfg.batch_size = args.batch;
  pcfg.worker_threads = args.workers;
  pcfg.seed = 7;
  pcfg.decode_placement = args.placement == "gpu" ? codec::Placement::kGpu
                                                  : codec::Placement::kCpu;
  pcfg.fault_policy = make_fault_policy(args);
  pcfg.injector = args.injecting() ? &injector : nullptr;
  apply_guard_config(pcfg, args);

  shard::ShardConfig scfg;
  scfg.world = args.ranks;
  scfg.pipeline = pcfg;
  scfg.staged = args.staged;
  scfg.elastic = args.resharding;
  scfg.heartbeat_deadline_seconds = args.heartbeat_ms / 1e3;
  scfg.checkpoint_every_batches = args.checkpoint_every;
  scfg.checkpoint_dir = args.checkpoint_dir;
  scfg.verify_stream = true;  // shard mode exists to prove the stream digest
  scfg.metrics = &obs::MetricsRegistry::global();
  if (pcfg.decode_placement == codec::Placement::kGpu) {
    scfg.gpu_factory = [](int /*rank*/) {
      return std::make_unique<sim::SimGpu>(
          sim::SimGpu::Config{.sm_count = 80, .warps_per_sm = 8});
    };
  }
  fault::RecoveryListener forward =
      recorder != nullptr ? recorder->listener() : fault::RecoveryListener{};
  scfg.on_event = [forward](const fault::RecoveryEvent& event) {
    if (event.kind == fault::EventKind::kRankLost ||
        event.kind == fault::EventKind::kReshard) {
      std::printf("shard: [%s] %s\n", event.scope.c_str(),
                  event.detail.c_str());
    }
    if (forward) forward(event);
  };

  shard::ShardCoordinator coordinator(*dataset, *codec, std::move(scfg));
  if (recorder != nullptr) {
    recorder->set_config_fingerprint(coordinator.config_fingerprint());
  }

  const bool kill_armed = args.kill_rank >= 0;
  for (int epoch = 0; epoch < args.epochs; ++epoch) {
    if (epoch > 0) coordinator.start_epoch(static_cast<std::uint64_t>(epoch));
    shard::ShardBatch sb;
    std::size_t steps = 0;
    while (coordinator.step(sb)) {
      ++steps;
      ++out.delivered_batches;
      if (kill_armed && !out.killed &&
          out.delivered_batches >= args.kill_at_batch) {
        std::printf("shard: killing rank %d after global batch %llu\n",
                    args.kill_rank,
                    static_cast<unsigned long long>(out.delivered_batches));
        coordinator.kill_rank(args.kill_rank);
        out.killed = true;
      }
    }
    std::printf("epoch %d: %zu batches across %d live rank(s)\n", epoch,
                steps, coordinator.alive_count());
  }

  out.stats = coordinator.aggregate();
  out.stream_digest = coordinator.digest().stream_digest();
  for (int epoch = 0; epoch < args.epochs; ++epoch) {
    for (const auto& [position, crc] :
         coordinator.digest().entries(static_cast<std::uint64_t>(epoch))) {
      out.digest_lines.push_back(fmt("S {} {} {:08x}", epoch, position, crc));
    }
  }
}

/// Shard-mode digest file: "S" lines from the merged global stream plus a
/// footer restricted to rank-count-invariant counters (batch counts and
/// retries legitimately differ across worlds; delivered samples, bytes, and
/// skips may not). Cross-checking --expect-digest demands the exact same
/// position->crc set in both directions. Returns violations (0 = clean).
int finish_shard_digest(const TrainerArgs& args, const ShardRunResult& run) {
  const std::string footer =
      fmt("T samples {} bytes {} skipped {} stream {:08x}",
          run.stats.totals.samples, run.stats.totals.bytes_at_rest,
          run.stats.totals.samples_skipped, run.stream_digest);
  if (!args.digest_out.empty()) {
    std::ofstream out(args.digest_out, std::ios::trunc);
    if (!out) {
      throw IoError(fmt("trainer: cannot write '{}'", args.digest_out));
    }
    for (const std::string& line : run.digest_lines) out << line << '\n';
    out << footer << '\n';
    std::printf("digest: %zu positions -> %s\n", run.digest_lines.size(),
                args.digest_out.c_str());
  }
  if (args.expect_digest.empty()) return 0;

  int failures = 0;
  auto fail = [&](const std::string& what) {
    std::fprintf(stderr, "digest: FAIL %s\n", what.c_str());
    ++failures;
  };
  std::ifstream in(args.expect_digest);
  if (!in) {
    fail(fmt("cannot read expected digest '{}'", args.expect_digest));
    return failures;
  }
  std::vector<std::string> expected_lines;
  std::string expected_footer;
  for (std::string line; std::getline(in, line);) {
    if (line.rfind("S ", 0) == 0) expected_lines.push_back(line);
    if (line.rfind("T ", 0) == 0) expected_footer = line;
  }
  // Both files list (epoch, position) ascending, so bit-identical streams
  // compare as equal ordered sequences — any divergence names its line.
  if (expected_lines.size() != run.digest_lines.size()) {
    fail(fmt("stream length differs: produced {} positions, expected {}",
             run.digest_lines.size(), expected_lines.size()));
  }
  const std::size_t common =
      std::min(expected_lines.size(), run.digest_lines.size());
  for (std::size_t i = 0; i < common; ++i) {
    if (run.digest_lines[i] != expected_lines[i]) {
      fail(fmt("stream diverged: produced '{}', expected '{}'",
               run.digest_lines[i], expected_lines[i]));
      break;  // one divergence names the spot; the rest is noise
    }
  }
  if (footer != expected_footer) {
    fail(fmt("final counters differ: produced '{}', expected '{}'", footer,
             expected_footer));
  }
  if (failures == 0) {
    std::printf("digest: OK — %zu global positions bit-identical, counters "
                "agree\n",
                run.digest_lines.size());
  }
  return failures;
}

/// --validate for shard mode: exact-once accounting across the world, the
/// digest covering every delivered sample, and the failure bookkeeping.
int validate_shard(const TrainerArgs& args, const ShardRunResult& run) {
  int failures = 0;
  auto check = [&](bool ok, const std::string& what) {
    if (!ok) {
      std::fprintf(stderr, "validate: FAIL %s\n", what.c_str());
      ++failures;
    }
  };
  const std::uint64_t expected =
      static_cast<std::uint64_t>(args.samples) *
      static_cast<std::uint64_t>(args.epochs);
  check(run.stats.totals.samples + run.stats.totals.samples_skipped ==
            expected,
        fmt("samples {} + skipped {} == dataset size x epochs {} "
            "(exact-once across the world)",
            run.stats.totals.samples, run.stats.totals.samples_skipped,
            expected));
  check(run.digest_lines.size() == run.stats.totals.samples,
        fmt("digest covers every delivered sample exactly once ({} vs {})",
            run.digest_lines.size(), run.stats.totals.samples));
  check(run.stats.world == args.ranks,
        fmt("world size {} matches --ranks {}", run.stats.world, args.ranks));
  if (run.killed) {
    check(run.stats.ranks_lost == 1,
          fmt("exactly one rank lost ({} recorded)", run.stats.ranks_lost));
    check(run.stats.alive == args.ranks - 1,
          fmt("{} of {} ranks alive after the kill", run.stats.alive,
              args.ranks));
  } else {
    check(run.stats.ranks_lost == 0, "no rank losses in a healthy run");
    check(run.stats.alive == args.ranks, "every rank alive in a healthy run");
  }
  if (failures == 0) std::printf("validate(shard): OK\n");
  return failures;
}

/// One tenant's outcome in a serve-mode run.
struct ServeTenantResult {
  std::string name;
  int session = -1;  // -1 = admission rejected, never ran
  serve::Admission admission = serve::Admission::kRejected;
  serve::SessionState state = serve::SessionState::kClosed;
  bool faulty = false;
  bool killed = false;   // consumer death was simulated for this tenant
  bool evicted = false;
  std::uint64_t batches = 0;
  std::uint64_t samples = 0;
  std::uint64_t skipped = 0;
  std::uint64_t deadline_expired = 0;  // tenant-registry watchdog expiries
  std::uint32_t stream = 0;            // GlobalStreamDigest::stream_digest()
  std::vector<std::string> digest_lines;  // "U <epoch> <pos> <crc>"
};

/// Serve-mode run summary, handed to the digest writer and validator.
struct ServeRunResult {
  std::vector<ServeTenantResult> tenants;
  // The drill's own admission bookkeeping, reconciled against the
  // serve.sessions_* counters under --validate.
  std::uint64_t expected_admitted = 0;
  std::uint64_t expected_degraded = 0;
  std::uint64_t expected_rejected = 0;
  std::uint64_t expected_evicted = 0;
  std::uint64_t expected_suspended = 0;
  std::uint64_t expected_reattached = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t committed_end = 0;  // committed bytes after every close
  bool shedding_end = false;
  std::size_t queue_end = 0;  // shared-pool backlog after every close
};

/// Everything a resident service needs to exist: the dataset, its codec, and
/// the DataService itself, built from the trainer flags. Shared between the
/// in-process serve drill and the wire server.
struct ServeContext {
  std::unique_ptr<codec::SampleCodec> codec;
  std::unique_ptr<pipeline::InMemoryDataset> dataset;
  std::uint64_t probe_bytes = 0;
  std::unique_ptr<serve::DataService> service;
};

ServeContext make_serve_context(const TrainerArgs& args,
                                insight::FlightRecorder* recorder) {
  ServeContext ctx;
  std::unique_ptr<codec::SampleCodec>& codec = ctx.codec;
  std::unique_ptr<pipeline::InMemoryDataset>& dataset = ctx.dataset;
  if (args.workload == "cosmo") {
    data::CosmoGenConfig gen_cfg;
    gen_cfg.dim = args.dim;
    gen_cfg.seed = 2022;
    const data::CosmoGenerator generator(gen_cfg);
    codec = std::make_unique<codec::CosmoCodec>();
    dataset = std::make_unique<pipeline::InMemoryDataset>(
        pipeline::InMemoryDataset::make_cosmo(
            generator, static_cast<std::size_t>(args.samples),
            pipeline::StorageFormat::kEncoded, codec.get()));
  } else {
    data::CamGenConfig gen_cfg;
    gen_cfg.height = args.dim;
    gen_cfg.width = args.dim;
    gen_cfg.channels = 4;
    gen_cfg.seed = 2022;
    const data::CamGenerator generator(gen_cfg);
    codec = std::make_unique<codec::CamCodec>();
    dataset = std::make_unique<pipeline::InMemoryDataset>(
        pipeline::InMemoryDataset::make_cam(
            generator, static_cast<std::size_t>(args.samples),
            pipeline::StorageFormat::kEncoded, codec.get()));
  }
  std::printf("dataset: %zu encoded %s samples, %s at rest, %d tenant(s)\n",
              dataset->size(), args.workload.c_str(),
              format_bytes(dataset->total_bytes()).c_str(), args.tenants);
  if (args.placement == "gpu") {
    std::printf("serve: forcing cpu decode (tenant pipelines share workers, "
                "not a SimGpu)\n");
  }

  // The overload budget is expressed in full-session charges, so probe the
  // decoded-sample footprint the same way the service will (see
  // DataService::probe_sample_bytes).
  std::uint64_t probe_bytes = 0;
  {
    fault::Injector none(1);
    pipeline::PipelineConfig probe;
    probe.batch_size = 1;
    probe.shuffle = false;
    probe.prefetch = false;
    probe.injector = &none;
    const pipeline::DataPipeline probe_pipe(*dataset, *codec, probe, nullptr);
    probe_bytes = serve::tensor_bytes(probe_pipe.decode_sample(0));
  }
  ctx.probe_bytes = probe_bytes;
  const std::uint64_t full_charge =
      static_cast<std::uint64_t>(args.batch) * probe_bytes * 2;

  serve::ServiceConfig scfg;
  scfg.verify_stream = true;  // the drill exists to prove per-tenant digests
  scfg.worker_threads = args.workers;
  scfg.cache.capacity_bytes = args.serve_cache_mb << 20;
  scfg.lease_deadline_seconds = args.lease_ms / 1e3;
  scfg.checkpoint_dir = args.checkpoint_dir;
  scfg.metrics = &obs::MetricsRegistry::global();
  scfg.limits.max_tenants = static_cast<std::size_t>(args.tenants);
  // Overload: budget for half the roster at full service — with the default
  // 0.75/0.5 watermarks a 4-tenant drill converges to 1 admitted, 2
  // degraded, 1 rejected, every run. Healthy: twice the aggregate demand.
  scfg.limits.max_inflight_bytes =
      args.overload
          ? std::max<std::uint64_t>(full_charge,
                                    full_charge * args.tenants / 2)
          : full_charge * static_cast<std::uint64_t>(args.tenants) * 2;
  fault::RecoveryListener forward =
      recorder != nullptr ? recorder->listener() : fault::RecoveryListener{};
  scfg.on_event = [forward](const fault::RecoveryEvent& event) {
    if (event.kind == fault::EventKind::kTenantLost ||
        event.kind == fault::EventKind::kTenantEvicted ||
        event.kind == fault::EventKind::kSessionShed) {
      std::printf("serve: [%s] %s\n", event.scope.c_str(),
                  event.detail.c_str());
    }
    if (forward) forward(event);
  };

  ctx.service = std::make_unique<serve::DataService>(*dataset, *codec,
                                                     std::move(scfg), nullptr);
  return ctx;
}

/// Tenant `t`'s spec, identical between the in-process serve drill and the
/// wire server — the per-tenant stream is defined by the spec, not by which
/// side of a socket the consumer sits on.
serve::TenantSpec make_tenant_spec(const TrainerArgs& args, int t,
                                   fault::Injector& injector) {
  serve::TenantSpec spec;
  spec.name = fmt("tenant{}", t);
  spec.epochs = static_cast<std::uint64_t>(args.epochs);
  spec.weight = 1 + static_cast<std::uint32_t>(t % 2);
  pipeline::PipelineConfig& pcfg = spec.pipeline;
  pcfg.batch_size = args.batch;
  pcfg.seed = 7 + static_cast<std::uint64_t>(t);
  pcfg.decode_placement = codec::Placement::kCpu;
  if (args.workload == "cosmo") {
    pcfg.ops.push_back(std::make_shared<pipeline::ScaleOp>(1.0F));
  } else {
    pcfg.ops.push_back(std::make_shared<pipeline::RandomFlipX>());
  }
  if (t == args.faulty_tenant) {
    pcfg.fault_policy = make_fault_policy(args);
    pcfg.injector = args.injecting() ? &injector : nullptr;
    apply_guard_config(pcfg, args);
  }
  return spec;
}

/// Run the serve arm (sciprep::serve, DESIGN.md §13): one resident
/// DataService, N tenant sessions with distinct shuffle seeds multiplexed on
/// the shared pool + cache, driven round-robin by one consumer. Drills:
/// --faulty-tenant T gives exactly one tenant the injector, fault policy, and
/// stage deadlines; --kill-tenant T simulates a consumer death (the drill
/// stops calling next_batch) that is lease-swept, checkpointed, reattached,
/// and completed bit-identically; --overload shrinks the in-flight byte
/// budget below aggregate demand so admissions shed deterministically.
void run_serve(const TrainerArgs& args, fault::Injector& injector,
               insight::FlightRecorder* recorder, ServeRunResult& out) {
  ServeContext ctx = make_serve_context(args, recorder);
  serve::DataService& service = *ctx.service;

  out.tenants.resize(static_cast<std::size_t>(args.tenants));
  std::vector<int> sessions(static_cast<std::size_t>(args.tenants), -1);
  for (int t = 0; t < args.tenants; ++t) {
    ServeTenantResult& tr = out.tenants[static_cast<std::size_t>(t)];
    tr.name = fmt("tenant{}", t);
    tr.faulty = t == args.faulty_tenant;

    const serve::DataService::OpenResult open =
        service.open_session(make_tenant_spec(args, t, injector));
    tr.session = open.session;
    tr.admission = open.admission;
    sessions[static_cast<std::size_t>(t)] = open.session;
    switch (open.admission) {
      case serve::Admission::kAdmitted:
        ++out.expected_admitted;
        break;
      case serve::Admission::kDegraded:
        ++out.expected_degraded;
        break;
      case serve::Admission::kRejected:
        ++out.expected_rejected;
        break;
    }
    std::printf("serve: tenant%d %s (seed %llu, weight %u)\n", t,
                serve::admission_name(open.admission),
                static_cast<unsigned long long>(7 + t), 1 + t % 2);
  }

  // Round-robin consumer: one batch per live tenant per turn, so every
  // tenant's lease stays beaten and the shared pool sees genuinely
  // interleaved fan-outs. --kill-tenant stops consuming (the session stays
  // formally active — exactly what a crashed consumer looks like).
  std::vector<bool> done(static_cast<std::size_t>(args.tenants), false);
  int live = 0;
  for (int t = 0; t < args.tenants; ++t) {
    if (sessions[static_cast<std::size_t>(t)] < 0) {
      done[static_cast<std::size_t>(t)] = true;
    } else {
      ++live;
    }
  }
  bool kill_pending = false;
  pipeline::Batch batch;
  while (live > 0) {
    for (int t = 0; t < args.tenants; ++t) {
      const auto ti = static_cast<std::size_t>(t);
      if (done[ti]) continue;
      ServeTenantResult& tr = out.tenants[ti];
      if (t == args.kill_tenant && !tr.killed &&
          tr.batches >= args.kill_at_batch) {
        std::printf("serve: tenant%d consumer dies after batch %llu\n", t,
                    static_cast<unsigned long long>(tr.batches));
        tr.killed = true;
        kill_pending = true;
        done[ti] = true;
        --live;
        continue;
      }
      try {
        if (service.next_batch(sessions[ti], batch)) {
          ++tr.batches;
        } else {
          service.close_session(sessions[ti]);
          done[ti] = true;
          --live;
        }
      } catch (const Error& e) {
        std::printf("serve: tenant%d evicted: %s\n", t, e.what());
        tr.evicted = true;
        ++out.expected_evicted;
        done[ti] = true;
        --live;
      }
    }
  }

  // Crash recovery: let the dead consumer's lease lapse, sweep it into a
  // checkpoint, reattach under current pressure, and finish the epochs. The
  // digest is shared across the suspend, so validate/digest-compare prove
  // the continuation bit-identical.
  if (kill_pending) {
    const auto ki = static_cast<std::size_t>(args.kill_tenant);
    ServeTenantResult& tr = out.tenants[ki];
    std::this_thread::sleep_for(
        std::chrono::duration<double>(2.5 * args.lease_ms / 1e3));
    const std::vector<std::string> lost = service.sweep_leases();
    out.expected_suspended += lost.size();
    for (const std::string& name : lost) {
      std::printf("serve: lease swept '%s'\n", name.c_str());
    }
    const serve::DataService::OpenResult re = service.reattach(tr.name);
    if (re.admission == serve::Admission::kRejected) {
      ++out.expected_rejected;
    } else {
      ++out.expected_reattached;
      if (re.admission == serve::Admission::kDegraded) {
        ++out.expected_degraded;
      } else {
        ++out.expected_admitted;
      }
      tr.admission = re.admission;
      std::printf("serve: tenant%d reattached %s at batch %llu\n",
                  args.kill_tenant, serve::admission_name(re.admission),
                  static_cast<unsigned long long>(tr.batches));
      try {
        while (service.next_batch(re.session, batch)) ++tr.batches;
        service.close_session(re.session);
      } catch (const Error& e) {
        std::printf("serve: tenant%d evicted after reattach: %s\n",
                    args.kill_tenant, e.what());
        tr.evicted = true;
        ++out.expected_evicted;
      }
    }
  }

  // Harvest per-tenant outcomes before the service (and with it every
  // tenant registry and digest) goes away.
  for (int t = 0; t < args.tenants; ++t) {
    ServeTenantResult& tr = out.tenants[static_cast<std::size_t>(t)];
    if (tr.session < 0) continue;
    tr.state = service.session_state(tr.session);
    const obs::MetricsRegistry& reg = service.tenant_metrics(tr.session);
    tr.samples = reg.counter_value("pipeline.samples_total");
    tr.skipped = reg.counter_value("pipeline.samples_skipped_total");
    tr.deadline_expired = reg.counter_value("guard.deadline_expired_total");
    const shard::GlobalStreamDigest& digest = service.digest(tr.session);
    tr.stream = digest.stream_digest();
    for (int epoch = 0; epoch < args.epochs; ++epoch) {
      for (const auto& [position, crc] :
           digest.entries(static_cast<std::uint64_t>(epoch))) {
        tr.digest_lines.push_back(fmt("U {} {} {:08x}", epoch, position, crc));
      }
    }
    std::printf(
        "serve: tenant%d %s/%s — %llu batches, %llu samples, %llu skipped, "
        "stream %08x\n",
        t, serve::admission_name(tr.admission),
        serve::session_state_name(tr.state),
        static_cast<unsigned long long>(tr.batches),
        static_cast<unsigned long long>(tr.samples),
        static_cast<unsigned long long>(tr.skipped), tr.stream);
  }
  out.cache_hits = obs::MetricsRegistry::global().counter_value(
      "serve.cache.hits_total");
  out.committed_end = service.committed_bytes();
  out.shedding_end = service.shedding();
  out.queue_end = service.pool().queue_depth();
}

/// Serve-mode digest files: one per tenant ("U <epoch> <pos> <crc>" lines
/// plus a footer), named <digest_out>.tenant<t>. The chaos smoke compares
/// these byte-for-byte across fault-free and chaos runs to prove isolation
/// and reattach bit-identity.
void finish_serve_digest(const TrainerArgs& args,
                         const std::vector<ServeTenantResult>& tenants) {
  if (args.digest_out.empty()) return;
  for (std::size_t t = 0; t < tenants.size(); ++t) {
    const ServeTenantResult& tr = tenants[t];
    if (tr.session < 0) continue;  // rejected tenants have no stream
    const std::string path = fmt("{}.tenant{}", args.digest_out, t);
    std::ofstream file(path, std::ios::trunc);
    if (!file) {
      throw IoError(fmt("trainer: cannot write '{}'", path));
    }
    for (const std::string& line : tr.digest_lines) file << line << '\n';
    file << fmt("T samples {} stream {:08x}\n", tr.digest_lines.size(),
                tr.stream);
  }
  std::printf("digest: %zu tenant stream(s) -> %s.tenant*\n",
              tenants.size(), args.digest_out.c_str());
}

/// --validate for serve mode: the drill's own admission bookkeeping must
/// reconcile with the serve.sessions_* counters, every completed tenant must
/// account for its samples exactly once, healthy tenants must be untouched
/// by the chaos (no skips, no deadline expiries), and the service must have
/// converged (charges released, shedding cleared, pool drained).
int validate_serve(const TrainerArgs& args, const ServeRunResult& run) {
  int failures = 0;
  auto check = [&](bool ok, const std::string& what) {
    if (!ok) {
      std::fprintf(stderr, "validate: FAIL %s\n", what.c_str());
      ++failures;
    }
  };
  const obs::MetricsRegistry& reg = obs::MetricsRegistry::global();
  auto counter_matches = [&](const char* name, std::uint64_t expected) {
    check(reg.counter_value(name) == expected,
          fmt("{} is {} (drill recorded {})", name, reg.counter_value(name),
              expected));
  };
  counter_matches("serve.sessions_admitted_total", run.expected_admitted);
  counter_matches("serve.sessions_degraded_total", run.expected_degraded);
  counter_matches("serve.sessions_rejected_total", run.expected_rejected);
  counter_matches("serve.sessions_evicted_total", run.expected_evicted);
  counter_matches("serve.sessions_suspended_total", run.expected_suspended);
  counter_matches("serve.sessions_reattached_total", run.expected_reattached);

  const std::uint64_t expected_samples =
      static_cast<std::uint64_t>(args.samples) *
      static_cast<std::uint64_t>(args.epochs);
  for (std::size_t t = 0; t < run.tenants.size(); ++t) {
    const ServeTenantResult& tr = run.tenants[t];
    if (tr.session < 0 || tr.evicted) continue;
    check(tr.state == serve::SessionState::kClosed,
          fmt("tenant{} reached a clean close (state: {})", t,
              serve::session_state_name(tr.state)));
    check(tr.samples + tr.skipped == expected_samples,
          fmt("tenant{}: samples {} + skipped {} == dataset size x epochs {} "
              "(exact-once per tenant)",
              t, tr.samples, tr.skipped, expected_samples));
    check(tr.digest_lines.size() == tr.samples,
          fmt("tenant{}: digest covers every delivered sample ({} vs {})", t,
              tr.digest_lines.size(), tr.samples));
    if (!tr.faulty) {
      check(tr.skipped == 0,
            fmt("tenant{} is healthy yet skipped {} samples — isolation "
                "breach",
                t, tr.skipped));
      check(tr.deadline_expired == 0,
            fmt("tenant{} is healthy yet expired {} deadlines — overload or "
                "chaos bled across tenants",
                t, tr.deadline_expired));
    }
  }
  if (args.overload) {
    check(run.expected_degraded + run.expected_rejected > 0,
          "overload drill actually shed at least one session");
  }
  if (args.kill_tenant >= 0 &&
      run.tenants[static_cast<std::size_t>(args.kill_tenant)].session >= 0) {
    check(run.expected_suspended == 1,
          fmt("exactly the killed tenant's lease was swept ({} suspended)",
              run.expected_suspended));
    check(run.expected_reattached == 1, "the killed tenant reattached");
  } else {
    check(run.expected_suspended == 0, "no lease losses in a healthy run");
  }
  check(run.committed_end == 0,
        fmt("every admission charge was released ({} bytes still committed)",
            run.committed_end));
  check(!run.shedding_end, "shedding cleared once the roster drained");
  check(run.queue_end == 0,
        fmt("shared pool drained ({} tasks still queued)", run.queue_end));
  if (failures == 0) std::printf("validate(serve): OK\n");
  return failures;
}

/// Wire-server run summary: the serve harvest plus transport accounting.
struct WireServerRunResult {
  bool all_detached = false;
  std::uint64_t sweeps = 0;
  std::vector<ServeTenantResult> tenants;
  std::vector<wire::TenantWireStats> wire_stats;
};

/// Run the wire server arm (--serve-socket, DESIGN.md §14): the serve
/// drill's resident DataService fronted by a WireServer on an AF_UNIX
/// socket, with every consumer a separate process. The server registers the
/// same tenant specs the in-process drill would open, serves until every
/// tenant has cleanly detached (or the deadline passes), and harvests the
/// same per-tenant digests — so digest files from a socket-served run can be
/// byte-compared against an in-process run. --inject-wire-corrupt /
/// --inject-wire-drop arm the transport fault sites.
void run_wire_server(const TrainerArgs& args, fault::Injector& injector,
                     insight::FlightRecorder* recorder,
                     WireServerRunResult& out) {
  ServeContext ctx = make_serve_context(args, recorder);
  serve::DataService& service = *ctx.service;

  std::vector<serve::TenantSpec> tenants;
  tenants.reserve(static_cast<std::size_t>(args.tenants));
  for (int t = 0; t < args.tenants; ++t) {
    tenants.push_back(make_tenant_spec(args, t, injector));
  }

  wire::WireServerConfig wcfg;
  wcfg.socket_path = args.serve_socket;
  // Short enough that stop() and lease sweeps never wait long on an idle
  // connection, long enough that a healthy client never times out a request.
  wcfg.request_timeout_seconds = 2.0;
  wcfg.sweep_interval_seconds = args.lease_ms / 2e3;
  wcfg.throttle_send_seconds = args.throttle_wire_ms / 1e3;
  if (args.throttle_wire_ms > 0) {
    std::printf("wire: throttling every reply by %.1f ms\n",
                args.throttle_wire_ms);
  }
  if (args.inject_wire_corrupt > 0 || args.inject_wire_drop > 0) {
    wcfg.injector = &injector;
    std::printf(
        "wire: injecting frame corruption %.2f%% + connection drops %.2f%% "
        "(seed %llu)\n",
        args.inject_wire_corrupt * 100, args.inject_wire_drop * 100,
        static_cast<unsigned long long>(args.inject_seed));
  }
  fault::RecoveryListener forward =
      recorder != nullptr ? recorder->listener() : fault::RecoveryListener{};
  wcfg.on_event = [forward](const fault::RecoveryEvent& event) {
    if (event.kind == fault::EventKind::kWireFault) {
      std::printf("wire: [%s] %s\n", event.scope.c_str(),
                  event.detail.c_str());
    }
    if (forward) forward(event);
  };

  // Name the server's track in merged traces; clients pull this (plus the
  // real pid) over the TRACE control frame.
  obs::Tracer::global().set_process_name("trainer-server");

  wire::WireServer server(service, std::move(tenants), wcfg);
  server.start();
  std::printf("wire: serving %d tenant(s) on %s\n", args.tenants,
              args.serve_socket.c_str());
  std::fflush(stdout);

  // Serve until the roster drains. The deadline is generous — consumers may
  // be SIGKILLed and replaced while we wait — but bounded, so an abandoned
  // server exits instead of lingering forever.
  out.all_detached = server.wait_all_detached(120.0);
  server.stop();
  out.sweeps = server.sweeps_total();

  out.tenants.resize(static_cast<std::size_t>(args.tenants));
  out.wire_stats.resize(static_cast<std::size_t>(args.tenants));
  for (int t = 0; t < args.tenants; ++t) {
    const auto ti = static_cast<std::size_t>(t);
    ServeTenantResult& tr = out.tenants[ti];
    tr.name = fmt("tenant{}", t);
    tr.faulty = t == args.faulty_tenant;
    tr.session = server.tenant_session(tr.name);
    if (tr.session < 0) continue;  // never attached
    const wire::TenantWireStats ws = server.tenant_stats(tr.name);
    out.wire_stats[ti] = ws;
    tr.admission = service.session_admission(tr.session);
    tr.state = service.session_state(tr.session);
    tr.batches = ws.batches;
    tr.samples = ws.samples;
    const shard::GlobalStreamDigest& digest = service.digest(tr.session);
    tr.stream = digest.stream_digest();
    for (int epoch = 0; epoch < args.epochs; ++epoch) {
      for (const auto& [position, crc] :
           digest.entries(static_cast<std::uint64_t>(epoch))) {
        tr.digest_lines.push_back(fmt("U {} {} {:08x}", epoch, position, crc));
      }
    }
    std::printf(
        "wire: tenant%d %s/%s — %llu batches, %llu samples, %llu attach(es), "
        "%llu resend(s), %llu sweep(s), stream %08x\n",
        t, serve::admission_name(tr.admission),
        serve::session_state_name(tr.state),
        static_cast<unsigned long long>(ws.batches),
        static_cast<unsigned long long>(ws.samples),
        static_cast<unsigned long long>(ws.attaches),
        static_cast<unsigned long long>(ws.resends),
        static_cast<unsigned long long>(ws.sweeps), tr.stream);
  }
}

/// --validate for the wire server: the roster must have drained cleanly,
/// every attached tenant's digest must cover its delivered samples, and when
/// transport faults were injected the recovery machinery must actually have
/// been exercised (resends for drops, re-attaches for corruption).
int validate_wire_server(const TrainerArgs& args,
                         const WireServerRunResult& run) {
  int failures = 0;
  auto check = [&](bool ok, const std::string& what) {
    if (!ok) {
      std::fprintf(stderr, "validate: FAIL %s\n", what.c_str());
      ++failures;
    }
  };
  check(run.all_detached, "every tenant detached before the serve deadline");
  std::uint64_t attaches = 0;
  std::uint64_t resends = 0;
  const std::uint64_t expected_samples =
      static_cast<std::uint64_t>(args.samples) *
      static_cast<std::uint64_t>(args.epochs);
  for (std::size_t t = 0; t < run.tenants.size(); ++t) {
    const ServeTenantResult& tr = run.tenants[t];
    const wire::TenantWireStats& ws = run.wire_stats[t];
    attaches += ws.attaches;
    resends += ws.resends;
    check(tr.session >= 0, fmt("tenant{} was attached at least once", t));
    if (tr.session < 0) continue;
    check(ws.detached, fmt("tenant{} detached cleanly", t));
    check(tr.state == serve::SessionState::kClosed,
          fmt("tenant{} reached a clean close (state: {})", t,
              serve::session_state_name(tr.state)));
    if (!tr.faulty) {
      check(tr.samples == expected_samples,
            fmt("tenant{}: {} samples served over the wire == dataset size x "
                "epochs {} (exact-once per tenant)",
                t, tr.samples, expected_samples));
    }
    check(tr.digest_lines.size() == tr.samples,
          fmt("tenant{}: digest covers every served sample ({} vs {})", t,
              tr.digest_lines.size(), tr.samples));
  }
  if (args.inject_wire_drop > 0) {
    check(resends > 0,
          "injected connection drops actually exercised redelivery");
  }
  if (args.inject_wire_corrupt > 0 || args.inject_wire_drop > 0) {
    check(attaches > static_cast<std::uint64_t>(args.tenants),
          fmt("injected transport faults forced at least one re-attach "
              "({} attaches across {} tenants)",
              attaches, args.tenants));
  }
  if (failures == 0) std::printf("validate(wire-server): OK\n");
  return failures;
}

/// Wire-client run summary.
struct WireClientRunResult {
  std::uint64_t batches = 0;
  std::uint64_t samples = 0;
  bool resumed = false;
  bool degraded = false;
  wire::WireClientStats stats;
  wire::DetachedPayload server_stats;
  std::uint32_t stream = 0;  // this process's delivered-stream digest
  std::vector<std::string> digest_lines;
  // sciprep::flow state (populated when --trace-propagate is on).
  std::uint64_t trace_id = 0;
  flow::ClockOffset clock_offset;
  wire::TracePayload server_trace;    // server span ring + identity
  obs::MetricsSnapshot server_totals; // accumulated per-tenant STATS deltas
  std::string server_scope;           // "tenant/<name>" per the server
  std::string fleet_jsonl;            // fleet.v1 lines for --fleet-out
};

/// Run the wire client arm (--connect --tenant-name): attach to a wire
/// server, consume the tenant's whole stream, detach. --kill-after-batches
/// simulates a consumer crash (exit 42, no cleanup — the server's lease
/// sweep must notice); a replacement process passes --resumed and takes the
/// stream over from where the server says it stands.
void run_wire_client(const TrainerArgs& args, WireClientRunResult& out) {
  wire::WireClientConfig ccfg;
  ccfg.socket_path = args.connect;
  ccfg.tenant = args.tenant_name;
  ccfg.request_timeout_seconds = 5.0;
  ccfg.trace_propagate = args.trace_propagate;
  if (args.trace_propagate) {
    // Name this process's track in merged traces by the tenant it consumes.
    obs::Tracer::global().set_process_name(fmt("trainer-{}", args.tenant_name));
  }
  wire::WireClient client(ccfg);
  client.attach();
  out.resumed = client.resumed();
  std::printf("wire: attached '%s' (session %d%s%s)\n",
              args.tenant_name.c_str(), client.server_session(),
              client.resumed() ? ", resumed" : "",
              client.degraded() ? ", degraded" : "");

  // One STATS pull = one fleet.v1 line: the server's per-tenant snapshot
  // delta since the previous pull, stamped with this process's run clock.
  auto pull_fleet_line = [&]() {
    const wire::StatsPayload pulled = client.pull_server_stats();
    out.fleet_jsonl += flow::fleet_line(
        pulled.scope, client.stats_pulls(),
        static_cast<double>(obs::Tracer::global().now_ns()) / 1e9,
        client.server_totals(), pulled.delta);
    out.fleet_jsonl += '\n';
  };

  pipeline::Batch batch;
  while (client.next(batch)) {
    ++out.batches;
    out.samples += batch.samples.size();
    if (!args.fleet_out.empty() && out.batches % 16 == 0) pull_fleet_line();
    if (args.kill_after_batches > 0 && out.batches >= args.kill_after_batches) {
      // Simulated consumer crash: no DETACH, no close, no destructors. The
      // server finds out the hard way (EOF, then a lease sweep).
      std::printf("kill: simulating crash after batch %llu\n",
                  static_cast<unsigned long long>(out.batches));
      std::fflush(stdout);
      std::_Exit(42);
    }
  }
  if (args.trace_propagate) {
    // Final pulls before DETACH tears the session down: the closing STATS
    // delta completes the fleet series (sum of deltas == the server's tenant
    // registry), and the TRACE pull captures the server-side spans for this
    // client's whole stream.
    if (args.fleet_out.empty()) {
      (void)client.pull_server_stats();  // totals still feed the analyzer
    } else {
      pull_fleet_line();
    }
    out.server_trace = client.pull_server_trace();
    out.trace_id = client.trace_id();
    out.clock_offset = client.clock_offset();
    out.server_totals = client.server_totals();
    out.server_scope = client.server_scope();
  }
  out.server_stats = client.detach();
  out.stats = client.stats();
  out.degraded = client.degraded();
  out.stream = client.digest().stream_digest();
  for (int epoch = 0; epoch < args.epochs; ++epoch) {
    for (const auto& [position, crc] :
         client.digest().entries(static_cast<std::uint64_t>(epoch))) {
      out.digest_lines.push_back(fmt("U {} {} {:08x}", epoch, position, crc));
    }
  }
  std::printf(
      "wire: '%s' done — %llu batches, %llu samples, %llu attach(es), "
      "%llu reconnect(s), %llu corrupt frame(s), stream %08x\n",
      args.tenant_name.c_str(), static_cast<unsigned long long>(out.batches),
      static_cast<unsigned long long>(out.samples),
      static_cast<unsigned long long>(out.stats.attaches),
      static_cast<unsigned long long>(out.stats.reconnects),
      static_cast<unsigned long long>(out.stats.corrupt_frames), out.stream);
}

/// Wire-client digest file: same "U <epoch> <pos> <crc>" + footer format as
/// the server's per-tenant files, so client-side and server-side views of
/// one tenant's stream can be byte-compared with cmp(1).
int finish_wire_client_digest(const TrainerArgs& args,
                              const WireClientRunResult& run) {
  std::string body;
  for (const std::string& line : run.digest_lines) {
    body += line;
    body += '\n';
  }
  body += fmt("T samples {} stream {:08x}\n", run.digest_lines.size(),
              run.stream);
  if (!args.digest_out.empty()) {
    std::ofstream file(args.digest_out, std::ios::trunc);
    if (!file) {
      throw IoError(fmt("trainer: cannot write '{}'", args.digest_out));
    }
    file << body;
    std::printf("digest: %zu samples -> %s\n", run.digest_lines.size(),
                args.digest_out.c_str());
  }
  if (args.expect_digest.empty()) return 0;
  std::ifstream in(args.expect_digest, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "digest: FAIL cannot read expected digest '%s'\n",
                 args.expect_digest.c_str());
    return 1;
  }
  std::ostringstream expected;
  expected << in.rdbuf();
  if (expected.str() != body) {
    std::fprintf(stderr,
                 "digest: FAIL delivered stream differs from '%s' — the "
                 "wire run is not bit-identical\n",
                 args.expect_digest.c_str());
    return 1;
  }
  std::printf("digest: matches %s (bit-identical delivery)\n",
              args.expect_digest.c_str());
  return 0;
}

/// Flow artifacts for a traced wire client: the fleet.v1 JSONL of server
/// snapshot deltas (--fleet-out) and the merged two-process Chrome trace
/// (--flow-merge), with the server's track shifted onto this process's
/// timeline by the CLOCK_SYNC offset.
void finish_flow(const TrainerArgs& args, const WireClientRunResult& run) {
  if (!args.fleet_out.empty()) {
    std::ofstream file(args.fleet_out, std::ios::trunc);
    if (!file) {
      throw IoError(fmt("trainer: cannot write '{}'", args.fleet_out));
    }
    file << run.fleet_jsonl;
    std::printf("fleet: scope '%s' -> %s\n", run.server_scope.c_str(),
                args.fleet_out.c_str());
  }
  if (args.flow_merge_out.empty()) return;

  obs::Tracer& tracer = obs::Tracer::global();
  std::vector<flow::ProcessTrace> procs(2);
  flow::ProcessTrace& local = procs[0];
  local.process_name = tracer.process_name();
  local.pid = static_cast<std::int64_t>(::getpid());
  local.spans = tracer.snapshot();
  for (const obs::TraceSpan& span : local.spans) {
    local.thread_names.emplace(span.thread, thread_name(span.thread));
  }
  flow::ProcessTrace& remote = procs[1];
  remote.process_name = run.server_trace.process_name;
  remote.pid = run.server_trace.pid;
  // local = remote - offset, applied by the merger as a per-track shift.
  remote.shift_ns = -run.clock_offset.offset_ns;
  remote.spans = run.server_trace.spans;

  std::ofstream file(args.flow_merge_out, std::ios::trunc);
  if (!file) {
    throw IoError(fmt("trainer: cannot write '{}'", args.flow_merge_out));
  }
  file << flow::merge_chrome_json(procs);
  std::printf(
      "flow: merged %zu local + %zu server span(s) -> %s "
      "(clock offset %.3f ms +/- %.3f ms over %u sample(s))\n",
      local.spans.size(), remote.spans.size(), args.flow_merge_out.c_str(),
      static_cast<double>(run.clock_offset.offset_ns) / 1e6,
      static_cast<double>(run.clock_offset.error_bound_ns) / 1e6,
      run.clock_offset.samples);
}

/// --validate for flow: walk the cross-process span linkage and prove the
/// end-to-end decomposition materialized — nearly every client batch span
/// must link to a server span tree with the queue-wait/encode/send children,
/// span time must agree with the attribution histograms recorded at the same
/// sites, and the fleet series must reconcile (sum of pulled deltas == the
/// server's declared tenant totals).
int validate_flow_client(const TrainerArgs& args,
                         const WireClientRunResult& run) {
  int failures = 0;
  auto check = [&](bool ok, const std::string& what) {
    if (!ok) {
      std::fprintf(stderr, "validate: FAIL %s\n", what.c_str());
      ++failures;
    }
  };
  obs::Tracer& tracer = obs::Tracer::global();
  const flow::FlowValidation v = flow::validate_flow(
      tracer.snapshot(), run.server_trace.spans,
      obs::MetricsRegistry::global().snapshot(), run.server_totals,
      tracer.dropped_total(), run.server_trace.spans_dropped);
  std::printf("flow: %s\n", v.to_json().c_str());

  check(run.trace_id != 0, "a trace id was negotiated at attach");
  check(run.clock_offset.valid,
        "the CLOCK_SYNC handshake produced a usable offset");
  check(v.client_batches > 0, "the client recorded batch spans");
  check(v.linked > 0, "client batch spans link to server-side spans");
  check(v.decomposed_fraction >= 0.95,
        fmt("at least 95% of batch spans fully decomposed ({} of {})",
            v.decomposed, v.client_batches));
  check(v.histograms_consistent,
        fmt("span time agrees with attribution histograms "
            "(client {:.6f}s vs {:.6f}s, server {:.6f}s vs {:.6f}s)",
            v.client_span_seconds, v.client_hist_seconds,
            v.server_span_seconds, v.server_hist_seconds));
  if (!args.fleet_out.empty()) {
    const flow::FleetMergeResult fleet =
        flow::merge_fleet({{run.server_scope, run.fleet_jsonl}});
    check(fleet.reconciled,
          fmt("fleet series reconciles: sum of '{}' deltas equals the "
              "server's declared totals",
              run.server_scope));
    check(fleet.lines_skipped == 0,
          fmt("every fleet line parsed ({} skipped)", fleet.lines_skipped));
  }
  if (failures == 0) std::printf("validate(flow): OK\n");
  return failures;
}

/// --validate for a wire client: the server's DETACHED accounting must agree
/// with what this process saw, and for a full (non-resumed) run the two
/// sides' stream digests must be identical — exactly-once delivery of the
/// exact bytes. A --resumed replacement instead proves the crash machinery
/// ran: the server swept the dead predecessor's lease and this process
/// re-attached the same session.
int validate_wire_client(const TrainerArgs& args,
                         const WireClientRunResult& run) {
  int failures = 0;
  auto check = [&](bool ok, const std::string& what) {
    if (!ok) {
      std::fprintf(stderr, "validate: FAIL %s\n", what.c_str());
      ++failures;
    }
  };
  check(run.digest_lines.size() == run.samples,
        fmt("digest covers every delivered sample ({} vs {})",
            run.digest_lines.size(), run.samples));
  check(run.server_stats.batches >= run.batches,
        fmt("server served at least the batches this process delivered "
            "({} vs {})",
            run.server_stats.batches, run.batches));
  if (args.expect_resumed) {
    check(run.resumed, "this process resumed an existing session");
    check(run.server_stats.sweeps >= 1,
          fmt("the dead predecessor's lease was swept ({} sweeps)",
              run.server_stats.sweeps));
    check(run.server_stats.attaches >= 2,
          fmt("the tenant attached at least twice ({} attaches)",
              run.server_stats.attaches));
  } else {
    check(!run.resumed, "a fresh tenant did not resume anything");
    const std::uint64_t expected_samples =
        static_cast<std::uint64_t>(args.samples) *
        static_cast<std::uint64_t>(args.epochs);
    check(run.samples == expected_samples,
          fmt("{} samples delivered == dataset size x epochs {} "
              "(exactly-once)",
              run.samples, expected_samples));
    check(run.stream == run.server_stats.digest_crc,
          fmt("client and server stream digests agree ({:08x} vs {:08x})",
              run.stream, run.server_stats.digest_crc));
  }
  if (failures == 0) std::printf("validate(wire-client): OK\n");
  return failures;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw IoError(fmt("trainer: cannot read back '{}'", path));
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

/// --validate: re-read the emitted artifacts and cross-check them. Returns
/// the number of violations (0 = clean).
int validate_outputs(const TrainerArgs& args,
                     const pipeline::PipelineStats& stats,
                     const std::vector<std::size_t>& quarantine) {
  int failures = 0;
  auto check = [&](bool ok, const std::string& what) {
    if (!ok) {
      std::fprintf(stderr, "validate: FAIL %s\n", what.c_str());
      ++failures;
    }
  };
  // Exact-value counter match in the JSON dump ("name":value framing).
  auto json_counter_is = [](const std::string& doc, const std::string& key,
                            std::uint64_t value) {
    const std::string needle = fmt("\"{}\":{}", key, value);
    const std::size_t at = doc.find(needle);
    if (at == std::string::npos) return false;
    const std::size_t end = at + needle.size();
    return end >= doc.size() || doc[end] == ',' || doc[end] == '}';
  };

  if (!args.trace_out.empty()) {
    const std::string trace = read_file(args.trace_out);
    check(obs::json_valid(trace), "trace file is valid JSON");
    std::vector<std::string> expected = {
        "pipeline.shuffle", "pipeline.decode", "pipeline.ops",
        "pipeline.batch_assemble", "pipeline.prefetch_wait"};
    if (args.placement == "gpu") expected.push_back("sim.kernel");
    expected.push_back(fmt("codec.{}.decode_{}", args.workload,
                           args.placement));
    for (const std::string& name : expected) {
      check(trace.find(fmt("\"name\":\"{}\"", name)) != std::string::npos,
            fmt("trace contains span '{}'", name));
    }
  }

  if (!args.metrics_out.empty()) {
    const std::string metrics = read_file(args.metrics_out);
    check(obs::json_valid(metrics), "metrics file is valid JSON");
    for (const char* key :
         {"pipeline.stage.decode_seconds", "pipeline.stage.ops_seconds",
          "pipeline.stage.batch_assemble_seconds",
          "pipeline.stage.prefetch_wait_seconds", "pipeline.pool.tasks_total",
          "pipeline.samples_total", "pipeline.bytes_at_rest_total"}) {
      check(metrics.find(fmt("\"{}\"", key)) != std::string::npos,
            fmt("metrics contains '{}'", key));
    }
    check(metrics.find("\"p50\":") != std::string::npos &&
              metrics.find("\"p90\":") != std::string::npos &&
              metrics.find("\"p99\":") != std::string::npos,
          "metrics histograms carry p50/p90/p99 summaries");
    const std::string byte_counter =
        fmt("codec.{}.decode_bytes_in_total", args.workload);
    check(metrics.find(fmt("\"{}\"", byte_counter)) != std::string::npos,
          fmt("metrics contains '{}'", byte_counter));
    if (args.injecting()) {
      check(metrics.find("\"fault.injected_total\"") != std::string::npos,
            "metrics contains 'fault.injected_total'");
      check(json_counter_is(metrics, "pipeline.samples_skipped_total",
                            stats.samples_skipped),
            "metrics dump agrees with stats.samples_skipped");
    }
  }

  // Epoch accounting: every sample of every epoch is either delivered or
  // skipped — nothing is silently lost.
  const std::uint64_t expected =
      static_cast<std::uint64_t>(args.samples) *
      static_cast<std::uint64_t>(args.epochs);
  check(stats.samples + stats.samples_skipped == expected,
        fmt("samples {} + skipped {} == dataset size x epochs {}",
            stats.samples, stats.samples_skipped, expected));
  // Every skip event names a quarantined id; the de-duplicated quarantine
  // can only be smaller (the same bad record re-skips each epoch).
  check(quarantine.size() <= stats.samples_skipped,
        fmt("quarantine size {} <= skip events {}", quarantine.size(),
            stats.samples_skipped));
  check((stats.samples_skipped == 0) == quarantine.empty(),
        "quarantine and the skip counter agree on whether skips happened");
  if (args.injecting() && args.fault_policy != "fail") {
    check(stats.degraded == (stats.samples_skipped + stats.retries +
                             stats.fallbacks > 0),
          "degraded gauge tracks recovery events");
  }

  // PipelineStats is assembled from the registry — the two must agree.
  obs::MetricsRegistry& reg = obs::MetricsRegistry::global();
  check(stats.samples == reg.counter_value("pipeline.samples_total"),
        "stats.samples matches pipeline.samples_total");
  check(stats.batches == reg.counter_value("pipeline.batches_total"),
        "stats.batches matches pipeline.batches_total");
  check(stats.bytes_at_rest == reg.counter_value("pipeline.bytes_at_rest_total"),
        "stats.bytes_at_rest matches pipeline.bytes_at_rest_total");
  if (args.placement == "gpu") {
    check(stats.gpu.warps == reg.counter_value("pipeline.gpu.warps_total"),
          "stats.gpu.warps matches pipeline.gpu.warps_total");
    check(stats.decode_cpu_seconds == 0.0,
          "GPU placement leaves decode_cpu_seconds at zero");
  }
  if (failures == 0) std::printf("validate: OK\n");
  return failures;
}

/// Scan one JSONL metrics tick for `"<key>":{"total":..,"delta":D,..}` and
/// return D (0 when the counter is absent from the line).
double jsonl_counter_delta(const std::string& line, const std::string& key) {
  const std::size_t at = line.find(fmt("\"{}\":{{", key));
  if (at == std::string::npos) return 0;
  const std::size_t d = line.find("\"delta\":", at);
  if (d == std::string::npos) return 0;
  return std::strtod(line.c_str() + d + 8, nullptr);
}

/// --validate for the insight artifacts: the bottleneck report, the JSONL
/// time-series, and the flight-recorder incidents. Returns the number of
/// violations (0 = clean).
int validate_insight(const TrainerArgs& args, std::uint64_t fingerprint) {
  int failures = 0;
  auto check = [&](bool ok, const std::string& what) {
    if (!ok) {
      std::fprintf(stderr, "validate: FAIL %s\n", what.c_str());
      ++failures;
    }
  };

  if (!args.report_out.empty()) {
    const std::string report = read_file(args.report_out);
    check(obs::json_valid(report), "bottleneck report is valid JSON");
    check(report.find("\"schema\":\"sciprep.insight.bottleneck.v1\"") !=
              std::string::npos,
          "bottleneck report carries its schema tag");
    // Instrumentation drift: a pipeline.stage.* histogram the analyzer does
    // not recognise means a stage was added without teaching the analyzer.
    check(report.find("\"unattributed_histograms\":[]") != std::string::npos,
          "analyzer attributes every pipeline.stage.* histogram");
    if (args.inject_delay > 0) {
      check(report.find("\"dominant_stage\":\"io.read\"") != std::string::npos,
            "injected IO stalls make io.read the dominant stage");
    }
    // Cross-check the analyzer against the histogram it summarizes: the
    // report's io.read busy-seconds must equal the registry's
    // pipeline.stage.io_read_seconds sum (io.read is exclusive as recorded,
    // so no subtraction is involved on either side).
    const obs::MetricsSnapshot snap = obs::MetricsRegistry::global().snapshot();
    const auto hist = snap.histograms.find("pipeline.stage.io_read_seconds");
    const std::size_t name_at = report.find("\"name\":\"io.read\"");
    const std::size_t busy_at =
        name_at == std::string::npos
            ? std::string::npos
            : report.find("\"busy_seconds\":", name_at);
    if (hist != snap.histograms.end() && busy_at != std::string::npos) {
      const double reported =
          std::strtod(report.c_str() + busy_at + 15, nullptr);
      const double actual = hist->second.sum;
      check(std::fabs(reported - actual) <=
                std::max(1e-6, 0.01 * std::fabs(actual)),
            fmt("report io.read busy {:.6f}s matches histogram sum {:.6f}s",
                reported, actual));
    } else {
      check(false, "report and registry both account for io.read");
    }
  }

  if (!args.metrics_jsonl.empty()) {
    std::ifstream in(args.metrics_jsonl);
    check(static_cast<bool>(in), "metrics JSONL is readable");
    std::size_t lines = 0;
    bool retried = false;
    bool saw_rss = false;
    bool saw_cpu = false;
    for (std::string line; std::getline(in, line);) {
      if (line.empty()) continue;
      ++lines;
      check(obs::json_valid(line),
            fmt("metrics JSONL line {} is valid JSON", lines));
      if (jsonl_counter_delta(line, "pipeline.retries_total") > 0) {
        retried = true;
      }
      if (line.find("\"proc.rss_bytes\"") != std::string::npos) saw_rss = true;
      if (line.find("\"proc.cpu_utime_ms\"") != std::string::npos) {
        saw_cpu = true;
      }
    }
    check(lines > 0, "metrics JSONL contains at least one tick");
    if (args.inject_transient > 0 && args.fault_policy == "retry-skip") {
      check(retried,
            "JSONL time-series shows a non-zero retry rate under injection");
    }
#if !defined(SCIPREP_OBS_DISABLED)
    // The ResourceSampler publishes on the exporter cadence unless it was
    // turned off, so every run's time-series must carry the proc.* gauges —
    // a missing key means the pre_tick hook fell off the exporter.
    if (args.resource_sampling) {
      check(saw_rss, "JSONL time-series carries the proc.rss_bytes gauge");
      check(saw_cpu, "JSONL time-series carries the proc.cpu_utime_ms gauge");
    }
#else
    (void)saw_rss;
    (void)saw_cpu;
#endif
  }

  if (!args.flightrec_dir.empty()) {
    std::size_t incidents = 0;
    bool saw_deadline = false;
    std::error_code ec;
    for (const auto& entry :
         std::filesystem::directory_iterator(args.flightrec_dir, ec)) {
      const std::string name = entry.path().filename().string();
      if (name.rfind("incident-", 0) != 0) continue;
      ++incidents;
      const std::string body = read_file(entry.path().string());
      check(obs::json_valid(body), fmt("incident '{}' is valid JSON", name));
      if (!args.trace_out.empty()) {
        check(body.find("\"t_start_ns\"") != std::string::npos,
              fmt("incident '{}' embeds at least one span", name));
      }
      check(body.find(fmt("\"config_fingerprint\":\"{:x}\"", fingerprint)) !=
                std::string::npos,
            fmt("incident '{}' names this run's config fingerprint", name));
      if (name.find("-deadline_expired.json") != std::string::npos) {
        saw_deadline = true;
      }
    }
    check(!ec, fmt("flight-recorder dir '{}' is listable", args.flightrec_dir));
    check(incidents > 0, "flight recorder wrote at least one incident");
    if (args.stage_deadline_ms > 0 && args.inject_delay > 0) {
      check(saw_deadline, "a deadline-expiry incident was recorded");
    }
  }

  if (failures == 0) std::printf("validate(insight): OK\n");
  return failures;
}

}  // namespace

int main(int argc, char** argv) {
  const TrainerArgs args = parse_args(argc, argv);
  set_thread_name("consumer");  // labels the training loop in traces/incidents
  if (!args.trace_out.empty()) {
    obs::Tracer::global().set_enabled(true);
  }

  sim::SimGpu gpu({.sm_count = 80, .warps_per_sm = 8});
  fault::Injector injector(args.inject_seed, &obs::MetricsRegistry::global());
  configure_injector(injector, args);
  if (args.injecting()) {
    std::printf(
        "fault injection: transient %.2f%% + corrupt %.2f%% + truncate "
        "%.2f%% + delay %.2f%% x %.1fms (seed %llu), policy %s\n",
        args.inject_transient * 100, args.inject_corrupt * 100,
        args.inject_truncate * 100, args.inject_delay * 100,
        args.inject_delay_ms,
        static_cast<unsigned long long>(args.inject_seed),
        args.fault_policy.c_str());
  }
  pipeline::PipelineStats stats;
  std::vector<std::size_t> quarantine;
  std::uint64_t fingerprint = 0;
  RunGuard rg(args);

  std::optional<insight::FlightRecorder> recorder;
  if (!args.flightrec_dir.empty()) {
    insight::FlightRecorderConfig fcfg;
    fcfg.dir = args.flightrec_dir;
    recorder.emplace(std::move(fcfg));
  }
  // Declared before the exporter: the pre_tick hook runs on the exporter
  // thread, so the sampler must outlive it.
  std::optional<perfscope::ResourceSampler> sampler;
  std::optional<insight::ContinuousExporter> exporter;
  if (!args.metrics_jsonl.empty() || !args.metrics_prom.empty()) {
    insight::ExporterConfig ecfg;
    ecfg.interval_seconds = args.metrics_interval_ms / 1e3;
    ecfg.jsonl_path = args.metrics_jsonl;
    ecfg.prom_path = args.metrics_prom;
    // Scope the series for fleet federation: a wire client's ticks merge
    // into the fleet view keyed by the tenant it consumes.
    if (args.wire_client()) ecfg.scope = fmt("client/{}", args.tenant_name);
    if (args.resource_sampling) {
      sampler.emplace();
      ecfg.pre_tick = sampler->exporter_hook();
    }
    exporter.emplace(std::move(ecfg));
    exporter->start();
  }

  ShardRunResult shard_run;
  ServeRunResult serve_run;
  WireServerRunResult wire_server_run;
  WireClientRunResult wire_client_run;
  const auto wall_t0 = std::chrono::steady_clock::now();
  try {
    if (args.wire_server()) {
      run_wire_server(args, injector, recorder ? &*recorder : nullptr,
                      wire_server_run);
    } else if (args.wire_client()) {
      run_wire_client(args, wire_client_run);
    } else if (args.serve) {
      run_serve(args, injector, recorder ? &*recorder : nullptr, serve_run);
    } else if (args.sharded()) {
      run_shard(args, injector, recorder ? &*recorder : nullptr, shard_run);
    } else if (args.workload == "cosmo") {
      run_cosmo(args, gpu, injector, rg, recorder ? &*recorder : nullptr,
                stats, quarantine, fingerprint);
    } else {
      run_cam(args, gpu, injector, rg, recorder ? &*recorder : nullptr,
              stats, quarantine, fingerprint);
    }
  } catch (const Error& e) {
    std::fprintf(stderr, "trainer: %s\n", e.what());
    return 1;
  }
  const double wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - wall_t0)
          .count();
  if (exporter) exporter->stop();  // final flush covers the partial interval

  if (args.sharded()) stats = shard_run.stats.totals;
  if (args.wire_server()) {
    std::uint64_t samples = 0;
    std::uint64_t batches = 0;
    for (const ServeTenantResult& tr : wire_server_run.tenants) {
      samples += tr.samples;
      batches += tr.batches;
    }
    std::printf(
        "\nwire: served %llu samples in %llu batches to %d tenant(s), "
        "%llu lease sweep(s)\n",
        static_cast<unsigned long long>(samples),
        static_cast<unsigned long long>(batches), args.tenants,
        static_cast<unsigned long long>(wire_server_run.sweeps));
  } else if (args.wire_client()) {
    std::printf(
        "\nwire: delivered %llu samples in %llu batches over %s\n",
        static_cast<unsigned long long>(wire_client_run.samples),
        static_cast<unsigned long long>(wire_client_run.batches),
        args.connect.c_str());
  } else if (args.serve) {
    std::uint64_t samples = 0;
    std::uint64_t batches = 0;
    for (const ServeTenantResult& tr : serve_run.tenants) {
      samples += tr.samples;
      batches += tr.batches;
    }
    std::printf(
        "\nserve: %llu samples in %llu batches across %d tenant(s), "
        "%llu cache hits\n",
        static_cast<unsigned long long>(samples),
        static_cast<unsigned long long>(batches), args.tenants,
        static_cast<unsigned long long>(serve_run.cache_hits));
  } else {
    std::printf(
        "\npipeline: %llu samples in %llu batches (%s at rest), "
        "decode cpu %.1f ms / gpu %.1f ms\n",
        static_cast<unsigned long long>(stats.samples),
        static_cast<unsigned long long>(stats.batches),
        format_bytes(stats.bytes_at_rest).c_str(),
        stats.decode_cpu_seconds * 1e3, stats.decode_gpu_seconds * 1e3);
  }
  if (args.sharded()) {
    std::printf(
        "shard: world %d, %d alive; %llu lost, %llu reshards "
        "(%llu samples redistributed), %llu checkpoints; stream %08x\n",
        shard_run.stats.world, shard_run.stats.alive,
        static_cast<unsigned long long>(shard_run.stats.ranks_lost),
        static_cast<unsigned long long>(shard_run.stats.reshards),
        static_cast<unsigned long long>(shard_run.stats.resharded_samples),
        static_cast<unsigned long long>(shard_run.stats.checkpoints),
        shard_run.stream_digest);
  }
  if (stats.degraded) {
    std::printf(
        "faults: %llu injected; %llu retries, %llu skipped "
        "(%zu unique quarantined ids), %llu fallbacks — degraded mode\n",
        static_cast<unsigned long long>(injector.injected_total()),
        static_cast<unsigned long long>(stats.retries),
        static_cast<unsigned long long>(stats.samples_skipped),
        quarantine.size(), static_cast<unsigned long long>(stats.fallbacks));
  }
  std::printf("\n%s", obs::MetricsRegistry::global().human_dump().c_str());

  try {
    int failures = 0;
    if (args.wire_server()) {
      finish_serve_digest(args, wire_server_run.tenants);
    } else if (args.wire_client()) {
      failures = finish_wire_client_digest(args, wire_client_run);
      if (args.trace_propagate) finish_flow(args, wire_client_run);
    } else if (args.serve) {
      finish_serve_digest(args, serve_run.tenants);
    } else if (args.sharded()) {
      failures = finish_shard_digest(args, shard_run);
    } else {
      failures = rg.finish(stats, quarantine);
    }
    if (!args.trace_out.empty()) {
      obs::Tracer::global().write_chrome_json(args.trace_out);
      std::printf("trace: %zu spans -> %s\n",
                  obs::Tracer::global().size(), args.trace_out.c_str());
    }
    if (!args.metrics_out.empty()) {
      obs::MetricsRegistry::global().write_json(args.metrics_out);
      std::printf("metrics: -> %s\n", args.metrics_out.c_str());
    }
    if (!args.report_out.empty()) {
      insight::AnalyzerInput input;
      input.wall_seconds = wall_seconds;
      input.workers = args.workers;
      if (args.wire_client() && args.trace_propagate) {
        // Wire-aware attribution: the accumulated server-side deltas let the
        // analyzer split client wait into queue/encode/send/socket stages.
        input.server_metrics = &wire_client_run.server_totals;
      }
      const insight::BottleneckReport report =
          insight::analyze_critical_path(input);
      insight::write_report(args.report_out, report);
      std::printf("\n%s", report.human_table().c_str());
      std::printf("report: -> %s\n", args.report_out.c_str());
    }
    if (exporter) {
      std::printf("metrics ticks: %llu -> %s\n",
                  static_cast<unsigned long long>(exporter->ticks_total()),
                  (args.metrics_jsonl.empty() ? args.metrics_prom
                                              : args.metrics_jsonl)
                      .c_str());
    }
    if (recorder) {
      std::printf(
          "flightrec: %llu incidents written, %llu suppressed -> %s\n",
          static_cast<unsigned long long>(recorder->incidents_written()),
          static_cast<unsigned long long>(recorder->incidents_suppressed()),
          args.flightrec_dir.c_str());
    }
    if (args.validate) {
      if (args.wire_server()) {
        failures += validate_wire_server(args, wire_server_run);
      } else if (args.wire_client()) {
        failures += validate_wire_client(args, wire_client_run);
        if (args.trace_propagate) {
          failures += validate_flow_client(args, wire_client_run);
        }
      } else if (args.serve) {
        // Tenant pipelines run on private registries, so the unsharded
        // registry cross-checks don't apply; the serve validator covers
        // per-tenant exact-once accounting, counter reconciliation, and
        // service convergence instead.
        failures += validate_serve(args, serve_run);
      } else if (args.sharded()) {
        // Per-rank pipeline metrics live in private registries, so the
        // unsharded registry cross-checks don't apply; the shard validator
        // covers exact-once accounting and digest coverage instead.
        failures += validate_shard(args, shard_run);
      } else {
        failures += validate_outputs(args, stats, quarantine);
        failures += validate_insight(args, fingerprint);
      }
    }
    return failures == 0 ? 0 : 1;
  } catch (const Error& e) {
    std::fprintf(stderr, "trainer: %s\n", e.what());
    return 1;
  }
}
