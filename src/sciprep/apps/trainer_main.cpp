// trainer — end-to-end training driver with observability export.
//
// Runs the full §VI integration (encoded dataset -> DataPipeline -> model)
// like examples/cosmoflow_train, but with command-line control over the
// workload and decode placement, and with sciprep::obs wired up:
//
//   trainer --workload cosmo --samples 24 --epochs 2 --placement gpu
//           --trace-out trace.json --metrics-out metrics.json
//
// --trace-out enables the global tracer and writes the run's span timeline
// as Chrome/Perfetto trace_event JSON (open in https://ui.perfetto.dev).
// --metrics-out dumps the global metrics registry (per-stage latency
// histograms with p50/p90/p99, byte counters, pool telemetry) as JSON; a
// human-readable metrics table is always printed at the end of the run.
// --validate re-reads the emitted files and checks them: both must be valid
// JSON, the trace must contain the expected pipeline/sim span names, the
// metrics dump must contain the per-stage histograms, and the pipeline's
// PipelineStats snapshot must agree with the registry. Exits nonzero on any
// violation (this backs the obs_trace_smoke ctest).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "sciprep/apps/models.hpp"
#include "sciprep/common/error.hpp"
#include "sciprep/common/format.hpp"
#include "sciprep/codec/cam_codec.hpp"
#include "sciprep/codec/cosmo_codec.hpp"
#include "sciprep/common/log.hpp"
#include "sciprep/common/stats.hpp"
#include "sciprep/data/cam_gen.hpp"
#include "sciprep/data/cosmo_gen.hpp"
#include "sciprep/dnn/loss.hpp"
#include "sciprep/dnn/optimizer.hpp"
#include "sciprep/obs/obs.hpp"
#include "sciprep/pipeline/pipeline.hpp"

namespace {

using namespace sciprep;

struct TrainerArgs {
  std::string workload = "cosmo";   // cosmo | cam
  int samples = 24;
  int epochs = 2;
  int dim = 16;                     // cosmo volume edge / cam image edge
  int batch = 4;
  std::size_t workers = 2;
  std::string placement = "gpu";    // cpu | gpu
  std::string trace_out;
  std::string metrics_out;
  bool validate = false;
};

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--workload cosmo|cam] [--samples N] [--epochs N]\n"
      "          [--dim N] [--batch N] [--workers N] [--placement cpu|gpu]\n"
      "          [--trace-out FILE] [--metrics-out FILE] [--validate]\n",
      argv0);
  std::exit(2);
}

TrainerArgs parse_args(int argc, char** argv) {
  TrainerArgs args;
  for (int i = 1; i < argc; ++i) {
    const std::string_view a = argv[i];
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) usage(argv[0]);
      return argv[++i];
    };
    if (a == "--workload") {
      args.workload = value();
    } else if (a == "--samples") {
      args.samples = std::atoi(value());
    } else if (a == "--epochs") {
      args.epochs = std::atoi(value());
    } else if (a == "--dim") {
      args.dim = std::atoi(value());
    } else if (a == "--batch") {
      args.batch = std::atoi(value());
    } else if (a == "--workers") {
      args.workers = static_cast<std::size_t>(std::atoi(value()));
    } else if (a == "--placement") {
      args.placement = value();
    } else if (a == "--trace-out") {
      args.trace_out = value();
    } else if (a == "--metrics-out") {
      args.metrics_out = value();
    } else if (a == "--validate") {
      args.validate = true;
    } else {
      std::fprintf(stderr, "trainer: unknown flag '%s'\n", argv[i]);
      usage(argv[0]);
    }
  }
  if (args.workload != "cosmo" && args.workload != "cam") usage(argv[0]);
  if (args.placement != "cpu" && args.placement != "gpu") usage(argv[0]);
  if (args.samples < 1 || args.epochs < 1 || args.dim < 4 || args.batch < 1) {
    usage(argv[0]);
  }
  return args;
}

/// Run the CosmoFlow arm: encoded dataset -> pipeline (with one augmentation
/// op so the pipeline.ops stage is exercised) -> tiny 3D-conv model.
void run_cosmo(const TrainerArgs& args, sim::SimGpu& gpu,
               pipeline::PipelineStats& stats_out) {
  data::CosmoGenConfig gen_cfg;
  gen_cfg.dim = args.dim;
  gen_cfg.seed = 2022;
  const data::CosmoGenerator generator(gen_cfg);
  const codec::CosmoCodec codec;
  const auto dataset = pipeline::InMemoryDataset::make_cosmo(
      generator, static_cast<std::size_t>(args.samples),
      pipeline::StorageFormat::kEncoded, &codec);
  std::printf("dataset: %zu encoded cosmo samples, %s at rest\n",
              dataset.size(), format_bytes(dataset.total_bytes()).c_str());

  pipeline::PipelineConfig pcfg;
  pcfg.batch_size = args.batch;
  pcfg.worker_threads = args.workers;
  pcfg.seed = 7;
  pcfg.decode_placement = args.placement == "gpu" ? codec::Placement::kGpu
                                                  : codec::Placement::kCpu;
  pcfg.ops.push_back(std::make_shared<pipeline::ScaleOp>(1.0F));
  pcfg.metrics = &obs::MetricsRegistry::global();
  pipeline::DataPipeline pipe(dataset, codec, pcfg,
                              pcfg.decode_placement == codec::Placement::kGpu
                                  ? &gpu
                                  : nullptr);

  Rng rng(11);
  auto model = apps::build_cosmoflow_model(args.dim, rng);
  dnn::Sgd optimizer(*model, {.learning_rate = 0.02F, .momentum = 0.9F,
                              .weight_decay = 0.0F, .warmup_steps = 4,
                              .decay_every = 0});

  for (int epoch = 0; epoch < args.epochs; ++epoch) {
    pipe.start_epoch(static_cast<std::uint64_t>(epoch));
    double epoch_loss = 0;
    std::size_t steps = 0;
    pipeline::Batch batch;
    while (pipe.next_batch(batch)) {
      double batch_loss = 0;
      for (const auto& tensor : batch.samples) {
        const dnn::Tensor input = apps::cosmo_input_from_fp16(tensor);
        const dnn::Tensor pred = model->forward(input);
        const auto loss = dnn::mse_loss(pred, tensor.float_labels);
        model->backward(loss.grad);
        batch_loss += loss.loss;
      }
      optimizer.step(static_cast<float>(batch.size()));
      epoch_loss += batch_loss / batch.size();
      ++steps;
    }
    std::printf("epoch %d: mean loss %.5f (%zu steps)\n", epoch,
                epoch_loss / static_cast<double>(steps), steps);
  }
  stats_out = pipe.stats();
}

/// Run the DeepCAM arm: decode-only batch pump (the paper's DeepCAM
/// evaluation is loader-bound; the model step adds nothing to the
/// observability surface being exercised here).
void run_cam(const TrainerArgs& args, sim::SimGpu& gpu,
             pipeline::PipelineStats& stats_out) {
  data::CamGenConfig gen_cfg;
  gen_cfg.height = args.dim;
  gen_cfg.width = args.dim;
  gen_cfg.channels = 4;
  gen_cfg.seed = 2022;
  const data::CamGenerator generator(gen_cfg);
  const codec::CamCodec codec;
  const auto dataset = pipeline::InMemoryDataset::make_cam(
      generator, static_cast<std::size_t>(args.samples),
      pipeline::StorageFormat::kEncoded, &codec);
  std::printf("dataset: %zu encoded cam samples, %s at rest\n", dataset.size(),
              format_bytes(dataset.total_bytes()).c_str());

  pipeline::PipelineConfig pcfg;
  pcfg.batch_size = args.batch;
  pcfg.worker_threads = args.workers;
  pcfg.seed = 7;
  pcfg.decode_placement = args.placement == "gpu" ? codec::Placement::kGpu
                                                  : codec::Placement::kCpu;
  pcfg.ops.push_back(std::make_shared<pipeline::RandomFlipX>());
  pcfg.metrics = &obs::MetricsRegistry::global();
  pipeline::DataPipeline pipe(dataset, codec, pcfg,
                              pcfg.decode_placement == codec::Placement::kGpu
                                  ? &gpu
                                  : nullptr);

  for (int epoch = 0; epoch < args.epochs; ++epoch) {
    pipe.start_epoch(static_cast<std::uint64_t>(epoch));
    pipeline::Batch batch;
    std::size_t steps = 0;
    while (pipe.next_batch(batch)) ++steps;
    std::printf("epoch %d: %zu batches decoded\n", epoch, steps);
  }
  stats_out = pipe.stats();
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw IoError(fmt("trainer: cannot read back '{}'", path));
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

/// --validate: re-read the emitted artifacts and cross-check them. Returns
/// the number of violations (0 = clean).
int validate_outputs(const TrainerArgs& args,
                     const pipeline::PipelineStats& stats) {
  int failures = 0;
  auto check = [&](bool ok, const std::string& what) {
    if (!ok) {
      std::fprintf(stderr, "validate: FAIL %s\n", what.c_str());
      ++failures;
    }
  };

  if (!args.trace_out.empty()) {
    const std::string trace = read_file(args.trace_out);
    check(obs::json_valid(trace), "trace file is valid JSON");
    std::vector<std::string> expected = {
        "pipeline.shuffle", "pipeline.decode", "pipeline.ops",
        "pipeline.batch_assemble", "pipeline.prefetch_wait"};
    if (args.placement == "gpu") expected.push_back("sim.kernel");
    expected.push_back(fmt("codec.{}.decode_{}", args.workload,
                           args.placement));
    for (const std::string& name : expected) {
      check(trace.find(fmt("\"name\":\"{}\"", name)) != std::string::npos,
            fmt("trace contains span '{}'", name));
    }
  }

  if (!args.metrics_out.empty()) {
    const std::string metrics = read_file(args.metrics_out);
    check(obs::json_valid(metrics), "metrics file is valid JSON");
    for (const char* key :
         {"pipeline.stage.decode_seconds", "pipeline.stage.ops_seconds",
          "pipeline.stage.batch_assemble_seconds",
          "pipeline.stage.prefetch_wait_seconds", "pipeline.pool.tasks_total",
          "pipeline.samples_total", "pipeline.bytes_at_rest_total"}) {
      check(metrics.find(fmt("\"{}\"", key)) != std::string::npos,
            fmt("metrics contains '{}'", key));
    }
    check(metrics.find("\"p50\":") != std::string::npos &&
              metrics.find("\"p90\":") != std::string::npos &&
              metrics.find("\"p99\":") != std::string::npos,
          "metrics histograms carry p50/p90/p99 summaries");
    const std::string byte_counter =
        fmt("codec.{}.decode_bytes_in_total", args.workload);
    check(metrics.find(fmt("\"{}\"", byte_counter)) != std::string::npos,
          fmt("metrics contains '{}'", byte_counter));
  }

  // PipelineStats is assembled from the registry — the two must agree.
  obs::MetricsRegistry& reg = obs::MetricsRegistry::global();
  check(stats.samples == reg.counter_value("pipeline.samples_total"),
        "stats.samples matches pipeline.samples_total");
  check(stats.batches == reg.counter_value("pipeline.batches_total"),
        "stats.batches matches pipeline.batches_total");
  check(stats.bytes_at_rest == reg.counter_value("pipeline.bytes_at_rest_total"),
        "stats.bytes_at_rest matches pipeline.bytes_at_rest_total");
  if (args.placement == "gpu") {
    check(stats.gpu.warps == reg.counter_value("pipeline.gpu.warps_total"),
          "stats.gpu.warps matches pipeline.gpu.warps_total");
    check(stats.decode_cpu_seconds == 0.0,
          "GPU placement leaves decode_cpu_seconds at zero");
  }
  if (failures == 0) std::printf("validate: OK\n");
  return failures;
}

}  // namespace

int main(int argc, char** argv) {
  const TrainerArgs args = parse_args(argc, argv);
  if (!args.trace_out.empty()) {
    obs::Tracer::global().set_enabled(true);
  }

  sim::SimGpu gpu({.sm_count = 80, .warps_per_sm = 8});
  pipeline::PipelineStats stats;
  try {
    if (args.workload == "cosmo") {
      run_cosmo(args, gpu, stats);
    } else {
      run_cam(args, gpu, stats);
    }
  } catch (const Error& e) {
    std::fprintf(stderr, "trainer: %s\n", e.what());
    return 1;
  }

  std::printf(
      "\npipeline: %llu samples in %llu batches (%s at rest), "
      "decode cpu %.1f ms / gpu %.1f ms\n",
      static_cast<unsigned long long>(stats.samples),
      static_cast<unsigned long long>(stats.batches),
      format_bytes(stats.bytes_at_rest).c_str(),
      stats.decode_cpu_seconds * 1e3, stats.decode_gpu_seconds * 1e3);
  std::printf("\n%s", obs::MetricsRegistry::global().human_dump().c_str());

  try {
    if (!args.trace_out.empty()) {
      obs::Tracer::global().write_chrome_json(args.trace_out);
      std::printf("trace: %zu spans -> %s\n",
                  obs::Tracer::global().size(), args.trace_out.c_str());
    }
    if (!args.metrics_out.empty()) {
      obs::MetricsRegistry::global().write_json(args.metrics_out);
      std::printf("metrics: -> %s\n", args.metrics_out.c_str());
    }
    if (args.validate) {
      return validate_outputs(args, stats) == 0 ? 0 : 1;
    }
  } catch (const Error& e) {
    std::fprintf(stderr, "trainer: %s\n", e.what());
    return 1;
  }
  return 0;
}
