// Training loops for the convergence experiments (Figs 6-7): fixed learning
// schedule, batched SGD, per-step loss recording. The input arm (FP32
// baseline vs FP16 decoded) is selected by the caller via the input tensors
// it supplies.
#pragma once

#include <functional>
#include <vector>

#include "sciprep/dnn/layers.hpp"
#include "sciprep/dnn/loss.hpp"
#include "sciprep/dnn/optimizer.hpp"

namespace sciprep::apps {

/// One training example, already converted to the chosen input precision.
struct Example {
  dnn::Tensor input;
  std::vector<float> regression_target;     // CosmoFlow arm
  std::vector<std::uint8_t> pixel_labels;   // DeepCAM arm
};

struct TrainConfig {
  int batch_size = 2;
  int epochs = 1;
  dnn::SgdConfig sgd;
  bool shuffle = true;
  std::uint64_t seed = 0;
  /// DeepCAM class weights (background heavily down-weighted); empty = MSE
  /// regression mode (CosmoFlow).
  std::vector<float> class_weights;
};

struct TrainResult {
  std::vector<double> step_losses;   // loss per optimizer step
  std::vector<double> epoch_losses;  // mean loss per epoch
};

/// Train `model` on `examples` and record the loss trajectory. Regression
/// (MSE) when class_weights is empty, per-pixel cross-entropy otherwise.
TrainResult train(dnn::Sequential& model, std::vector<Example>& examples,
                  const TrainConfig& config);

}  // namespace sciprep::apps
