// perfcompare — the noise-aware performance regression gate.
//
// Two modes:
//   perfcompare --trajectory BENCH_current.json
//     latest run vs everything before it in the same file (the
//     perf_regression_smoke ctest drives this after two perfbench runs);
//   perfcompare --baseline BENCH_baseline.json --current BENCH_current.json
//     the current file's latest run vs the baseline file's full history
//     (CI comparing a PR against the main-branch trajectory).
//
// Prints the per-bench verdict table (perfscope::CompareReport::human_table)
// and exits nonzero when any metric regressed or disappeared — the culprit
// bench + metric are named in the table, not just a boolean.
//
// A history that does not exist yet is not a failure: a missing or empty
// trajectory (self mode) or baseline (pair mode) prints a "no history yet —
// seeding" verdict and exits 0, so the gate can be wired into a fresh
// checkout or a first CI run without a bootstrap step. A file that exists
// but cannot be parsed is still an error — corrupt history must never pass
// silently as "no history".
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <filesystem>
#include <string>

#include "sciprep/perfscope/perfscope.hpp"

namespace {

using namespace sciprep;

struct Args {
  std::string trajectory;
  std::string baseline;
  std::string current;
  perfscope::CompareOptions options;
};

Args parse_args(int argc, char** argv) {
  Args a;
  auto val = [&](int& i) -> const char* {
    return i + 1 < argc ? argv[++i] : "";
  };
  for (int i = 1; i < argc; ++i) {
    const std::string f = argv[i];
    if (f == "--trajectory") {
      a.trajectory = val(i);
    } else if (f == "--baseline") {
      a.baseline = val(i);
    } else if (f == "--current") {
      a.current = val(i);
    } else if (f == "--rel-tol") {
      a.options.rel_tol = std::atof(val(i));
    } else if (f == "--mad-k") {
      a.options.mad_k = std::atof(val(i));
    } else if (f == "--min-history") {
      a.options.min_history = static_cast<std::size_t>(std::atoi(val(i)));
    } else if (f == "--max-history") {
      a.options.max_history = static_cast<std::size_t>(std::atoi(val(i)));
    } else if (f == "--no-fail-on-missing") {
      a.options.fail_on_missing = false;
    } else if (f == "--help" || f == "-h") {
      std::printf(
          "usage: perfcompare --trajectory FILE\n"
          "       perfcompare --baseline FILE --current FILE\n"
          "       [--rel-tol X] [--mad-k X] [--min-history N]\n"
          "       [--max-history N] [--no-fail-on-missing]\n");
      std::exit(0);
    } else {
      std::fprintf(stderr, "perfcompare: unknown flag %s\n", f.c_str());
      std::exit(2);
    }
  }
  const bool self_mode = !a.trajectory.empty();
  const bool pair_mode = !a.baseline.empty() && !a.current.empty();
  if (self_mode == pair_mode) {
    std::fprintf(stderr,
                 "perfcompare: pass either --trajectory FILE or both "
                 "--baseline and --current\n");
    std::exit(2);
  }
  return a;
}

enum class Load { kOk, kMissing, kBad };

/// Distinguish a history that does not exist yet (seedable) from one that
/// exists but cannot be parsed (an error load_trajectory folds into `false`).
Load load(const std::string& path, perfscope::Trajectory& t) {
  std::error_code ec;
  if (!std::filesystem::exists(path, ec)) return Load::kMissing;
  return perfscope::load_trajectory(path, t) ? Load::kOk : Load::kBad;
}

perfscope::Trajectory load_or_die(const std::string& path) {
  perfscope::Trajectory t;
  if (load(path, t) != Load::kOk) {
    std::fprintf(stderr, "perfcompare: cannot read trajectory %s\n",
                 path.c_str());
    std::exit(2);
  }
  return t;
}

int seeding(const std::string& path) {
  std::printf(
      "perfcompare: no history yet in %s — seeding; the next perfbench run "
      "establishes the baseline\n",
      path.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const Args args = parse_args(argc, argv);
  try {
    perfscope::CompareReport report;
    if (!args.trajectory.empty()) {
      perfscope::Trajectory t;
      const Load state = load(args.trajectory, t);
      if (state == Load::kBad) {
        std::fprintf(stderr, "perfcompare: cannot read trajectory %s\n",
                     args.trajectory.c_str());
        return 2;
      }
      if (state == Load::kMissing || t.empty()) {
        return seeding(args.trajectory);
      }
      if (t.runs.size() < 2) {
        std::printf(
            "perfcompare: %s holds %zu run(s); nothing to compare yet\n",
            args.trajectory.c_str(), t.runs.size());
        return 0;
      }
      report = perfscope::compare_latest(t, args.options);
    } else {
      perfscope::Trajectory baseline;
      const Load base_state = load(args.baseline, baseline);
      if (base_state == Load::kBad) {
        std::fprintf(stderr, "perfcompare: cannot read trajectory %s\n",
                     args.baseline.c_str());
        return 2;
      }
      if (base_state == Load::kMissing || baseline.empty()) {
        return seeding(args.baseline);
      }
      // The *current* side is different: the caller claims to have just
      // benchmarked something, so nothing-there is a broken invocation.
      const perfscope::Trajectory current = load_or_die(args.current);
      if (current.empty()) {
        std::fprintf(stderr, "perfcompare: empty trajectory %s\n",
                     args.current.c_str());
        return 2;
      }
      report = perfscope::compare_trajectories(baseline, current,
                                               args.options);
    }
    std::fputs(report.human_table().c_str(), stdout);
    return report.regressions() > 0 ? 1 : 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "perfcompare: %s\n", e.what());
    return 2;
  }
}
