#include "sciprep/apps/measure.hpp"

#include <chrono>

#include "sciprep/apps/models.hpp"
#include "sciprep/codec/cam_codec.hpp"
#include "sciprep/codec/cosmo_codec.hpp"
#include "sciprep/common/error.hpp"
#include "sciprep/data/cam_gen.hpp"
#include "sciprep/data/cosmo_gen.hpp"
#include "sciprep/io/tfrecord.hpp"
#include "sciprep/obs/obs.hpp"

namespace sciprep::apps {

namespace {

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Calibrate the SimGpu throughput proxies once: a pure copy kernel sets the
/// effective "device memory bandwidth" of the engine on this host, an
/// arithmetic kernel sets its "FLOP rate". scale_gpu_seconds then maps any
/// measured kernel wall time onto a target GPU proportionally.
void calibrate_simgpu_once() {
  static const bool done = [] {
    sim::SimGpu gpu({.sm_count = 80, .warps_per_sm = 8});
    constexpr std::size_t kValues = 8 * 1024 * 1024;
    std::vector<float> src(kValues, 1.5F);
    std::vector<float> dst(kValues);
    const double t0 = now_seconds();
    gpu.launch(kValues / (sim::Warp::kLanes * 64), [&](sim::Warp& warp) {
      const std::size_t base = warp.id() * sim::Warp::kLanes * 64;
      for (int rep = 0; rep < 64; ++rep) {
        warp.lanes([&](int lane) {
          const std::size_t i = base +
                                static_cast<std::size_t>(rep) *
                                    sim::Warp::kLanes +
                                static_cast<std::size_t>(lane);
          dst[i] = src[i];
        });
      }
      warp.count_read(sim::Warp::kLanes * 64 * sizeof(float));
      warp.count_write(sim::Warp::kLanes * 64 * sizeof(float));
    });
    const double copy_wall = std::max(1e-6, now_seconds() - t0);
    const double bytes = 2.0 * kValues * sizeof(float);

    std::vector<float> acc(sim::Warp::kLanes, 0.0F);
    const double t1 = now_seconds();
    constexpr std::size_t kMulWarps = 4096;
    constexpr int kMulReps = 256;
    gpu.launch(kMulWarps, [&](sim::Warp& warp) {
      float local[sim::Warp::kLanes] = {};
      for (int rep = 0; rep < kMulReps; ++rep) {
        warp.lanes([&](int lane) {
          local[lane] = local[lane] * 1.000001F + 0.5F;
        });
      }
      warp.lanes([&](int lane) { acc[static_cast<std::size_t>(lane)] += local[lane]; });
    });
    const double mul_wall = std::max(1e-6, now_seconds() - t1);
    const double flops = 2.0 * kMulWarps * kMulReps * sim::Warp::kLanes;

    sim::HostCalibration& cal = sim::host_calibration();
    cal.effective_gpu_tbps = bytes / copy_wall / 1e12;
    cal.effective_gpu_tflops = flops / mul_wall / 1e12;
    return true;
  }();
  (void)done;
}

/// The baseline and gzip paths in the real benchmarks run through the
/// framework input pipelines (Python, h5py, tf.data) rather than tight C++;
/// their per-sample CPU cost is several times what this repository's
/// reimplementation measures. The plugin paths bypass those layers (that is
/// much of their point), so only the baseline/gzip host measurements carry
/// this factor. Calibrated so the composed step times land in the paper's
/// reported ranges; the *relative* shapes do not depend on its exact value.
constexpr double kTfStackOverhead = 2.0;     // CosmoFlow: tf.data + TFRecord
constexpr double kTorchH5StackOverhead = 4.0;  // DeepCAM: PyTorch loader + h5py

template <class F>
double time_call(F&& f, int repeat) {
  const double t0 = now_seconds();
  for (int i = 0; i < repeat; ++i) {
    f(i);
  }
  return (now_seconds() - t0) / repeat;
}

}  // namespace

const char* loader_config_name(LoaderConfig config) {
  switch (config) {
    case LoaderConfig::kBaseline:
      return "base";
    case LoaderConfig::kGzip:
      return "gzip";
    case LoaderConfig::kCpuPlugin:
      return "cpu-plugin";
    case LoaderConfig::kGpuPlugin:
      return "gpu-plugin";
  }
  return "?";
}

MeasuredWorkload measure_cosmo(LoaderConfig config, int dim, int repeat,
                               std::uint64_t seed) {
  SCIPREP_OBS_SPAN_NAMED(measure_span, "apps.measure_cosmo", "apps");
  if (measure_span.active()) {
    measure_span.set_args_json(fmt(
        "{{\"config\": \"{}\", \"dim\": {}, \"repeat\": {}}}",
        loader_config_name(config), dim, repeat));
  }
  calibrate_simgpu_once();
  data::CosmoGenConfig gen_cfg;
  gen_cfg.dim = dim;
  gen_cfg.seed = seed;
  const data::CosmoGenerator gen(gen_cfg);
  const codec::CosmoCodec codec;

  std::vector<io::CosmoSample> samples;
  std::vector<Bytes> raw_records;   // one-record TFRecord files
  std::vector<Bytes> gzip_files;
  std::vector<Bytes> encoded;
  for (int i = 0; i < repeat; ++i) {
    samples.push_back(gen.generate(static_cast<std::uint64_t>(i)));
    io::TfRecordWriter w;
    w.append(samples.back().serialize());
    raw_records.push_back(std::move(w).take());
    if (config == LoaderConfig::kGzip) {
      gzip_files.push_back(io::gzip_tfrecord_stream(raw_records.back()));
    }
    if (config == LoaderConfig::kCpuPlugin ||
        config == LoaderConfig::kGpuPlugin) {
      encoded.push_back(codec.encode_sample(samples[static_cast<std::size_t>(i)]));
    }
  }

  const std::uint64_t value_count = samples.front().value_count();
  MeasuredWorkload m;
  m.raw_bytes = raw_records.front().size();
  sim::WorkloadProfile& p = m.profile;
  // Scale FLOPs for reduced measurement dims.
  const double volume_scale =
      static_cast<double>(value_count) / (128.0 * 128 * 128 * 4);
  p.model_train_flops = cosmoflow_train_flops_per_sample() * volume_scale;

  switch (config) {
    case LoaderConfig::kBaseline: {
      p.bytes_at_rest = raw_records.front().size();
      p.bytes_to_device = value_count * 4;  // FP32 after host log1p
      p.host_seconds = time_call(
          [&](int i) {
            const auto records = io::TfRecordReader::read_all(
                raw_records[static_cast<std::size_t>(i % repeat)]);
            const auto sample = io::CosmoSample::parse(records.front());
            (void)codec::CosmoCodec::reference_preprocess_sample(sample);
          },
          repeat) * kTfStackOverhead;
      break;
    }
    case LoaderConfig::kGzip: {
      p.bytes_at_rest = gzip_files.front().size();
      p.bytes_to_device = value_count * 4;
      p.host_seconds = time_call(
          [&](int i) {
            const Bytes plain = io::gunzip_tfrecord_stream(
                gzip_files[static_cast<std::size_t>(i % repeat)]);
            const auto records = io::TfRecordReader::read_all(plain);
            const auto sample = io::CosmoSample::parse(records.front());
            (void)codec::CosmoCodec::reference_preprocess_sample(sample);
          },
          repeat) * kTfStackOverhead;
      break;
    }
    case LoaderConfig::kCpuPlugin: {
      p.bytes_at_rest = encoded.front().size();
      p.bytes_to_device = value_count * 2;  // FP16 decoded on the host
      p.host_seconds = time_call(
          [&](int i) {
            (void)codec.decode_sample_cpu(
                encoded[static_cast<std::size_t>(i % repeat)]);
          },
          repeat);
      break;
    }
    case LoaderConfig::kGpuPlugin: {
      p.bytes_at_rest = encoded.front().size();
      p.bytes_to_device = encoded.front().size();  // decode after transfer
      p.host_seconds = 2e-4;  // file handoff only
      sim::SimGpu gpu({.sm_count = 80, .warps_per_sm = 8});
      p.gpu_decode_host_seconds = time_call(
          [&](int i) {
            (void)codec.decode_sample_gpu(
                encoded[static_cast<std::size_t>(i % repeat)], gpu);
          },
          repeat);
      p.gpu_decode_bandwidth_bound = gpu.lifetime_stats().bandwidth_bound();
      break;
    }
  }
  m.compression_ratio = static_cast<double>(m.raw_bytes) /
                        static_cast<double>(p.bytes_at_rest);
  return m;
}

MeasuredWorkload measure_cam(LoaderConfig config, int height, int width,
                             int channels, int repeat, std::uint64_t seed) {
  SCIPREP_OBS_SPAN_NAMED(measure_span, "apps.measure_cam", "apps");
  if (measure_span.active()) {
    measure_span.set_args_json(fmt(
        "{{\"config\": \"{}\", \"height\": {}, \"width\": {}, "
        "\"channels\": {}, \"repeat\": {}}}",
        loader_config_name(config), height, width, channels, repeat));
  }
  calibrate_simgpu_once();
  if (config == LoaderConfig::kGzip) {
    throw ConfigError(
        "deepcam has no gzip baseline in the paper's evaluation");
  }
  data::CamGenConfig gen_cfg;
  gen_cfg.height = height;
  gen_cfg.width = width;
  gen_cfg.channels = channels;
  gen_cfg.seed = seed;
  const data::CamGenerator gen(gen_cfg);
  const codec::CamCodec codec;

  std::vector<io::CamSample> samples;
  std::vector<Bytes> raw_files;
  std::vector<Bytes> encoded;
  for (int i = 0; i < repeat; ++i) {
    samples.push_back(gen.generate(static_cast<std::uint64_t>(i)));
    raw_files.push_back(samples.back().serialize());
    if (config != LoaderConfig::kBaseline) {
      encoded.push_back(codec.encode_sample(samples.back()));
    }
  }

  const std::uint64_t value_count = samples.front().value_count();
  MeasuredWorkload m;
  m.raw_bytes = raw_files.front().size();
  sim::WorkloadProfile& p = m.profile;
  const double area_scale = static_cast<double>(value_count) /
                            (1152.0 * 768.0 * 16.0);
  p.model_train_flops = deepcam_train_flops_per_sample() * area_scale;

  switch (config) {
    case LoaderConfig::kBaseline: {
      p.bytes_at_rest = raw_files.front().size();
      p.bytes_to_device = value_count * 4;  // FP32 image to device
      p.host_seconds = time_call(
          [&](int i) {
            const auto sample = io::CamSample::parse(
                raw_files[static_cast<std::size_t>(i % repeat)]);
            (void)codec::CamCodec::reference_preprocess_sample(sample);
          },
          repeat) * kTorchH5StackOverhead;
      break;
    }
    case LoaderConfig::kCpuPlugin: {
      p.bytes_at_rest = encoded.front().size();
      p.bytes_to_device = value_count * 2;  // FP16 decoded on the host
      p.host_seconds = time_call(
          [&](int i) {
            (void)codec.decode_sample_cpu(
                encoded[static_cast<std::size_t>(i % repeat)]);
          },
          repeat);
      break;
    }
    case LoaderConfig::kGpuPlugin: {
      p.bytes_at_rest = encoded.front().size();
      p.bytes_to_device = encoded.front().size();
      p.host_seconds = 2e-4;
      sim::SimGpu gpu({.sm_count = 80, .warps_per_sm = 8});
      p.gpu_decode_host_seconds = time_call(
          [&](int i) {
            (void)codec.decode_sample_gpu(
                encoded[static_cast<std::size_t>(i % repeat)], gpu);
          },
          repeat);
      p.gpu_decode_bandwidth_bound = gpu.lifetime_stats().bandwidth_bound();
      break;
    }
    case LoaderConfig::kGzip:
      break;  // rejected above
  }
  m.compression_ratio = static_cast<double>(m.raw_bytes) /
                        static_cast<double>(p.bytes_at_rest);
  return m;
}

}  // namespace sciprep::apps
