// Host-side measurement harness: runs the real codecs / baseline paths on
// synthesized samples and produces the WorkloadProfile numbers the step-time
// model consumes (DESIGN.md §5). Every per-sample cost in Figures 8-12 comes
// from timings of *this repository's code* on the build host; only transfer
// bandwidths and compute ratios come from Table I.
#pragma once

#include <cstdint>
#include <string>

#include "sciprep/sim/stepmodel.hpp"

namespace sciprep::apps {

/// Which data-loading configuration a profile describes (the bars of
/// Figs 8/10/11).
enum class LoaderConfig {
  kBaseline,   // raw samples, CPU preprocessing, FP32 to device
  kGzip,       // gzip-compressed samples, CPU gunzip+preprocess (CosmoFlow)
  kCpuPlugin,  // codec decode on the CPU, FP16 to device
  kGpuPlugin,  // encoded bytes to device, codec decode on the GPU
};

const char* loader_config_name(LoaderConfig config);

/// Measured per-sample characterization of one workload under one loader.
struct MeasuredWorkload {
  sim::WorkloadProfile profile;
  // Extra reporting fields:
  std::uint64_t raw_bytes = 0;       // uncompressed stored size
  double compression_ratio = 1.0;    // raw / stored
  double decode_fraction_gpu = 0;    // gpu decode / total device time proxy
};

/// Measure the CosmoFlow workload at full benchmark scale (dim = 128 by
/// default; smaller dims measure proportionally and are scaled up by value
/// count). `repeat` samples are generated and averaged.
MeasuredWorkload measure_cosmo(LoaderConfig config, int dim = 128,
                               int repeat = 2, std::uint64_t seed = 404);

/// Measure the DeepCAM workload (full 1152x768x16 by default).
MeasuredWorkload measure_cam(LoaderConfig config, int height = 768,
                             int width = 1152, int channels = 16,
                             int repeat = 2, std::uint64_t seed = 405);

}  // namespace sciprep::apps
