// Critical-path bottleneck analyzer (sciprep::insight).
//
// Turns the raw telemetry the pipeline already produces — the span ring and
// the pipeline.stage.* latency histograms — into the paper's Fig. 12-style
// verdict: how much wall time each stage burned, which stage dominates, and
// an Amdahl-style estimate of the end-to-end speedup if a stage were free.
//
// Two independent sources are reconciled:
//
//   * Histograms are the authoritative busy-seconds accounting (they survive
//     ring wrap and record on exception unwind). Exclusive stage costs are
//     derived by subtraction: the decode histogram covers io.read, gunzip,
//     and retry backoff, so "decode" in the report is decode minus those.
//   * Spans give an independent per-stage sum. When the span ring did not
//     wrap, the two are cross-checked and the report carries the maximum
//     relative drift — a drifting stage means instrumentation was added to
//     one layer but not the other.
//
// The report also lists every pipeline.stage.*_seconds histogram it did NOT
// recognise (`unattributed_histograms`): a stage added to the pipeline
// without teaching the analyzer shows up there, and `trainer --validate`
// fails on it.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sciprep/obs/metrics.hpp"
#include "sciprep/obs/trace.hpp"

namespace sciprep::insight {

/// One stage's share of the pipeline's busy time.
struct StageCost {
  std::string name;         // "io.read", "gunzip", "decode", "ops", ...
  double busy_seconds = 0;  // histogram-derived, exclusive (authoritative)
  double span_seconds = 0;  // span-derived exclusive sum (0 when unavailable)
  std::uint64_t events = 0;  // histogram sample count
  /// busy_seconds / (workers * wall): the fraction of total worker capacity
  /// this stage consumed. Fractions over a report sum to <= 1 (+epsilon).
  double occupancy = 0;
  /// Estimated end-to-end speedup if this stage cost nothing (>= 1).
  double whatif_speedup = 1;
};

struct BottleneckReport {
  double wall_seconds = 0;
  std::size_t workers = 1;
  /// Which scope of a multi-pipeline run this report describes — a tenant
  /// name or "rank<N>" when the input registry was that scope's private
  /// registry, "" (the default) for a whole-process report. Mirrors
  /// fault::RecoveryEvent::scope and is carried into the JSON.
  std::string scope;

  /// The stage with the largest exclusive busy time.
  std::string dominant_stage;
  /// "io-bound", "decode-bound", or "consumer-bound" — whether epoch time is
  /// limited by the pipeline (and which side of it) or by the training step.
  /// Served runs (sciprep::flow attribution present) extend the taxonomy
  /// with "wire-bound" (transport encode/socket/decode dominates) and
  /// "server-queue-bound" (waiting on the server to produce dominates).
  std::string verdict;

  double prefetch_stall_seconds = 0;   // consumer-visible batch-wait time
  double prefetch_stall_fraction = 0;  // of wall_seconds
  /// True when flow.client.* wire-attribution histograms were found (the
  /// run consumed batches over sciprep::wire with trace propagation on).
  bool wire_attributed = false;

  /// True when the span ring held every recorded span (no wrap, no drops);
  /// only then is the span-vs-histogram drift check meaningful.
  bool spans_complete = false;
  /// True when the tracer dropped spans (ring wrap). Distinguishes "the
  /// drift cross-check was skipped because the ring overflowed" (size the
  /// ring up) from "no spans were recorded at all" (tracing off) — both of
  /// which leave spans_complete false.
  bool ring_wrapped = false;
  /// Max relative |span - histogram| / histogram across checked stages
  /// (0 when spans_complete is false or every stage is below the floor).
  double max_drift_fraction = 0;

  std::vector<StageCost> stages;  // ranked by busy_seconds, descending

  /// pipeline.stage.*_seconds histograms the analyzer consumed.
  std::vector<std::string> consumed_histograms;
  /// pipeline.stage.*_seconds histograms it does not know — instrumentation
  /// drift; --validate fails when this is non-empty.
  std::vector<std::string> unattributed_histograms;

  [[nodiscard]] std::string to_json() const;
  [[nodiscard]] std::string human_table() const;
};

struct AnalyzerInput {
  /// Registry holding the pipeline.stage.* histograms; null means the
  /// process-global registry. Pass a rank's or tenant's private registry
  /// (with `scope` set) for a per-scope report.
  const obs::MetricsRegistry* metrics = nullptr;
  /// Scope label stamped into the report (see BottleneckReport::scope).
  std::string scope{};
  /// Span source for the cross-check; null means Tracer::global().
  const obs::Tracer* tracer = nullptr;
  /// sciprep::flow — the server-side tenant MetricsSnapshot pulled over the
  /// wire (WireClient::server_totals()), or null for a local run. Splits the
  /// client's batch-wait into server queue-wait / server encode / server
  /// send / socket residual, so the verdict can tell a slow producer from a
  /// slow transport.
  const obs::MetricsSnapshot* server_metrics = nullptr;
  /// End-to-end wall time of the analyzed run (epoch loop), in seconds.
  double wall_seconds = 0;
  /// Decode worker count (PipelineConfig::worker_threads).
  std::size_t workers = 1;
};

/// Build the report. Pure read: consumes snapshots, mutates nothing. Under
/// SCIPREP_OBS_DISABLED returns a default-constructed report.
[[nodiscard]] BottleneckReport analyze_critical_path(const AnalyzerInput& input);

/// Write report.to_json() to `path` atomically; throws IoError on failure.
void write_report(const std::string& path, const BottleneckReport& report);

}  // namespace sciprep::insight
