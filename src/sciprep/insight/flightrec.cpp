#include "sciprep/insight/flightrec.hpp"

#include <chrono>
#include <cstdio>
#include <ctime>
#include <filesystem>
#include <utility>

#include "sciprep/common/error.hpp"
#include "sciprep/common/log.hpp"
#include "sciprep/common/threadpool.hpp"
#include "sciprep/insight/internal.hpp"
#include "sciprep/obs/json.hpp"

namespace sciprep::insight {

namespace {

/// ISO-8601 UTC with millisecond precision, e.g. "2026-08-09T12:34:56.789Z".
std::string iso8601_utc_now() {
  const auto now = std::chrono::system_clock::now();
  const std::time_t secs = std::chrono::system_clock::to_time_t(now);
  const auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                      now.time_since_epoch())
                      .count() %
                  1000;
  std::tm tm{};
  gmtime_r(&secs, &tm);
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%04d-%02d-%02dT%02d:%02d:%02d.%03dZ",
                tm.tm_year + 1900, tm.tm_mon + 1, tm.tm_mday, tm.tm_hour,
                tm.tm_min, tm.tm_sec, static_cast<int>(ms));
  return buf;
}

}  // namespace

FlightRecorder::FlightRecorder(FlightRecorderConfig config)
    : config_(std::move(config)),
      metrics_(config_.metrics != nullptr ? config_.metrics
                                          : &obs::MetricsRegistry::global()),
      tracer_(config_.tracer != nullptr ? config_.tracer
                                        : &obs::Tracer::global()) {
#if !defined(SCIPREP_OBS_DISABLED)
  if (!config_.dir.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(config_.dir, ec);
    if (ec) {
      log_warn("insight: cannot create flight-recorder dir '{}': {}",
               config_.dir, ec.message());
    }
  }
#endif
}

std::uint64_t FlightRecorder::incidents_written() const noexcept {
  std::lock_guard lock(mutex_);
  return written_;
}

std::uint64_t FlightRecorder::incidents_suppressed() const noexcept {
  std::lock_guard lock(mutex_);
  return suppressed_;
}

#if defined(SCIPREP_OBS_DISABLED)

void FlightRecorder::record_incident(const fault::RecoveryEvent&) noexcept {}
void FlightRecorder::dump_locked(const LoggedEvent&) {}
fault::RecoveryListener FlightRecorder::listener() { return {}; }

#else

fault::RecoveryListener FlightRecorder::listener() {
  return [this](const fault::RecoveryEvent& event) { record_incident(event); };
}

void FlightRecorder::record_incident(
    const fault::RecoveryEvent& event) noexcept {
  try {
    std::lock_guard lock(mutex_);
    LoggedEvent logged{event, tracer_->now_ns(), iso8601_utc_now()};
    decision_log_.push_back(logged);
    while (decision_log_.size() > config_.max_decision_log) {
      decision_log_.pop_front();
    }
    if (config_.dir.empty()) return;

    const auto now = std::chrono::steady_clock::now();
    const std::uint32_t kind_bit = 1u
                                   << static_cast<unsigned>(logged.event.kind);
    // Rate limits are per scope: a rank's or tenant's storm spends its own
    // cap and interval window, never another scope's first-of-kind dump.
    ScopeState& scope = scopes_[logged.event.scope];
    const bool under_cap =
        scope.written < config_.max_incidents &&
        (config_.max_total_incidents == 0 ||
         written_ < config_.max_total_incidents);
    const bool interval_ok =
        scope.written == 0 || (scope.dumped_kinds & kind_bit) == 0 ||
        config_.min_interval_seconds <= 0 ||
        std::chrono::duration<double>(now - scope.last_dump_at).count() >=
            config_.min_interval_seconds;
    if (!under_cap || !interval_ok) {
      suppressed_ += 1;
      metrics_->counter("insight.incidents_suppressed_total").add(1);
      return;
    }
    dump_locked(logged);
    scope.dumped_kinds |= kind_bit;
    scope.written += 1;
    scope.last_dump_at = now;
    written_ += 1;
    metrics_->counter("insight.incidents_written_total").add(1);
  } catch (const std::exception& e) {
    // Incident capture must never escalate the incident.
    suppressed_ += 1;
    log_warn("insight: incident dump failed: {}", e.what());
  }
}

void FlightRecorder::dump_locked(const LoggedEvent& logged) {
  std::string body;
  body.reserve(4096);
  body += fmt(
      "{{\"schema\":\"sciprep.insight.incident.v1\",\"seq\":{},"
      "\"kind\":\"{}\",\"stage\":\"{}\",\"detail\":\"{}\",\"scope\":\"{}\","
      "\"sample_index\":{},\"attempt\":{},\"t_ns\":{},\"t_wall\":\"{}\","
      "\"config_fingerprint\":\"{:x}\",",
      written_, fault::event_kind_name(logged.event.kind),
      obs::json_escape(logged.event.stage),
      obs::json_escape(logged.event.detail),
      obs::json_escape(logged.event.scope), logged.event.sample_index,
      logged.event.attempt, logged.t_ns, obs::json_escape(logged.t_wall),
      config_.config_fingerprint);

  // Last-K spans, oldest first, with role names resolved so the timeline
  // reads without a separate thread table.
  body += "\"spans\":[";
  bool first = true;
  for (const obs::TraceSpan& span : tracer_->snapshot_tail(config_.max_spans)) {
    if (!first) body += ',';
    first = false;
    body += fmt(
        "{{\"name\":\"{}\",\"cat\":\"{}\",\"thread\":{},"
        "\"thread_name\":\"{}\",\"t_start_ns\":{},\"t_end_ns\":{}}}",
        obs::json_escape(span.name), obs::json_escape(span.category),
        span.thread, obs::json_escape(thread_name(span.thread)),
        span.t_start_ns, span.t_end_ns);
  }
  body += "],";

  // Recent recovery decisions, including rate-limited ones.
  body += "\"decision_log\":[";
  first = true;
  for (const LoggedEvent& entry : decision_log_) {
    if (!first) body += ',';
    first = false;
    body += fmt(
        "{{\"kind\":\"{}\",\"stage\":\"{}\",\"detail\":\"{}\","
        "\"scope\":\"{}\",\"sample_index\":{},\"attempt\":{},\"t_ns\":{},"
        "\"t_wall\":\"{}\"}}",
        fault::event_kind_name(entry.event.kind),
        obs::json_escape(entry.event.stage),
        obs::json_escape(entry.event.detail),
        obs::json_escape(entry.event.scope), entry.event.sample_index,
        entry.event.attempt, entry.t_ns, obs::json_escape(entry.t_wall));
  }
  body += "],";

  body += "\"metrics\":";
  body += metrics_->to_json();
  body += "}\n";

  const std::string path =
      fmt("{}/incident-{}-{}.json", config_.dir, written_,
          fault::event_kind_name(logged.event.kind));
  detail::write_file_atomic(path, body);
}

#endif  // SCIPREP_OBS_DISABLED

}  // namespace sciprep::insight
