// Shared file-IO helpers for the insight writers. Internal to the library —
// not part of the sciprep::insight API surface.
#pragma once

#include <string>

namespace sciprep::insight::detail {

/// Write `body` to `path + ".tmp"` and rename over `path`, so readers see
/// either the old complete file or the new one, never a torn write. Throws
/// IoError on filesystem failure.
void write_file_atomic(const std::string& path, const std::string& body);

/// Append `line` to `path` (creating it), one open/write/close per call.
/// Throws IoError on filesystem failure.
void append_file(const std::string& path, const std::string& line);

}  // namespace sciprep::insight::detail
