// Incident flight recorder (sciprep::insight).
//
// When the fault/guard machinery fires — a retry escalates, a watchdog
// deadline expires, a sample is quarantined, the error budget runs out, a
// checkpoint resume is rejected — the flight recorder dumps an incident file
// with the evidence a human needs *afterwards*: the last-K spans from the
// trace ring, a full metrics snapshot, the recent recovery-decision log, and
// the pipeline's config fingerprint, so the incident names the exact run
// configuration it happened under.
//
// Dumps are crash-safe (tmp + rename, like guard snapshots) and rate-limited
// two ways: a minimum interval between dumps and an incident cap, so a
// wholly-corrupt shard produces a handful of files, not one per sample.
// Both limits are scoped per RecoveryEvent::scope (rank, tenant, or the ""
// process scope): one tenant's incident storm spends only that tenant's
// cap and interval, so another tenant's first-of-kind incident still dumps.
// A global backstop (max_total_incidents) bounds the file count across all
// scopes. Every event — dumped or suppressed — still lands in the in-memory
// decision log, so the next dump carries the full recent history.
//
// record_incident() never throws: it is called from pool workers and the
// watchdog thread in the middle of recovery, where an exception would turn a
// recovered fault into a failed run. Under SCIPREP_OBS_DISABLED the recorder
// compiles to a no-op and listener() returns a null callback.
#pragma once

#include <chrono>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <string>

#include "sciprep/fault/fault.hpp"
#include "sciprep/obs/metrics.hpp"
#include "sciprep/obs/trace.hpp"

namespace sciprep::insight {

struct FlightRecorderConfig {
  /// Directory incident files land in (created if missing). Files are named
  /// incident-<seq>-<kind>.json.
  std::string dir;
  /// Newest spans from the trace ring embedded per incident.
  std::size_t max_spans = 256;
  /// Recovery events retained in the rolling decision log.
  std::size_t max_decision_log = 64;
  /// Cap on incident files *per scope* (a rank, a tenant, or the "" process
  /// scope). A single-scope run behaves exactly as if this were a global
  /// cap; in a multi-tenant run each tenant spends its own.
  std::uint64_t max_incidents = 16;
  /// Backstop on incident files across every scope, so a run with many
  /// misbehaving tenants still writes a bounded set. Zero disables.
  std::uint64_t max_total_incidents = 64;
  /// Minimum spacing between a scope's dumps; events inside the window are
  /// logged but not dumped. Zero disables the interval limit (the caps
  /// still apply). The first occurrence of each (scope, kind) bypasses the
  /// interval — a rare deadline expiry arriving mid-retry-storm still
  /// produces its incident, and tenant B's first incident is never gated on
  /// tenant A's last dump time.
  double min_interval_seconds = 1.0;
  /// Metrics snapshot source; null means the process-global registry.
  obs::MetricsRegistry* metrics = nullptr;
  /// Span source; null means Tracer::global().
  const obs::Tracer* tracer = nullptr;
  /// The pipeline's config fingerprint, stamped into every incident.
  std::uint64_t config_fingerprint = 0;
};

class FlightRecorder {
 public:
  explicit FlightRecorder(FlightRecorderConfig config);

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  /// Log `event` and, unless rate-limited, dump an incident file. Never
  /// throws; a failed dump is counted and logged as a warning.
  void record_incident(const fault::RecoveryEvent& event) noexcept;

  /// Adapter for PipelineConfig::on_recovery_event. The recorder must
  /// outlive the pipeline. Returns a null callback under
  /// SCIPREP_OBS_DISABLED (the pipeline skips null listeners).
  [[nodiscard]] fault::RecoveryListener listener();

  [[nodiscard]] std::uint64_t incidents_written() const noexcept;
  /// Events that did not produce a file (rate limit, cap, or write failure).
  [[nodiscard]] std::uint64_t incidents_suppressed() const noexcept;

  /// Stamp the fingerprint after the fact — the recorder is typically built
  /// (and its listener wired into PipelineConfig) before the pipeline whose
  /// fingerprint it reports exists.
  void set_config_fingerprint(std::uint64_t fingerprint) noexcept {
    std::lock_guard lock(mutex_);
    config_.config_fingerprint = fingerprint;
  }

 private:
  struct LoggedEvent {
    fault::RecoveryEvent event;
    std::uint64_t t_ns = 0;  // tracer timebase (steady clock)
    /// Wall-clock stamp (ISO-8601 UTC), captured at record time. The steady
    /// stamp orders the incident against spans; this one lets a human line
    /// the incident up against logs from *other* machines and processes.
    std::string t_wall;
  };

  /// Per-scope rate-limit bookkeeping (keyed by RecoveryEvent::scope).
  struct ScopeState {
    std::uint32_t dumped_kinds = 0;  // bitmask of EventKind values dumped
    std::uint64_t written = 0;
    std::chrono::steady_clock::time_point last_dump_at{};
  };

  void dump_locked(const LoggedEvent& logged);

  FlightRecorderConfig config_;
  obs::MetricsRegistry* metrics_;
  const obs::Tracer* tracer_;

  mutable std::mutex mutex_;
  std::deque<LoggedEvent> decision_log_;
  std::map<std::string, ScopeState> scopes_;
  std::uint64_t written_ = 0;  // across all scopes; also the file seq number
  std::uint64_t suppressed_ = 0;
};

}  // namespace sciprep::insight
