#include "sciprep/insight/analyze.hpp"

#include <algorithm>
#include <cmath>
#include <iterator>
#include <string_view>

#include "sciprep/common/error.hpp"
#include "sciprep/insight/internal.hpp"
#include "sciprep/obs/json.hpp"

namespace sciprep::insight {

namespace {

// Below this much busy time a stage's numbers are noise: no drift check, no
// dominance — a 2 ms shuffle must not out-rank an idle pipeline.
constexpr double kBusyFloorSeconds = 0.01;

// A consumer that spends less than this fraction of wall waiting on batches
// is not limited by the pipeline at all.
constexpr double kConsumerBoundStallFraction = 0.05;

double hist_sum(const obs::MetricsSnapshot& snap, const char* name) {
  const auto it = snap.histograms.find(name);
  return it != snap.histograms.end() ? it->second.sum : 0.0;
}

std::uint64_t hist_count(const obs::MetricsSnapshot& snap, const char* name) {
  const auto it = snap.histograms.find(name);
  return it != snap.histograms.end() ? it->second.count : 0;
}

}  // namespace

#if defined(SCIPREP_OBS_DISABLED)

BottleneckReport analyze_critical_path(const AnalyzerInput& input) {
  (void)input;
  return {};
}

#else

BottleneckReport analyze_critical_path(const AnalyzerInput& input) {
  const obs::MetricsRegistry& registry =
      input.metrics != nullptr ? *input.metrics : obs::MetricsRegistry::global();
  const obs::Tracer& tracer =
      input.tracer != nullptr ? *input.tracer : obs::Tracer::global();
  const obs::MetricsSnapshot snap = registry.snapshot();

  BottleneckReport report;
  report.wall_seconds = input.wall_seconds;
  report.workers = std::max<std::size_t>(1, input.workers);
  report.scope = input.scope;

  // --- Histogram side: authoritative exclusive busy-seconds per stage. ---
  const double io = hist_sum(snap, "pipeline.stage.io_read_seconds");
  const double gunzip = hist_sum(snap, "pipeline.stage.gunzip_seconds");
  const double backoff = hist_sum(snap, "pipeline.stage.retry_backoff_seconds");
  const double decode_incl = hist_sum(snap, "pipeline.stage.decode_seconds");
  // The decode histogram times the whole recovery loop, so it contains the
  // io.read and gunzip stages and the retry backoff sleeps; subtract them to
  // get the time actually spent decoding bytes into tensors.
  const double decode_excl =
      std::max(0.0, decode_incl - io - gunzip - backoff);

  struct RawStage {
    const char* name;
    const char* histogram;  // source histogram (for events + consumed list)
    double busy;
  };
  const RawStage raw[] = {
      {"io.read", "pipeline.stage.io_read_seconds", io},
      {"gunzip", "pipeline.stage.gunzip_seconds", gunzip},
      {"decode", "pipeline.stage.decode_seconds", decode_excl},
      {"decode.gpu", "pipeline.stage.decode_gpu_seconds",
       hist_sum(snap, "pipeline.stage.decode_gpu_seconds")},
      {"ops", "pipeline.stage.ops_seconds",
       hist_sum(snap, "pipeline.stage.ops_seconds")},
      {"retry.backoff", "pipeline.stage.retry_backoff_seconds", backoff},
      {"shuffle", "pipeline.stage.shuffle_seconds",
       hist_sum(snap, "pipeline.stage.shuffle_seconds")},
  };

  // --- Span side: independent per-stage sums for the cross-check. ---
  double span_io = 0;
  double span_gunzip = 0;
  double span_decode = 0;
  double span_ops = 0;
  const std::uint64_t recorded = tracer.total_recorded();
  report.ring_wrapped = tracer.dropped_total() > 0;
  report.spans_complete = recorded > 0 && !report.ring_wrapped;
  if (report.spans_complete) {
    for (const obs::TraceSpan& span : tracer.snapshot()) {
      const double dur =
          static_cast<double>(span.t_end_ns - span.t_start_ns) / 1e9;
      if (span.name == "pipeline.io_read") {
        span_io += dur;
      } else if (span.name == "pipeline.gunzip") {
        span_gunzip += dur;
      } else if (span.name == "pipeline.decode") {
        span_decode += dur;
      } else if (span.name == "pipeline.ops") {
        span_ops += dur;
      }
    }
  }
  // A decode span covers one decode_guarded attempt (io + gunzip included,
  // backoff not), so its exclusive form subtracts the two nested stages.
  const double span_decode_excl =
      std::max(0.0, span_decode - span_io - span_gunzip);

  const double span_by_stage[] = {span_io, span_gunzip, span_decode_excl,
                                  0 /*decode.gpu*/, span_ops,
                                  0 /*retry.backoff*/, 0 /*shuffle*/};
  const bool span_checked[] = {true, true, true, false, true, false, false};

  // --- Assemble, rank, and cross-check. ---
  const double wall = std::max(input.wall_seconds, 1e-9);
  const double capacity = wall * static_cast<double>(report.workers);
  double pipeline_busy = 0;
  for (std::size_t i = 0; i < std::size(raw); ++i) {
    StageCost stage;
    stage.name = raw[i].name;
    stage.busy_seconds = raw[i].busy;
    stage.events = hist_count(snap, raw[i].histogram);
    stage.span_seconds = span_by_stage[i];
    stage.occupancy = raw[i].busy / capacity;
    pipeline_busy += raw[i].busy;
    if (report.spans_complete && span_checked[i] &&
        raw[i].busy >= kBusyFloorSeconds) {
      const double drift =
          std::fabs(stage.span_seconds - stage.busy_seconds) /
          stage.busy_seconds;
      report.max_drift_fraction = std::max(report.max_drift_fraction, drift);
    }
    report.stages.push_back(std::move(stage));
  }
  // --- sciprep::flow wire attribution (served runs). Histogram names are
  // kept in sync with sciprep/flow/merge.hpp; insight sits below flow in
  // the link order, so the names are spelled out here. ---
  const double wire_c_encode = hist_sum(snap, "flow.client.encode_seconds");
  const double wire_c_wait = hist_sum(snap, "flow.client.wait_seconds");
  const double wire_c_decode = hist_sum(snap, "flow.client.decode_seconds");
  report.wire_attributed = hist_count(snap, "flow.client.wait_seconds") > 0;
  if (report.wire_attributed) {
    double srv_queue = 0;
    double srv_encode = 0;
    double srv_send = 0;
    std::uint64_t srv_events = 0;
    if (input.server_metrics != nullptr) {
      srv_queue =
          hist_sum(*input.server_metrics, "flow.server.queue_wait_seconds");
      srv_encode =
          hist_sum(*input.server_metrics, "flow.server.encode_seconds");
      srv_send = hist_sum(*input.server_metrics, "flow.server.send_seconds");
      srv_events = hist_count(*input.server_metrics,
                              "flow.server.queue_wait_seconds");
    }
    // What remains of the client's blocked time after the server has
    // accounted for its queue-wait, encode, and send: kernel buffering,
    // scheduling, and the bytes actually in flight — the socket itself.
    const double socket =
        std::max(0.0, wire_c_wait - srv_queue - srv_encode - srv_send);
    const struct {
      const char* name;
      const char* histogram;  // client-side source, nullptr for server-side
      double busy;
      std::uint64_t events;
    } wire[] = {
        {"wire.client.encode", "flow.client.encode_seconds", wire_c_encode, 0},
        {"wire.client.decode", "flow.client.decode_seconds", wire_c_decode, 0},
        {"server.queue_wait", nullptr, srv_queue, srv_events},
        {"wire.server.encode", nullptr, srv_encode, srv_events},
        {"wire.server.send", nullptr, srv_send, srv_events},
        {"wire.socket", "flow.client.wait_seconds", socket, 0},
    };
    for (const auto& w : wire) {
      StageCost stage;
      stage.name = w.name;
      stage.busy_seconds = w.busy;
      stage.events = w.histogram != nullptr ? hist_count(snap, w.histogram)
                                            : w.events;
      stage.occupancy = w.busy / capacity;
      report.stages.push_back(std::move(stage));
    }
  }

  std::sort(report.stages.begin(), report.stages.end(),
            [](const StageCost& a, const StageCost& b) {
              return a.busy_seconds > b.busy_seconds;
            });

  // Over the wire the batch-wait lives in flow.client.wait_seconds instead
  // of the local prefetch histogram; the two are disjoint by construction
  // (a consumer either pulls from a local pipeline or from a WireClient).
  report.prefetch_stall_seconds =
      hist_sum(snap, "pipeline.stage.prefetch_wait_seconds") + wire_c_wait;
  report.prefetch_stall_fraction = report.prefetch_stall_seconds / wall;

  // --- What-if speedups: with stage i free, epoch time is bounded below by
  // the consumer's own compute and by the remaining pipeline work spread
  // over the workers (the paper's Fig. 12 stage-removal estimate). Wire and
  // server stages are serial consumer-path time, not worker-parallel work:
  // removing one shortens the wall directly instead of freeing capacity. ---
  const double consumer_compute =
      std::max(0.0, wall - report.prefetch_stall_seconds);
  for (StageCost& stage : report.stages) {
    const bool serial = stage.name.rfind("wire.", 0) == 0 ||
                        stage.name == "server.queue_wait";
    const double bound =
        serial ? std::max(consumer_compute, wall - stage.busy_seconds)
               : std::max(consumer_compute,
                          (pipeline_busy - stage.busy_seconds) /
                              static_cast<double>(report.workers));
    stage.whatif_speedup = std::max(1.0, wall / std::max(bound, 1e-9));
  }

  // --- Verdict. ---
  if (!report.stages.empty() &&
      report.stages.front().busy_seconds >= kBusyFloorSeconds) {
    report.dominant_stage = report.stages.front().name;
  }
  if (report.prefetch_stall_fraction < kConsumerBoundStallFraction) {
    // The consumer almost never waited for a batch: the pipeline keeps up
    // and epoch time is the training step's problem.
    report.verdict = "consumer-bound";
  } else if (report.dominant_stage == "server.queue_wait") {
    report.verdict = "server-queue-bound";
  } else if (report.dominant_stage.rfind("wire.", 0) == 0) {
    report.verdict = "wire-bound";
  } else if (report.dominant_stage == "io.read" ||
             report.dominant_stage == "gunzip" ||
             report.dominant_stage == "retry.backoff") {
    report.verdict = "io-bound";
  } else if (!report.dominant_stage.empty()) {
    report.verdict = "decode-bound";
  } else {
    report.verdict = "idle";
  }

  // --- Instrumentation-drift audit: every pipeline.stage.*_seconds
  // histogram must be one the analyzer consumed. ---
  const char* const known[] = {
      "pipeline.stage.shuffle_seconds",
      "pipeline.stage.decode_seconds",
      "pipeline.stage.io_read_seconds",
      "pipeline.stage.gunzip_seconds",
      "pipeline.stage.ops_seconds",
      "pipeline.stage.batch_assemble_seconds",
      "pipeline.stage.prefetch_wait_seconds",
      "pipeline.stage.decode_gpu_seconds",
      "pipeline.stage.retry_backoff_seconds",
  };
  for (const auto& [name, h] : snap.histograms) {
    constexpr std::string_view kPrefix = "pipeline.stage.";
    if (name.rfind(kPrefix, 0) != 0) continue;
    const bool is_known =
        std::find_if(std::begin(known), std::end(known), [&](const char* k) {
          return name == k;
        }) != std::end(known);
    if (is_known) {
      if (h.count > 0) report.consumed_histograms.push_back(name);
    } else {
      report.unattributed_histograms.push_back(name);
    }
  }
  return report;
}

#endif  // SCIPREP_OBS_DISABLED

std::string BottleneckReport::to_json() const {
  std::string out;
  out.reserve(1024);
  out += fmt(
      "{{\"schema\":\"sciprep.insight.bottleneck.v1\",\"wall_seconds\":{},"
      "\"workers\":{},\"scope\":\"{}\",\"dominant_stage\":\"{}\","
      "\"verdict\":\"{}\","
      "\"prefetch_stall_seconds\":{},\"prefetch_stall_fraction\":{},"
      "\"wire_attributed\":{},"
      "\"spans_complete\":{},\"ring_wrapped\":{},\"max_drift_fraction\":{},"
      "\"stages\":[",
      obs::json_number(wall_seconds), workers, obs::json_escape(scope),
      obs::json_escape(dominant_stage),
      obs::json_escape(verdict), obs::json_number(prefetch_stall_seconds),
      obs::json_number(prefetch_stall_fraction), wire_attributed,
      spans_complete, ring_wrapped,
      obs::json_number(max_drift_fraction));
  bool first = true;
  for (const StageCost& stage : stages) {
    if (!first) out += ',';
    first = false;
    out += fmt(
        "{{\"name\":\"{}\",\"busy_seconds\":{},\"span_seconds\":{},"
        "\"events\":{},\"occupancy\":{},\"whatif_speedup\":{}}}",
        obs::json_escape(stage.name), obs::json_number(stage.busy_seconds),
        obs::json_number(stage.span_seconds), stage.events,
        obs::json_number(stage.occupancy),
        obs::json_number(stage.whatif_speedup));
  }
  out += "],\"consumed_histograms\":[";
  first = true;
  for (const std::string& name : consumed_histograms) {
    if (!first) out += ',';
    first = false;
    out += fmt("\"{}\"", obs::json_escape(name));
  }
  out += "],\"unattributed_histograms\":[";
  first = true;
  for (const std::string& name : unattributed_histograms) {
    if (!first) out += ',';
    first = false;
    out += fmt("\"{}\"", obs::json_escape(name));
  }
  out += "]}";
  return out;
}

std::string BottleneckReport::human_table() const {
  std::string out;
  out += fmt("bottleneck report — wall {:.3f}s, {} workers{}\n", wall_seconds,
             workers, scope.empty() ? std::string() : fmt(", scope {}", scope));
  out += fmt("  verdict: {} (dominant stage: {})\n", verdict,
             dominant_stage.empty() ? "-" : dominant_stage);
  out += fmt("  prefetch stall: {:.3f}s ({:.1f}% of wall)\n",
             prefetch_stall_seconds, prefetch_stall_fraction * 100);
  out += fmt("  {:<16} {:>11} {:>11} {:>9} {:>10} {:>9}\n", "stage", "busy s",
             "span s", "events", "occupancy", "what-if");
  for (const StageCost& stage : stages) {
    out += fmt("  {:<16} {:>11.4f} {:>11.4f} {:>9} {:>9.1f}% {:>8.2f}x\n",
               stage.name, stage.busy_seconds, stage.span_seconds,
               stage.events, stage.occupancy * 100, stage.whatif_speedup);
  }
  if (!spans_complete) {
    out += ring_wrapped
               ? "  (span ring wrapped: span column unverified — size the "
                 "ring up)\n"
               : "  (no spans recorded: span column unverified)\n";
  } else {
    out += fmt("  span-vs-histogram drift: {:.1f}% max\n",
               max_drift_fraction * 100);
  }
  for (const std::string& name : unattributed_histograms) {
    out += fmt("  WARNING: unattributed stage histogram {}\n", name);
  }
  return out;
}

void write_report(const std::string& path, const BottleneckReport& report) {
  detail::write_file_atomic(path, report.to_json() + "\n");
}

}  // namespace sciprep::insight
