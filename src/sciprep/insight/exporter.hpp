// Continuous metrics exporter (sciprep::insight).
//
// A background sampler that snapshots a MetricsRegistry every N ms and
// appends one JSON object per tick to a JSONL time-series file, optionally
// also rewriting a Prometheus-style text file with the latest values. The
// exporter is delta-aware: every counter tick carries its since-last-tick
// delta and per-second rate, so samples/s, bytes/s, and retries/s are
// first-class series — the continuous view of preprocessing stalls the
// post-hoc aggregate dump cannot give.
//
// Threading mirrors the guard watchdog: the sampler thread starts lazily on
// start(), wakes once per interval, and stop() (or destruction) joins it
// after flushing one final tick — so every counter increment between start()
// and stop() lands in exactly one tick's delta, including increments in the
// final partial interval.
//
// Under SCIPREP_OBS_DISABLED the exporter compiles to a no-op: start() and
// stop() do nothing and no files are written.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <thread>

#include "sciprep/obs/metrics.hpp"

namespace sciprep::insight {

struct ExporterConfig {
  /// Sampling interval; values <= 0 fall back to 0.1 s.
  double interval_seconds = 0.1;
  /// JSONL time-series path ("" disables). One JSON object per tick,
  /// appended — restartable runs accumulate in the same file.
  std::string jsonl_path;
  /// Prometheus text-format path ("" disables). Rewritten atomically
  /// (tmp + rename) every tick with the latest values.
  std::string prom_path;
  /// Registry to sample; null means obs::MetricsRegistry::global(). Must
  /// outlive the exporter.
  obs::MetricsRegistry* metrics = nullptr;
  /// Scope label stamped into every JSONL tick ("tenant/<name>", "rank<N>",
  /// "" for a whole-process series). flow::merge_fleet() keys federated
  /// series by this field, so per-tenant exports from different processes
  /// stay distinguishable after they are merged into one file.
  std::string scope;
  /// Called at the start of every tick, before the registry snapshot — the
  /// hook by which slow-changing sources (e.g. perfscope's ResourceSampler)
  /// refresh their gauges on the exporter's cadence so each JSONL line
  /// carries a fresh reading. Runs on the sampler thread (and inside
  /// tick()); must be thread-safe and must not throw. Null is free.
  std::function<void()> pre_tick;
};

class ContinuousExporter {
 public:
  explicit ContinuousExporter(ExporterConfig config);
  ~ContinuousExporter();

  ContinuousExporter(const ContinuousExporter&) = delete;
  ContinuousExporter& operator=(const ContinuousExporter&) = delete;

  /// Take the baseline snapshot and start the sampler thread. No-op when
  /// already running or when neither output path is set.
  void start();

  /// Stop the sampler, flush one final tick covering the partial interval,
  /// and join. Idempotent.
  void stop();

  /// Take one sample right now (tick number, delta, rates, file writes) —
  /// the deterministic entry point tests drive without the thread.
  void tick();

  /// Ticks written so far (also exported as insight.export_ticks_total).
  [[nodiscard]] std::uint64_t ticks_total() const noexcept;

 private:
  void run();
  void tick_locked();

  ExporterConfig config_;
  obs::MetricsRegistry* metrics_;  // resolved target registry

  std::mutex mutex_;  // guards baseline/tick state and file writes
  std::condition_variable cv_;
  std::thread thread_;
  bool running_ = false;
  bool stopping_ = false;

  obs::MetricsSnapshot last_;  // previous tick's snapshot (delta base)
  std::chrono::steady_clock::time_point started_at_{};
  std::chrono::steady_clock::time_point last_tick_at_{};
  std::atomic<std::uint64_t> ticks_{0};
};

}  // namespace sciprep::insight
