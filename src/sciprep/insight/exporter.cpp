#include "sciprep/insight/exporter.hpp"

#include <cstdio>
#include <utility>

#include "sciprep/common/error.hpp"
#include "sciprep/common/log.hpp"
#include "sciprep/common/threadpool.hpp"
#include "sciprep/insight/internal.hpp"
#include "sciprep/obs/json.hpp"

namespace sciprep::insight {

ContinuousExporter::ContinuousExporter(ExporterConfig config)
    : config_(std::move(config)),
      metrics_(config_.metrics != nullptr ? config_.metrics
                                          : &obs::MetricsRegistry::global()) {
  if (config_.interval_seconds <= 0) config_.interval_seconds = 0.1;
}

ContinuousExporter::~ContinuousExporter() { stop(); }

std::uint64_t ContinuousExporter::ticks_total() const noexcept {
  return ticks_.load(std::memory_order_relaxed);
}

#if defined(SCIPREP_OBS_DISABLED)

void ContinuousExporter::start() {}
void ContinuousExporter::stop() {}
void ContinuousExporter::tick() {}
void ContinuousExporter::run() {}
void ContinuousExporter::tick_locked() {}

#else

namespace {

using detail::append_file;
using detail::write_file_atomic;

/// Prometheus metric names allow [a-zA-Z0-9_:]; sciprep's dotted names map
/// by replacing every other character with '_' and prefixing "sciprep_".
std::string prom_name(const std::string& name) {
  std::string out = "sciprep_";
  out.reserve(out.size() + name.size());
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9');
    out.push_back(ok ? c : '_');
  }
  return out;
}

}  // namespace

void ContinuousExporter::start() {
  std::lock_guard lock(mutex_);
  if (running_) return;
  if (config_.jsonl_path.empty() && config_.prom_path.empty()) return;
  running_ = true;
  stopping_ = false;
  started_at_ = std::chrono::steady_clock::now();
  last_tick_at_ = started_at_;
  // Baseline: the first tick's deltas cover exactly [start, first tick).
  last_ = metrics_->snapshot();
  thread_ = std::thread([this] { run(); });
}

void ContinuousExporter::stop() {
  {
    std::lock_guard lock(mutex_);
    if (!running_) return;
    stopping_ = true;
  }
  cv_.notify_all();
  thread_.join();
  std::lock_guard lock(mutex_);
  // Final flush: increments in the last partial interval land in one
  // closing tick instead of evaporating.
  tick_locked();
  running_ = false;
}

void ContinuousExporter::tick() {
  std::lock_guard lock(mutex_);
  if (!running_) {
    // Driven manually (tests): lazily establish the baseline.
    if (ticks_.load(std::memory_order_relaxed) == 0 &&
        started_at_ == std::chrono::steady_clock::time_point{}) {
      started_at_ = std::chrono::steady_clock::now();
      last_tick_at_ = started_at_;
      last_ = metrics_->snapshot();
    }
  }
  tick_locked();
}

void ContinuousExporter::run() {
  set_thread_name("insight.exporter");
  std::unique_lock lock(mutex_);
  const auto interval = std::chrono::duration_cast<
      std::chrono::steady_clock::duration>(
      std::chrono::duration<double>(config_.interval_seconds));
  while (!stopping_) {
    if (cv_.wait_for(lock, interval, [this] { return stopping_; })) {
      return;  // stop() writes the closing tick after the join
    }
    tick_locked();
  }
}

void ContinuousExporter::tick_locked() {
  if (config_.pre_tick) config_.pre_tick();
  const auto now = std::chrono::steady_clock::now();
  const double t = std::chrono::duration<double>(now - started_at_).count();
  const double dt = std::chrono::duration<double>(now - last_tick_at_).count();
  const obs::MetricsSnapshot snap = metrics_->snapshot();

  try {
    if (!config_.jsonl_path.empty()) {
      std::string line;
      line.reserve(1024);
      line += fmt("{{\"t\":{},\"dt\":{},\"tick\":{},\"scope\":\"{}\","
                  "\"counters\":{{",
                  obs::json_number(t), obs::json_number(dt),
                  ticks_.load(std::memory_order_relaxed),
                  obs::json_escape(config_.scope));
      bool first = true;
      for (const auto& [name, total] : snap.counters) {
        const auto it = last_.counters.find(name);
        const std::uint64_t base = it != last_.counters.end() ? it->second : 0;
        // reset() mid-run can make a counter go backwards; clamp the delta.
        const std::uint64_t delta = total >= base ? total - base : total;
        if (!first) line += ',';
        first = false;
        line += fmt("\"{}\":{{\"total\":{},\"delta\":{},\"rate\":{}}}",
                    obs::json_escape(name), total, delta,
                    obs::json_number(dt > 0 ? static_cast<double>(delta) / dt
                                            : 0.0));
      }
      line += "},\"gauges\":{";
      first = true;
      for (const auto& [name, g] : snap.gauges) {
        if (!first) line += ',';
        first = false;
        line += fmt("\"{}\":{{\"value\":{},\"high_watermark\":{}}}",
                    obs::json_escape(name), g.value, g.high_watermark);
      }
      line += "},\"histograms\":{";
      first = true;
      for (const auto& [name, h] : snap.histograms) {
        const auto it = last_.histograms.find(name);
        const std::uint64_t base_count =
            it != last_.histograms.end() ? it->second.count : 0;
        const double base_sum = it != last_.histograms.end() ? it->second.sum : 0;
        const std::uint64_t dcount =
            h.count >= base_count ? h.count - base_count : h.count;
        const double dsum = h.sum >= base_sum ? h.sum - base_sum : h.sum;
        if (!first) line += ',';
        first = false;
        line += fmt(
            "\"{}\":{{\"count\":{},\"sum\":{},\"count_delta\":{},"
            "\"sum_delta\":{}}}",
            obs::json_escape(name), h.count, obs::json_number(h.sum), dcount,
            obs::json_number(dsum));
      }
      line += "}}\n";
      append_file(config_.jsonl_path, line);
    }

    if (!config_.prom_path.empty()) {
      std::string body;
      body.reserve(1024);
      for (const auto& [name, total] : snap.counters) {
        const std::string p = prom_name(name);
        body += fmt("# TYPE {} counter\n{} {}\n", p, p, total);
      }
      for (const auto& [name, g] : snap.gauges) {
        const std::string p = prom_name(name);
        body += fmt("# TYPE {} gauge\n{} {}\n", p, p, g.value);
      }
      for (const auto& [name, h] : snap.histograms) {
        // count/sum pairs, the prometheus summary-metric core.
        const std::string p = prom_name(name);
        body += fmt("# TYPE {} summary\n{}_count {}\n{}_sum {}\n", p, p,
                    h.count, p, obs::json_number(h.sum));
      }
      write_file_atomic(config_.prom_path, body);
    }
  } catch (const std::exception& e) {
    // A failing disk must degrade telemetry, not the run it observes.
    log_warn("insight: export tick failed: {}", e.what());
  }

  last_ = snap;
  last_tick_at_ = now;
  ticks_.fetch_add(1, std::memory_order_relaxed);
  metrics_->counter("insight.export_ticks_total").add(1);
}

#endif  // SCIPREP_OBS_DISABLED

}  // namespace sciprep::insight
