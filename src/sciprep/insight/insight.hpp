// sciprep::insight — continuous telemetry export, critical-path bottleneck
// analysis, and incident flight recorder (DESIGN.md §10).
//
// Built on top of sciprep::obs (metrics snapshots, span ring),
// sciprep::fault (recovery events), and sciprep::guard (watchdog expiries):
//
//   * ContinuousExporter (exporter.hpp) — background sampler turning the
//     metrics registry into a JSONL time-series with first-class rates and a
//     Prometheus-style text file.
//   * analyze_critical_path (analyze.hpp) — per-stage occupancy, prefetch-
//     stall attribution, Amdahl-style what-if speedups, and a ranked
//     BottleneckReport naming the dominant stage.
//   * FlightRecorder (flightrec.hpp) — crash-safe, rate-limited incident
//     dumps (last-K spans, metrics snapshot, decision log, config
//     fingerprint) on every recovery/guard event.
//
// Under SCIPREP_OBS_DISABLED all three compile to no-ops.
#pragma once

#include "sciprep/insight/analyze.hpp"
#include "sciprep/insight/exporter.hpp"
#include "sciprep/insight/flightrec.hpp"
