#include "sciprep/insight/internal.hpp"

#include <cstdio>

#include "sciprep/common/error.hpp"

namespace sciprep::insight::detail {

void write_file_atomic(const std::string& path, const std::string& body) {
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) {
    throw IoError(fmt("insight: cannot open '{}' for writing", tmp));
  }
  const std::size_t written = std::fwrite(body.data(), 1, body.size(), f);
  const int close_rc = std::fclose(f);
  if (written != body.size() || close_rc != 0) {
    throw IoError(fmt("insight: short write to '{}'", tmp));
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    throw IoError(fmt("insight: cannot rename '{}' over '{}'", tmp, path));
  }
}

void append_file(const std::string& path, const std::string& line) {
  std::FILE* f = std::fopen(path.c_str(), "ab");
  if (f == nullptr) {
    throw IoError(fmt("insight: cannot open '{}' for appending", path));
  }
  const std::size_t written = std::fwrite(line.data(), 1, line.size(), f);
  const int close_rc = std::fclose(f);
  if (written != line.size() || close_rc != 0) {
    throw IoError(fmt("insight: short append to '{}'", path));
  }
}

}  // namespace sciprep::insight::detail
