#include "sciprep/insight/internal.hpp"

#include <cstdio>

#include "sciprep/common/error.hpp"
#include "sciprep/common/sysio.hpp"

namespace sciprep::insight::detail {

// Telemetry/incident emits go through the shared EINTR/partial-op-safe
// loops in sysio: a signal landing mid-fwrite must not tear a JSONL line or
// an incident file.
void write_file_atomic(const std::string& path, const std::string& body) {
  const std::string tmp = path + ".tmp";
  sysio::write_file(tmp, as_bytes(body));
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    throw IoError(fmt("insight: cannot rename '{}' over '{}'", tmp, path));
  }
}

void append_file(const std::string& path, const std::string& line) {
  sysio::append_file(path, as_bytes(line));
}

}  // namespace sciprep::insight::detail
