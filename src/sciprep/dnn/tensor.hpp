// Dense FP32 tensor for the training substrate.
//
// The convergence experiments (Figs 6-7) only need a small trainable model;
// all math runs in FP32 (both the paper's pipelines use automatic mixed
// precision with FP32 master weights). The *input* precision — FP32 baseline
// samples vs FP16 decoded samples — is the experimental variable, applied
// when the pipeline output is converted into these tensors.
#pragma once

#include <cstdint>
#include <numeric>
#include <vector>

#include "sciprep/common/error.hpp"
#include "sciprep/common/rng.hpp"

namespace sciprep::dnn {

struct Tensor {
  std::vector<std::uint64_t> shape;
  std::vector<float> data;

  Tensor() = default;
  explicit Tensor(std::vector<std::uint64_t> s) : shape(std::move(s)) {
    data.assign(element_count(shape), 0.0F);
  }
  Tensor(std::vector<std::uint64_t> s, std::vector<float> d)
      : shape(std::move(s)), data(std::move(d)) {
    SCIPREP_ASSERT(data.size() == element_count(shape));
  }

  static std::size_t element_count(const std::vector<std::uint64_t>& shape) {
    std::size_t n = 1;
    for (const auto d : shape) n *= static_cast<std::size_t>(d);
    return shape.empty() ? 0 : n;
  }

  [[nodiscard]] std::size_t size() const noexcept { return data.size(); }
  float& operator[](std::size_t i) { return data[i]; }
  float operator[](std::size_t i) const { return data[i]; }

  void fill(float v) { std::fill(data.begin(), data.end(), v); }

  /// He-normal initialization for a parameter tensor with `fan_in` inputs.
  void init_he(Rng& rng, std::size_t fan_in) {
    const float scale =
        std::sqrt(2.0F / static_cast<float>(std::max<std::size_t>(1, fan_in)));
    for (auto& v : data) {
      v = scale * static_cast<float>(rng.normal());
    }
  }
};

}  // namespace sciprep::dnn
