// Trainable layers with hand-written backward passes.
//
// Shapes follow the two benchmark models in miniature:
//   CosmoFlow : Conv3d/MaxPool3d stacks on [c,d,h,w] volumes + Dense head,
//   DeepCAM   : Conv2d stacks on [c,h,w] images with per-pixel class logits.
// Each layer caches what its backward pass needs; `backward` returns the
// input gradient and accumulates parameter gradients (cleared by the
// optimizer step). Single-sample forward/backward: batches are averaged by
// the training loop, matching small-batch SGD semantics.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "sciprep/dnn/tensor.hpp"

namespace sciprep::dnn {

class Layer {
 public:
  virtual ~Layer() = default;
  [[nodiscard]] virtual std::string name() const = 0;
  virtual Tensor forward(const Tensor& input) = 0;
  virtual Tensor backward(const Tensor& output_grad) = 0;
  /// Parameter/gradient pairs, same order; empty for stateless layers.
  virtual std::vector<Tensor*> params() { return {}; }
  virtual std::vector<Tensor*> grads() { return {}; }
};

/// Fully connected: y = W x + b, W is [out, in].
class Dense final : public Layer {
 public:
  Dense(std::size_t in, std::size_t out, Rng& rng);
  [[nodiscard]] std::string name() const override { return "dense"; }
  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& output_grad) override;
  std::vector<Tensor*> params() override { return {&w_, &b_}; }
  std::vector<Tensor*> grads() override { return {&dw_, &db_}; }

 private:
  std::size_t in_;
  std::size_t out_;
  Tensor w_, b_, dw_, db_;
  Tensor cache_input_;
};

/// 3x3x3 "same" convolution on [c,d,h,w] volumes.
class Conv3d final : public Layer {
 public:
  Conv3d(int in_channels, int out_channels, Rng& rng);
  [[nodiscard]] std::string name() const override { return "conv3d"; }
  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& output_grad) override;
  std::vector<Tensor*> params() override { return {&w_, &b_}; }
  std::vector<Tensor*> grads() override { return {&dw_, &db_}; }

 private:
  int in_c_, out_c_;
  Tensor w_, b_, dw_, db_;  // w is [out, in, 3, 3, 3]
  Tensor cache_input_;
};

/// 3x3 "same" convolution on [c,h,w] images.
class Conv2d final : public Layer {
 public:
  Conv2d(int in_channels, int out_channels, Rng& rng);
  [[nodiscard]] std::string name() const override { return "conv2d"; }
  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& output_grad) override;
  std::vector<Tensor*> params() override { return {&w_, &b_}; }
  std::vector<Tensor*> grads() override { return {&dw_, &db_}; }

 private:
  int in_c_, out_c_;
  Tensor w_, b_, dw_, db_;  // w is [out, in, 3, 3]
  Tensor cache_input_;
};

/// 2x2x2 max pooling on [c,d,h,w] (dims must be even).
class MaxPool3d final : public Layer {
 public:
  [[nodiscard]] std::string name() const override { return "maxpool3d"; }
  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& output_grad) override;

 private:
  std::vector<std::uint64_t> in_shape_;
  std::vector<std::uint32_t> argmax_;
};

/// 2x2 max pooling on [c,h,w] (dims must be even).
class MaxPool2d final : public Layer {
 public:
  [[nodiscard]] std::string name() const override { return "maxpool2d"; }
  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& output_grad) override;

 private:
  std::vector<std::uint64_t> in_shape_;
  std::vector<std::uint32_t> argmax_;
};

class Relu final : public Layer {
 public:
  [[nodiscard]] std::string name() const override { return "relu"; }
  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& output_grad) override;

 private:
  std::vector<std::uint8_t> mask_;
  std::vector<std::uint64_t> in_shape_;
};

class Flatten final : public Layer {
 public:
  [[nodiscard]] std::string name() const override { return "flatten"; }
  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& output_grad) override;

 private:
  std::vector<std::uint64_t> in_shape_;
};

/// Sequential container; owns its layers.
class Sequential final : public Layer {
 public:
  void add(std::unique_ptr<Layer> layer) { layers_.push_back(std::move(layer)); }
  [[nodiscard]] std::string name() const override { return "sequential"; }
  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& output_grad) override;
  std::vector<Tensor*> params() override;
  std::vector<Tensor*> grads() override;
  [[nodiscard]] std::size_t layer_count() const { return layers_.size(); }

 private:
  std::vector<std::unique_ptr<Layer>> layers_;
};

}  // namespace sciprep::dnn
