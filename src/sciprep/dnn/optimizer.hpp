// SGD with momentum and a warmup + step-decay schedule (the "learning
// schedule parameters of the reference implementation" fixed across the
// base/decoded comparison in §VIII.A).
#pragma once

#include <vector>

#include "sciprep/dnn/layers.hpp"

namespace sciprep::dnn {

struct SgdConfig {
  float learning_rate = 0.01F;
  float momentum = 0.9F;
  float weight_decay = 0.0F;
  int warmup_steps = 0;      // linear LR ramp from 0
  int decay_every = 0;       // halve LR every N steps; 0 disables
};

class Sgd {
 public:
  Sgd(Layer& model, SgdConfig config);

  /// Apply accumulated gradients (scaled by 1/`grad_scale`, e.g. the batch
  /// size) and clear them.
  void step(float grad_scale = 1.0F);

  [[nodiscard]] float current_lr() const;
  [[nodiscard]] int steps_taken() const noexcept { return steps_; }

 private:
  std::vector<Tensor*> params_;
  std::vector<Tensor*> grads_;
  std::vector<Tensor> velocity_;
  SgdConfig config_;
  int steps_ = 0;
};

}  // namespace sciprep::dnn
