#include "sciprep/dnn/optimizer.hpp"

#include <cmath>

namespace sciprep::dnn {

Sgd::Sgd(Layer& model, SgdConfig config)
    : params_(model.params()), grads_(model.grads()), config_(config) {
  SCIPREP_ASSERT(params_.size() == grads_.size());
  velocity_.reserve(params_.size());
  for (const Tensor* p : params_) {
    velocity_.emplace_back(p->shape);
  }
}

float Sgd::current_lr() const {
  float lr = config_.learning_rate;
  if (config_.warmup_steps > 0 && steps_ < config_.warmup_steps) {
    lr *= static_cast<float>(steps_ + 1) /
          static_cast<float>(config_.warmup_steps);
  }
  if (config_.decay_every > 0) {
    lr *= std::pow(0.5F, static_cast<float>(steps_ / config_.decay_every));
  }
  return lr;
}

void Sgd::step(float grad_scale) {
  SCIPREP_ASSERT(grad_scale > 0);
  const float lr = current_lr();
  for (std::size_t t = 0; t < params_.size(); ++t) {
    Tensor& p = *params_[t];
    Tensor& g = *grads_[t];
    Tensor& v = velocity_[t];
    for (std::size_t i = 0; i < p.size(); ++i) {
      float grad = g[i] / grad_scale + config_.weight_decay * p[i];
      v[i] = config_.momentum * v[i] - lr * grad;
      p[i] += v[i];
      g[i] = 0;  // ready for the next accumulation
    }
  }
  ++steps_;
}

}  // namespace sciprep::dnn
