// Loss functions for the two workload models: mean-squared error for the
// CosmoFlow parameter regression, per-pixel softmax cross-entropy for the
// DeepCAM segmentation. Each returns the scalar loss and the gradient with
// respect to the prediction.
#pragma once

#include <span>

#include "sciprep/dnn/tensor.hpp"

namespace sciprep::dnn {

struct LossResult {
  double loss = 0;
  Tensor grad;  // dLoss/dPrediction, same shape as the prediction
};

/// Mean squared error over all elements.
LossResult mse_loss(const Tensor& prediction, std::span<const float> target);

/// Per-pixel softmax cross entropy. `logits` is [classes, h, w]; `labels` is
/// h*w class indices. `class_weights` (size = classes) counteracts the heavy
/// background imbalance of extreme-weather masks; pass empty for uniform.
LossResult softmax_xent_loss(const Tensor& logits,
                             std::span<const std::uint8_t> labels,
                             std::span<const float> class_weights = {});

/// Pixel accuracy of argmax(logits) vs labels, for validation reporting.
double pixel_accuracy(const Tensor& logits,
                      std::span<const std::uint8_t> labels);

}  // namespace sciprep::dnn
