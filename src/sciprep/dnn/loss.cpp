#include "sciprep/dnn/loss.hpp"

#include <algorithm>
#include <cmath>

namespace sciprep::dnn {

LossResult mse_loss(const Tensor& prediction, std::span<const float> target) {
  SCIPREP_ASSERT(prediction.size() == target.size());
  LossResult r;
  r.grad = Tensor(prediction.shape);
  const auto n = static_cast<double>(prediction.size());
  for (std::size_t i = 0; i < prediction.size(); ++i) {
    const double d = static_cast<double>(prediction[i]) - target[i];
    r.loss += d * d;
    r.grad[i] = static_cast<float>(2.0 * d / n);
  }
  r.loss /= n;
  return r;
}

LossResult softmax_xent_loss(const Tensor& logits,
                             std::span<const std::uint8_t> labels,
                             std::span<const float> class_weights) {
  SCIPREP_ASSERT(logits.shape.size() == 3);
  const auto classes = static_cast<std::size_t>(logits.shape[0]);
  const std::size_t pixels =
      static_cast<std::size_t>(logits.shape[1]) *
      static_cast<std::size_t>(logits.shape[2]);
  SCIPREP_ASSERT(labels.size() == pixels);
  SCIPREP_ASSERT(class_weights.empty() || class_weights.size() == classes);

  LossResult r;
  r.grad = Tensor(logits.shape);
  double weight_total = 0;
  std::vector<double> p(classes);
  for (std::size_t px = 0; px < pixels; ++px) {
    // Stable softmax over the class (outer) dimension.
    double maxv = -1e30;
    for (std::size_t c = 0; c < classes; ++c) {
      maxv = std::max(maxv, static_cast<double>(logits[c * pixels + px]));
    }
    double z = 0;
    for (std::size_t c = 0; c < classes; ++c) {
      p[c] = std::exp(static_cast<double>(logits[c * pixels + px]) - maxv);
      z += p[c];
    }
    const std::size_t label = labels[px];
    SCIPREP_ASSERT(label < classes);
    const double weight = class_weights.empty()
                              ? 1.0
                              : static_cast<double>(class_weights[label]);
    weight_total += weight;
    for (std::size_t c = 0; c < classes; ++c) {
      p[c] /= z;
      r.grad[c * pixels + px] =
          static_cast<float>(weight * (p[c] - (c == label ? 1.0 : 0.0)));
    }
    r.loss -= weight * std::log(std::max(p[label], 1e-12));
  }
  const double norm = std::max(weight_total, 1e-12);
  r.loss /= norm;
  for (auto& g : r.grad.data) {
    g = static_cast<float>(g / norm);
  }
  return r;
}

double pixel_accuracy(const Tensor& logits,
                      std::span<const std::uint8_t> labels) {
  const auto classes = static_cast<std::size_t>(logits.shape[0]);
  const std::size_t pixels = labels.size();
  std::size_t correct = 0;
  for (std::size_t px = 0; px < pixels; ++px) {
    std::size_t best = 0;
    for (std::size_t c = 1; c < classes; ++c) {
      if (logits[c * pixels + px] > logits[best * pixels + px]) best = c;
    }
    correct += (best == labels[px]);
  }
  return static_cast<double>(correct) / static_cast<double>(std::max<std::size_t>(1, pixels));
}

}  // namespace sciprep::dnn
