#include "sciprep/dnn/layers.hpp"

#include <algorithm>
#include <limits>

namespace sciprep::dnn {

// ---------------------------------------------------------------------------
// Dense
// ---------------------------------------------------------------------------

Dense::Dense(std::size_t in, std::size_t out, Rng& rng)
    : in_(in),
      out_(out),
      w_({out, in}),
      b_({out}),
      dw_({out, in}),
      db_({out}) {
  w_.init_he(rng, in);
}

Tensor Dense::forward(const Tensor& input) {
  SCIPREP_ASSERT(input.size() == in_);
  cache_input_ = input;
  Tensor y({out_});
  for (std::size_t o = 0; o < out_; ++o) {
    float acc = b_[o];
    const float* row = w_.data.data() + o * in_;
    for (std::size_t i = 0; i < in_; ++i) {
      acc += row[i] * input[i];
    }
    y[o] = acc;
  }
  return y;
}

Tensor Dense::backward(const Tensor& output_grad) {
  SCIPREP_ASSERT(output_grad.size() == out_);
  Tensor dx({in_});
  for (std::size_t o = 0; o < out_; ++o) {
    const float g = output_grad[o];
    db_[o] += g;
    float* dw_row = dw_.data.data() + o * in_;
    const float* w_row = w_.data.data() + o * in_;
    for (std::size_t i = 0; i < in_; ++i) {
      dw_row[i] += g * cache_input_[i];
      dx[i] += g * w_row[i];
    }
  }
  return dx;
}

// ---------------------------------------------------------------------------
// Conv3d (3x3x3, same padding)
// ---------------------------------------------------------------------------

Conv3d::Conv3d(int in_channels, int out_channels, Rng& rng)
    : in_c_(in_channels),
      out_c_(out_channels),
      w_({static_cast<std::uint64_t>(out_channels),
          static_cast<std::uint64_t>(in_channels), 3, 3, 3}),
      b_({static_cast<std::uint64_t>(out_channels)}),
      dw_(w_.shape),
      db_(b_.shape) {
  w_.init_he(rng, static_cast<std::size_t>(in_channels) * 27);
}

Tensor Conv3d::forward(const Tensor& input) {
  SCIPREP_ASSERT(input.shape.size() == 4 &&
                 input.shape[0] == static_cast<std::uint64_t>(in_c_));
  cache_input_ = input;
  const auto d = static_cast<int>(input.shape[1]);
  const auto h = static_cast<int>(input.shape[2]);
  const auto w = static_cast<int>(input.shape[3]);
  Tensor y({static_cast<std::uint64_t>(out_c_), input.shape[1], input.shape[2],
            input.shape[3]});
  const std::size_t plane = static_cast<std::size_t>(d) * h * w;
  for (int oc = 0; oc < out_c_; ++oc) {
    float* out = y.data.data() + static_cast<std::size_t>(oc) * plane;
    for (std::size_t i = 0; i < plane; ++i) out[i] = b_[static_cast<std::size_t>(oc)];
    for (int ic = 0; ic < in_c_; ++ic) {
      const float* in = input.data.data() + static_cast<std::size_t>(ic) * plane;
      const float* ker =
          w_.data.data() +
          (static_cast<std::size_t>(oc) * in_c_ + static_cast<std::size_t>(ic)) * 27;
      for (int z = 0; z < d; ++z) {
        for (int yy = 0; yy < h; ++yy) {
          for (int xx = 0; xx < w; ++xx) {
            float acc = 0;
            for (int kz = -1; kz <= 1; ++kz) {
              const int sz = z + kz;
              if (sz < 0 || sz >= d) continue;
              for (int ky = -1; ky <= 1; ++ky) {
                const int sy = yy + ky;
                if (sy < 0 || sy >= h) continue;
                for (int kx = -1; kx <= 1; ++kx) {
                  const int sx = xx + kx;
                  if (sx < 0 || sx >= w) continue;
                  acc += ker[((kz + 1) * 3 + (ky + 1)) * 3 + (kx + 1)] *
                         in[(static_cast<std::size_t>(sz) * h + sy) * w + sx];
                }
              }
            }
            out[(static_cast<std::size_t>(z) * h + yy) * w + xx] += acc;
          }
        }
      }
    }
  }
  return y;
}

Tensor Conv3d::backward(const Tensor& output_grad) {
  const auto d = static_cast<int>(cache_input_.shape[1]);
  const auto h = static_cast<int>(cache_input_.shape[2]);
  const auto w = static_cast<int>(cache_input_.shape[3]);
  const std::size_t plane = static_cast<std::size_t>(d) * h * w;
  Tensor dx(cache_input_.shape);
  for (int oc = 0; oc < out_c_; ++oc) {
    const float* gout =
        output_grad.data.data() + static_cast<std::size_t>(oc) * plane;
    for (std::size_t i = 0; i < plane; ++i) {
      db_[static_cast<std::size_t>(oc)] += gout[i];
    }
    for (int ic = 0; ic < in_c_; ++ic) {
      const float* in =
          cache_input_.data.data() + static_cast<std::size_t>(ic) * plane;
      float* gin = dx.data.data() + static_cast<std::size_t>(ic) * plane;
      const std::size_t kbase =
          (static_cast<std::size_t>(oc) * in_c_ + static_cast<std::size_t>(ic)) * 27;
      const float* ker = w_.data.data() + kbase;
      float* gker = dw_.data.data() + kbase;
      for (int z = 0; z < d; ++z) {
        for (int yy = 0; yy < h; ++yy) {
          for (int xx = 0; xx < w; ++xx) {
            const float g =
                gout[(static_cast<std::size_t>(z) * h + yy) * w + xx];
            if (g == 0.0F) continue;
            for (int kz = -1; kz <= 1; ++kz) {
              const int sz = z + kz;
              if (sz < 0 || sz >= d) continue;
              for (int ky = -1; ky <= 1; ++ky) {
                const int sy = yy + ky;
                if (sy < 0 || sy >= h) continue;
                for (int kx = -1; kx <= 1; ++kx) {
                  const int sx = xx + kx;
                  if (sx < 0 || sx >= w) continue;
                  const std::size_t k =
                      ((static_cast<std::size_t>(kz + 1)) * 3 +
                       static_cast<std::size_t>(ky + 1)) * 3 +
                      static_cast<std::size_t>(kx + 1);
                  const std::size_t s =
                      (static_cast<std::size_t>(sz) * h + sy) * w + sx;
                  gker[k] += g * in[s];
                  gin[s] += g * ker[k];
                }
              }
            }
          }
        }
      }
    }
  }
  return dx;
}

// ---------------------------------------------------------------------------
// Conv2d (3x3, same padding)
// ---------------------------------------------------------------------------

Conv2d::Conv2d(int in_channels, int out_channels, Rng& rng)
    : in_c_(in_channels),
      out_c_(out_channels),
      w_({static_cast<std::uint64_t>(out_channels),
          static_cast<std::uint64_t>(in_channels), 3, 3}),
      b_({static_cast<std::uint64_t>(out_channels)}),
      dw_(w_.shape),
      db_(b_.shape) {
  w_.init_he(rng, static_cast<std::size_t>(in_channels) * 9);
}

Tensor Conv2d::forward(const Tensor& input) {
  SCIPREP_ASSERT(input.shape.size() == 3 &&
                 input.shape[0] == static_cast<std::uint64_t>(in_c_));
  cache_input_ = input;
  const auto h = static_cast<int>(input.shape[1]);
  const auto w = static_cast<int>(input.shape[2]);
  const std::size_t plane = static_cast<std::size_t>(h) * w;
  Tensor y({static_cast<std::uint64_t>(out_c_), input.shape[1], input.shape[2]});
  for (int oc = 0; oc < out_c_; ++oc) {
    float* out = y.data.data() + static_cast<std::size_t>(oc) * plane;
    for (std::size_t i = 0; i < plane; ++i) out[i] = b_[static_cast<std::size_t>(oc)];
    for (int ic = 0; ic < in_c_; ++ic) {
      const float* in = input.data.data() + static_cast<std::size_t>(ic) * plane;
      const float* ker =
          w_.data.data() +
          (static_cast<std::size_t>(oc) * in_c_ + static_cast<std::size_t>(ic)) * 9;
      for (int yy = 0; yy < h; ++yy) {
        for (int xx = 0; xx < w; ++xx) {
          float acc = 0;
          for (int ky = -1; ky <= 1; ++ky) {
            const int sy = yy + ky;
            if (sy < 0 || sy >= h) continue;
            for (int kx = -1; kx <= 1; ++kx) {
              const int sx = xx + kx;
              if (sx < 0 || sx >= w) continue;
              acc += ker[(ky + 1) * 3 + (kx + 1)] *
                     in[static_cast<std::size_t>(sy) * w + sx];
            }
          }
          out[static_cast<std::size_t>(yy) * w + xx] += acc;
        }
      }
    }
  }
  return y;
}

Tensor Conv2d::backward(const Tensor& output_grad) {
  const auto h = static_cast<int>(cache_input_.shape[1]);
  const auto w = static_cast<int>(cache_input_.shape[2]);
  const std::size_t plane = static_cast<std::size_t>(h) * w;
  Tensor dx(cache_input_.shape);
  for (int oc = 0; oc < out_c_; ++oc) {
    const float* gout =
        output_grad.data.data() + static_cast<std::size_t>(oc) * plane;
    for (std::size_t i = 0; i < plane; ++i) {
      db_[static_cast<std::size_t>(oc)] += gout[i];
    }
    for (int ic = 0; ic < in_c_; ++ic) {
      const float* in =
          cache_input_.data.data() + static_cast<std::size_t>(ic) * plane;
      float* gin = dx.data.data() + static_cast<std::size_t>(ic) * plane;
      const std::size_t kbase =
          (static_cast<std::size_t>(oc) * in_c_ + static_cast<std::size_t>(ic)) * 9;
      const float* ker = w_.data.data() + kbase;
      float* gker = dw_.data.data() + kbase;
      for (int yy = 0; yy < h; ++yy) {
        for (int xx = 0; xx < w; ++xx) {
          const float g = gout[static_cast<std::size_t>(yy) * w + xx];
          if (g == 0.0F) continue;
          for (int ky = -1; ky <= 1; ++ky) {
            const int sy = yy + ky;
            if (sy < 0 || sy >= h) continue;
            for (int kx = -1; kx <= 1; ++kx) {
              const int sx = xx + kx;
              if (sx < 0 || sx >= w) continue;
              const std::size_t k = static_cast<std::size_t>(ky + 1) * 3 +
                                    static_cast<std::size_t>(kx + 1);
              const std::size_t s = static_cast<std::size_t>(sy) * w + sx;
              gker[k] += g * in[s];
              gin[s] += g * ker[k];
            }
          }
        }
      }
    }
  }
  return dx;
}

// ---------------------------------------------------------------------------
// Pooling
// ---------------------------------------------------------------------------

Tensor MaxPool3d::forward(const Tensor& input) {
  SCIPREP_ASSERT(input.shape.size() == 4);
  SCIPREP_ASSERT(input.shape[1] % 2 == 0 && input.shape[2] % 2 == 0 &&
                 input.shape[3] % 2 == 0);
  in_shape_ = input.shape;
  const auto c = input.shape[0];
  const auto d = input.shape[1];
  const auto h = input.shape[2];
  const auto w = input.shape[3];
  Tensor y({c, d / 2, h / 2, w / 2});
  argmax_.assign(y.size(), 0);
  std::size_t out = 0;
  for (std::uint64_t ci = 0; ci < c; ++ci) {
    const float* plane = input.data.data() + ci * d * h * w;
    for (std::uint64_t z = 0; z < d; z += 2) {
      for (std::uint64_t yy = 0; yy < h; yy += 2) {
        for (std::uint64_t xx = 0; xx < w; xx += 2) {
          float best = -std::numeric_limits<float>::infinity();
          std::uint32_t best_at = 0;
          for (int dz = 0; dz < 2; ++dz) {
            for (int dy = 0; dy < 2; ++dy) {
              for (int dx2 = 0; dx2 < 2; ++dx2) {
                const std::size_t at =
                    ((z + static_cast<std::uint64_t>(dz)) * h + yy +
                     static_cast<std::uint64_t>(dy)) * w +
                    xx + static_cast<std::uint64_t>(dx2);
                if (plane[at] > best) {
                  best = plane[at];
                  best_at = static_cast<std::uint32_t>(at);
                }
              }
            }
          }
          y[out] = best;
          argmax_[out] = best_at;
          ++out;
        }
      }
    }
  }
  return y;
}

Tensor MaxPool3d::backward(const Tensor& output_grad) {
  Tensor dx(in_shape_);
  const auto c = in_shape_[0];
  const auto plane = in_shape_[1] * in_shape_[2] * in_shape_[3];
  const std::size_t out_plane = output_grad.size() / c;
  for (std::uint64_t ci = 0; ci < c; ++ci) {
    float* gin = dx.data.data() + ci * plane;
    for (std::size_t i = 0; i < out_plane; ++i) {
      const std::size_t o = ci * out_plane + i;
      gin[argmax_[o]] += output_grad[o];
    }
  }
  return dx;
}

Tensor MaxPool2d::forward(const Tensor& input) {
  SCIPREP_ASSERT(input.shape.size() == 3);
  SCIPREP_ASSERT(input.shape[1] % 2 == 0 && input.shape[2] % 2 == 0);
  in_shape_ = input.shape;
  const auto c = input.shape[0];
  const auto h = input.shape[1];
  const auto w = input.shape[2];
  Tensor y({c, h / 2, w / 2});
  argmax_.assign(y.size(), 0);
  std::size_t out = 0;
  for (std::uint64_t ci = 0; ci < c; ++ci) {
    const float* plane = input.data.data() + ci * h * w;
    for (std::uint64_t yy = 0; yy < h; yy += 2) {
      for (std::uint64_t xx = 0; xx < w; xx += 2) {
        float best = -std::numeric_limits<float>::infinity();
        std::uint32_t best_at = 0;
        for (int dy = 0; dy < 2; ++dy) {
          for (int dx2 = 0; dx2 < 2; ++dx2) {
            const std::size_t at =
                (yy + static_cast<std::uint64_t>(dy)) * w + xx +
                static_cast<std::uint64_t>(dx2);
            if (plane[at] > best) {
              best = plane[at];
              best_at = static_cast<std::uint32_t>(at);
            }
          }
        }
        y[out] = best;
        argmax_[out] = best_at;
        ++out;
      }
    }
  }
  return y;
}

Tensor MaxPool2d::backward(const Tensor& output_grad) {
  Tensor dx(in_shape_);
  const auto c = in_shape_[0];
  const auto plane = in_shape_[1] * in_shape_[2];
  const std::size_t out_plane = output_grad.size() / c;
  for (std::uint64_t ci = 0; ci < c; ++ci) {
    float* gin = dx.data.data() + ci * plane;
    for (std::size_t i = 0; i < out_plane; ++i) {
      const std::size_t o = ci * out_plane + i;
      gin[argmax_[o]] += output_grad[o];
    }
  }
  return dx;
}

// ---------------------------------------------------------------------------
// Relu / Flatten / Sequential
// ---------------------------------------------------------------------------

Tensor Relu::forward(const Tensor& input) {
  in_shape_ = input.shape;
  mask_.assign(input.size(), 0);
  Tensor y(input.shape);
  for (std::size_t i = 0; i < input.size(); ++i) {
    if (input[i] > 0) {
      y[i] = input[i];
      mask_[i] = 1;
    }
  }
  return y;
}

Tensor Relu::backward(const Tensor& output_grad) {
  Tensor dx(in_shape_);
  for (std::size_t i = 0; i < output_grad.size(); ++i) {
    dx[i] = mask_[i] ? output_grad[i] : 0.0F;
  }
  return dx;
}

Tensor Flatten::forward(const Tensor& input) {
  in_shape_ = input.shape;
  return Tensor({input.size()}, input.data);
}

Tensor Flatten::backward(const Tensor& output_grad) {
  return Tensor(in_shape_, output_grad.data);
}

Tensor Sequential::forward(const Tensor& input) {
  Tensor x = input;
  for (auto& layer : layers_) {
    x = layer->forward(x);
  }
  return x;
}

Tensor Sequential::backward(const Tensor& output_grad) {
  Tensor g = output_grad;
  for (auto it = layers_.rbegin(); it != layers_.rend(); ++it) {
    g = (*it)->backward(g);
  }
  return g;
}

std::vector<Tensor*> Sequential::params() {
  std::vector<Tensor*> out;
  for (auto& layer : layers_) {
    for (Tensor* p : layer->params()) out.push_back(p);
  }
  return out;
}

std::vector<Tensor*> Sequential::grads() {
  std::vector<Tensor*> out;
  for (auto& layer : layers_) {
    for (Tensor* g : layer->grads()) out.push_back(g);
  }
  return out;
}

}  // namespace sciprep::dnn
