# Insight smoke, driven end to end through the trainer binary
# (ctest -L insight). One run exercises the whole sciprep::insight surface at
# once: injected IO stalls (long enough to trip the armed stage deadline) and
# transient faults under the retry-skip policy, with the continuous exporter
# streaming JSONL + Prometheus, the critical-path analyzer writing the
# bottleneck report, and the flight recorder dumping incidents. The trainer's
# --validate mode then re-reads every artifact:
#
#   * the report parses, names io.read as the dominant stage, attributes
#     every pipeline.stage.* histogram, and its io.read busy-seconds agree
#     with the pipeline.stage.io_read_seconds histogram sum;
#   * every JSONL tick parses and at least one shows a non-zero retry rate;
#   * a deadline-expiry incident file exists, parses, embeds spans, and
#     carries this run's config fingerprint.
#
# The incident dir is cleared first so a stale fingerprint from an earlier
# run cannot satisfy the checks.
#
# Usage: cmake -DTRAINER=<path> -DWORK_DIR=<dir> -P insight_smoke.cmake
if(NOT DEFINED TRAINER OR NOT DEFINED WORK_DIR)
  message(FATAL_ERROR "insight_smoke: pass -DTRAINER=... -DWORK_DIR=...")
endif()

file(REMOVE_RECURSE ${WORK_DIR})
file(MAKE_DIRECTORY ${WORK_DIR})

execute_process(
  COMMAND ${TRAINER}
          --workload cosmo --samples 16 --epochs 2 --dim 16 --batch 4
          --workers 2 --placement gpu
          --fault-policy retry-skip
          --inject-transient 0.2 --inject-delay 0.15 --inject-delay-ms 80
          --inject-seed 1234 --stage-deadline-ms 25
          --trace-out ${WORK_DIR}/trace.json
          --metrics-out ${WORK_DIR}/metrics.json
          --metrics-interval-ms 50
          --metrics-jsonl ${WORK_DIR}/series.jsonl
          --metrics-prom ${WORK_DIR}/metrics.prom
          --report-out ${WORK_DIR}/report.json
          --flightrec-dir ${WORK_DIR}/incidents
          --validate
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "insight smoke run failed validation (rc=${rc})")
endif()
