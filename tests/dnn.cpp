// Tests for the training substrate: gradient checks against numerical
// differentiation for every layer, loss properties, optimizer behaviour, and
// small end-to-end learning sanity checks.
#include <gtest/gtest.h>

#include <cmath>

#include "sciprep/dnn/layers.hpp"
#include "sciprep/dnn/loss.hpp"
#include "sciprep/dnn/optimizer.hpp"

namespace sciprep::dnn {
namespace {

/// Numerical gradient of a scalar function of `tensor` at index i.
template <class F>
double numeric_grad(Tensor& tensor, std::size_t i, F&& scalar_fn,
                    double eps = 1e-3) {
  const float saved = tensor[i];
  tensor[i] = saved + static_cast<float>(eps);
  const double up = scalar_fn();
  tensor[i] = saved - static_cast<float>(eps);
  const double down = scalar_fn();
  tensor[i] = saved;
  return (up - down) / (2 * eps);
}

/// Check analytic input- and weight-gradients of `layer` on `input` by
/// probing a handful of coordinates of a random linear readout.
void check_gradients(Layer& layer, Tensor input, std::uint64_t seed) {
  Rng rng(seed);
  // Random readout weights make the scalar sensitive to every output.
  Tensor probe_out = layer.forward(input);
  std::vector<float> readout(probe_out.size());
  for (auto& r : readout) r = static_cast<float>(rng.normal());

  auto scalar = [&] {
    const Tensor out = layer.forward(input);
    double s = 0;
    for (std::size_t i = 0; i < out.size(); ++i) s += out[i] * readout[i];
    return s;
  };

  // Analytic gradients.
  for (Tensor* g : layer.grads()) g->fill(0);
  const Tensor out = layer.forward(input);
  Tensor upstream(out.shape);
  for (std::size_t i = 0; i < out.size(); ++i) upstream[i] = readout[i];
  const Tensor dinput = layer.backward(upstream);

  // Probe input gradient.
  for (int probe = 0; probe < 8; ++probe) {
    const std::size_t i = rng.next_below(input.size());
    const double num = numeric_grad(input, i, scalar);
    EXPECT_NEAR(dinput[i], num, 1e-2 + 0.05 * std::abs(num))
        << "input grad at " << i;
  }
  // Probe each parameter tensor.
  const auto params = layer.params();
  const auto grads = layer.grads();
  for (std::size_t t = 0; t < params.size(); ++t) {
    for (int probe = 0; probe < 6; ++probe) {
      const std::size_t i = rng.next_below(params[t]->size());
      const double num = numeric_grad(*params[t], i, scalar);
      EXPECT_NEAR((*grads[t])[i], num, 1e-2 + 0.05 * std::abs(num))
          << "param " << t << " grad at " << i;
    }
  }
}

Tensor random_tensor(std::vector<std::uint64_t> shape, std::uint64_t seed) {
  Tensor t(std::move(shape));
  Rng rng(seed);
  for (auto& v : t.data) v = static_cast<float>(rng.normal());
  return t;
}

TEST(DnnGrad, Dense) {
  Rng rng(1);
  Dense layer(10, 6, rng);
  check_gradients(layer, random_tensor({10}, 2), 3);
}

TEST(DnnGrad, Conv2d) {
  Rng rng(2);
  Conv2d layer(3, 4, rng);
  check_gradients(layer, random_tensor({3, 6, 8}, 4), 5);
}

TEST(DnnGrad, Conv3d) {
  Rng rng(3);
  Conv3d layer(2, 3, rng);
  check_gradients(layer, random_tensor({2, 4, 4, 6}, 6), 7);
}

TEST(DnnGrad, Relu) {
  Relu layer;
  check_gradients(layer, random_tensor({40}, 8), 9);
}

TEST(DnnGrad, MaxPool2d) {
  MaxPool2d layer;
  check_gradients(layer, random_tensor({2, 4, 6}, 10), 11);
}

TEST(DnnGrad, MaxPool3d) {
  MaxPool3d layer;
  check_gradients(layer, random_tensor({2, 4, 4, 4}, 12), 13);
}

TEST(DnnGrad, SequentialComposition) {
  Rng rng(14);
  Sequential model;
  model.add(std::make_unique<Conv2d>(2, 3, rng));
  model.add(std::make_unique<Relu>());
  model.add(std::make_unique<MaxPool2d>());
  model.add(std::make_unique<Flatten>());
  model.add(std::make_unique<Dense>(3 * 2 * 3, 4, rng));
  check_gradients(model, random_tensor({2, 4, 6}, 15), 16);
}

TEST(DnnLoss, MseMatchesHandComputation) {
  Tensor pred({2}, {1.0F, 3.0F});
  const std::vector<float> target = {0.0F, 1.0F};
  const LossResult r = mse_loss(pred, target);
  EXPECT_DOUBLE_EQ(r.loss, (1.0 + 4.0) / 2.0);
  EXPECT_FLOAT_EQ(r.grad[0], 2.0F * 1.0F / 2.0F);
  EXPECT_FLOAT_EQ(r.grad[1], 2.0F * 2.0F / 2.0F);
}

TEST(DnnLoss, SoftmaxXentGradientSumsToZeroPerPixel) {
  Tensor logits({3, 2, 2}, {0.5F, -1.0F, 2.0F, 0.0F, 1.0F, 1.0F, -0.5F, 0.3F,
                            0.0F, 0.2F, 0.1F, -0.2F});
  const std::vector<std::uint8_t> labels = {0, 1, 2, 1};
  const LossResult r = softmax_xent_loss(logits, labels);
  EXPECT_GT(r.loss, 0);
  const std::size_t pixels = 4;
  for (std::size_t px = 0; px < pixels; ++px) {
    double sum = 0;
    for (std::size_t c = 0; c < 3; ++c) sum += r.grad[c * pixels + px];
    EXPECT_NEAR(sum, 0.0, 1e-6) << "pixel " << px;
  }
}

TEST(DnnLoss, SoftmaxXentPerfectPredictionHasLowLoss) {
  Tensor logits({2, 1, 2}, {10.0F, -10.0F, -10.0F, 10.0F});
  const std::vector<std::uint8_t> labels = {0, 1};
  const LossResult r = softmax_xent_loss(logits, labels);
  EXPECT_LT(r.loss, 1e-6);
}

TEST(DnnLoss, ClassWeightsReweightPixels) {
  Tensor logits({2, 1, 2}, {0.0F, 0.0F, 0.0F, 0.0F});
  const std::vector<std::uint8_t> labels = {0, 1};
  const std::vector<float> weights = {1.0F, 3.0F};
  const LossResult uniform = softmax_xent_loss(logits, labels);
  const LossResult weighted = softmax_xent_loss(logits, labels, weights);
  // Uniform logits: per-pixel loss identical, so weighting cannot change the
  // normalized loss value, but gradients shift toward the weighted class.
  EXPECT_NEAR(uniform.loss, weighted.loss, 1e-9);
  // grad layout is [class, pixel]: pixel 1 carries weight 3, pixel 0 weight 1.
  EXPECT_GT(std::abs(weighted.grad[1]), std::abs(weighted.grad[0]));
}

TEST(DnnLoss, PixelAccuracy) {
  Tensor logits({2, 1, 2}, {1.0F, -1.0F, 0.0F, 2.0F});
  const std::vector<std::uint8_t> labels = {0, 1};
  EXPECT_DOUBLE_EQ(pixel_accuracy(logits, labels), 1.0);
  const std::vector<std::uint8_t> wrong = {1, 0};
  EXPECT_DOUBLE_EQ(pixel_accuracy(logits, wrong), 0.0);
}

TEST(DnnSgd, WarmupRampsLearningRate) {
  Rng rng(20);
  Sequential model;
  model.add(std::make_unique<Dense>(2, 1, rng));
  SgdConfig cfg;
  cfg.learning_rate = 1.0F;
  cfg.warmup_steps = 4;
  Sgd opt(model, cfg);
  EXPECT_FLOAT_EQ(opt.current_lr(), 0.25F);
  opt.step();
  EXPECT_FLOAT_EQ(opt.current_lr(), 0.5F);
  opt.step();
  opt.step();
  opt.step();
  EXPECT_FLOAT_EQ(opt.current_lr(), 1.0F);
}

TEST(DnnSgd, DecayHalvesLearningRate) {
  Rng rng(21);
  Sequential model;
  model.add(std::make_unique<Dense>(2, 1, rng));
  SgdConfig cfg;
  cfg.learning_rate = 1.0F;
  cfg.decay_every = 2;
  Sgd opt(model, cfg);
  opt.step();
  opt.step();
  EXPECT_FLOAT_EQ(opt.current_lr(), 0.5F);
}

TEST(DnnSgd, StepClearsGradients) {
  Rng rng(22);
  Dense layer(2, 1, rng);
  Sgd opt(layer, {});
  const Tensor out = layer.forward(Tensor({2}, {1.0F, 2.0F}));
  layer.backward(Tensor({1}, {1.0F}));
  EXPECT_NE((*layer.grads()[0])[0], 0.0F);
  opt.step();
  EXPECT_EQ((*layer.grads()[0])[0], 0.0F);
}

// End-to-end: a tiny dense model must fit a linear map.
TEST(DnnTraining, LearnsLinearRegression) {
  Rng rng(30);
  Sequential model;
  model.add(std::make_unique<Dense>(3, 4, rng));
  model.add(std::make_unique<Relu>());
  model.add(std::make_unique<Dense>(4, 1, rng));
  Sgd opt(model, {.learning_rate = 0.005F, .momentum = 0.0F});

  Rng data_rng(31);
  double last_loss = 0;
  for (int step = 0; step < 2000; ++step) {
    Tensor x({3});
    for (auto& v : x.data) v = static_cast<float>(data_rng.normal());
    const float target = 2.0F * x[0] - 1.0F * x[1] + 0.5F * x[2] + 0.3F;
    const Tensor pred = model.forward(x);
    const LossResult loss = mse_loss(pred, std::vector<float>{target});
    model.backward(loss.grad);
    opt.step();
    last_loss = loss.loss;
  }
  EXPECT_LT(last_loss, 0.05);
}

}  // namespace
}  // namespace sciprep::dnn
