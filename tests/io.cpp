// Tests for TFRecord framing, tf.Example protobuf codec, h5lite container,
// and sample (de)serialization.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "sciprep/common/error.hpp"
#include "sciprep/common/rng.hpp"
#include "sciprep/io/h5lite.hpp"
#include "sciprep/io/samples.hpp"
#include "sciprep/io/tfexample.hpp"
#include "sciprep/io/tfrecord.hpp"

namespace sciprep::io {
namespace {

TEST(Varint, RoundTripsBoundaries) {
  const std::vector<std::uint64_t> values = {
      0, 1, 127, 128, 300, 16383, 16384, 0xFFFFFFFFull, ~0ull};
  ByteWriter w;
  for (const auto v : values) put_varint(w, v);
  ByteReader r(w.bytes());
  for (const auto v : values) {
    EXPECT_EQ(get_varint(r), v);
  }
  EXPECT_TRUE(r.done());
}

TEST(Varint, RejectsOverlong) {
  const Bytes bad(11, 0x80);  // 11 continuation bytes
  ByteReader r(bad);
  EXPECT_THROW(get_varint(r), FormatError);
}

TEST(TfRecord, RoundTripsRecords) {
  TfRecordWriter w;
  std::vector<Bytes> payloads;
  Rng rng(4);
  for (int i = 0; i < 20; ++i) {
    Bytes p(rng.next_below(1000));
    for (auto& b : p) b = static_cast<std::uint8_t>(rng.next_u64());
    w.append(p);
    payloads.push_back(std::move(p));
  }
  EXPECT_EQ(w.record_count(), 20u);

  const auto records = TfRecordReader::read_all(w.stream());
  ASSERT_EQ(records.size(), payloads.size());
  for (std::size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(records[i], payloads[i]) << "record " << i;
  }
}

TEST(TfRecord, EmptyStreamHasNoRecords) {
  EXPECT_TRUE(TfRecordReader::read_all({}).empty());
}

TEST(TfRecord, DetectsLengthCorruption) {
  TfRecordWriter w;
  w.append(as_bytes(std::string_view("hello world")));
  Bytes stream = std::move(w).take();
  stream[0] ^= 0x01;  // corrupt the length field
  TfRecordReader r(stream);
  Bytes payload;
  EXPECT_THROW(r.next(payload), FormatError);
}

TEST(TfRecord, DetectsPayloadCorruption) {
  TfRecordWriter w;
  w.append(as_bytes(std::string_view("hello world")));
  Bytes stream = std::move(w).take();
  stream[14] ^= 0x01;  // inside the payload
  TfRecordReader r(stream);
  Bytes payload;
  EXPECT_THROW(r.next(payload), FormatError);
}

TEST(TfRecord, DetectsTruncation) {
  TfRecordWriter w;
  w.append(Bytes(100, 7));
  const Bytes stream = std::move(w).take();
  const ByteSpan cut = ByteSpan(stream).first(stream.size() - 10);
  TfRecordReader r(cut);
  Bytes payload;
  // Declared length runs past EOF: a typed IoError naming the record offset.
  try {
    r.next(payload);
    FAIL() << "expected TruncatedError";
  } catch (const TruncatedError& e) {
    EXPECT_EQ(e.offset(), 0u);
    EXPECT_NE(std::string(e.what()).find("offset 0"), std::string::npos);
  }
}

TEST(TfRecord, TruncatedHeaderNamesOffset) {
  TfRecordWriter w;
  w.append(Bytes(16, 3));
  const Bytes stream = std::move(w).take();
  // Cut inside the *second* record's 12-byte header.
  Bytes two = stream;
  two.insert(two.end(), stream.begin(), stream.begin() + 6);
  TfRecordReader r{ByteSpan(two)};
  Bytes payload;
  ASSERT_TRUE(r.next(payload));
  try {
    r.next(payload);
    FAIL() << "expected TruncatedError";
  } catch (const TruncatedError& e) {
    EXPECT_EQ(e.offset(), stream.size());
  }
}

TEST(TfRecord, PayloadCrcFailureResyncsToNextRecord) {
  TfRecordWriter w;
  w.append(Bytes(64, 1));
  w.append(Bytes(64, 2));
  w.append(Bytes(64, 3));
  Bytes stream = std::move(w).take();
  // Flip one payload byte of the middle record (header is 12 bytes, the
  // first record spans 12 + 64 + 4 bytes).
  stream[(12 + 64 + 4) + 12 + 10] ^= 0x01;
  TfRecordReader r{ByteSpan(stream)};
  Bytes payload;
  ASSERT_TRUE(r.next(payload));
  EXPECT_EQ(payload, Bytes(64, 1));
  // The bad record throws, but the reader position has advanced past it...
  EXPECT_THROW(r.next(payload), FormatError);
  // ...so the next call resyncs to the following record.
  ASSERT_TRUE(r.next(payload));
  EXPECT_EQ(payload, Bytes(64, 3));
  EXPECT_FALSE(r.next(payload));
}

TEST(TfRecord, GzipVariantRoundTrips) {
  TfRecordWriter w;
  for (int i = 0; i < 5; ++i) {
    w.append(Bytes(5000, static_cast<std::uint8_t>(i)));
  }
  const Bytes plain = std::move(w).take();
  const Bytes zipped = gzip_tfrecord_stream(plain);
  EXPECT_LT(zipped.size(), plain.size());
  EXPECT_EQ(gunzip_tfrecord_stream(zipped), plain);
  const auto records = TfRecordReader::read_all(gunzip_tfrecord_stream(zipped));
  EXPECT_EQ(records.size(), 5u);
}

TEST(TfExample, SerializeParseRoundTrip) {
  TfExample ex;
  ex.features.emplace("x", Feature::of_bytes({1, 2, 3, 4, 255}));
  ex.features.emplace("y", Feature::of_floats({1.5F, -2.25F, 0.0F, 1e20F}));
  ex.features.emplace("size", Feature::of_int64s({128, -5}));

  const Bytes wire = ex.serialize();
  const TfExample back = TfExample::parse(wire);
  EXPECT_EQ(back.bytes_feature("x"), Bytes({1, 2, 3, 4, 255}));
  EXPECT_EQ(back.float_feature("y"),
            (std::vector<float>{1.5F, -2.25F, 0.0F, 1e20F}));
  EXPECT_EQ(back.int64_feature("size"), (std::vector<std::int64_t>{128, -5}));
}

TEST(TfExample, MissingFeatureThrows) {
  TfExample ex;
  ex.features.emplace("y", Feature::of_floats({1.0F}));
  const TfExample back = TfExample::parse(ex.serialize());
  EXPECT_THROW(back.bytes_feature("x"), FormatError);
  EXPECT_THROW(back.float_feature("missing"), FormatError);
  // Wrong kind also throws.
  EXPECT_THROW(back.int64_feature("y"), FormatError);
}

TEST(TfExample, RejectsGarbage) {
  const Bytes junk = {0xFF, 0x12, 0x00, 0x99};
  EXPECT_THROW(TfExample::parse(junk), Error);
}

TEST(TfExample, EmptyExampleRoundTrips) {
  const TfExample ex;
  const TfExample back = TfExample::parse(ex.serialize());
  EXPECT_TRUE(back.features.empty());
}

TEST(H5Lite, RoundTripsDatasets) {
  H5File file;
  std::vector<float> climate(16 * 8 * 12);
  for (std::size_t i = 0; i < climate.size(); ++i) {
    climate[i] = static_cast<float>(i) * 0.25F;
  }
  file.add_array<float>("climate", DType::kF32, {16, 8, 12},
                        std::span<const float>(climate));
  std::vector<std::uint8_t> mask(8 * 12, 2);
  file.add_array<std::uint8_t>("labels", DType::kU8, {8, 12},
                               std::span<const std::uint8_t>(mask));

  const Bytes wire = file.serialize(/*chunk_size=*/256);
  const H5File back = H5File::parse(wire);
  ASSERT_TRUE(back.contains("climate"));
  ASSERT_TRUE(back.contains("labels"));
  const auto got = back.dataset("climate").as_span<float>();
  ASSERT_EQ(got.size(), climate.size());
  EXPECT_TRUE(std::equal(got.begin(), got.end(), climate.begin()));
  EXPECT_EQ(back.dataset("climate").shape,
            (std::vector<std::uint64_t>{16, 8, 12}));
  EXPECT_EQ(back.dataset("labels").as_span<std::uint8_t>()[5], 2);
}

TEST(H5Lite, AttributesSurvive) {
  H5File file;
  Dataset d;
  d.name = "t";
  d.dtype = DType::kU8;
  d.shape = {2};
  d.data = {1, 2};
  d.attrs["units"] = "kelvin";
  d.attrs["source"] = "cam5";
  file.add(std::move(d));
  const H5File back = H5File::parse(file.serialize());
  EXPECT_EQ(back.dataset("t").attrs.at("units"), "kelvin");
  EXPECT_EQ(back.dataset("t").attrs.at("source"), "cam5");
}

TEST(H5Lite, RejectsDuplicateNames) {
  H5File file;
  file.add_array<std::uint8_t>("a", DType::kU8, {1},
                               std::span<const std::uint8_t>(Bytes{1}));
  EXPECT_THROW(file.add_array<std::uint8_t>(
                   "a", DType::kU8, {1}, std::span<const std::uint8_t>(Bytes{2})),
               FormatError);
}

TEST(H5Lite, RejectsShapeDataMismatch) {
  H5File file;
  Dataset d;
  d.name = "bad";
  d.dtype = DType::kF32;
  d.shape = {10};
  d.data = Bytes(12);  // 3 floats, not 10
  EXPECT_THROW(file.add(std::move(d)), FormatError);
}

TEST(H5Lite, TruncatedChunkDataNamesOffset) {
  H5File file;
  file.add_array<std::uint8_t>("t", DType::kU8, {64},
                               std::span<const std::uint8_t>(Bytes(64, 9)));
  const Bytes wire = file.serialize(/*chunk_size=*/64);
  // Cut into the chunk payload: the declared 64-byte chunk now runs past EOF.
  const ByteSpan cut = ByteSpan(wire).first(wire.size() - 10);
  try {
    H5File::parse(cut);
    FAIL() << "expected TruncatedError";
  } catch (const TruncatedError& e) {
    EXPECT_EQ(e.offset(), wire.size() - 64 - 12);
    EXPECT_NE(std::string(e.what()).find("dataset 't'"), std::string::npos);
  }
}

TEST(H5Lite, TruncatedChunkHeaderNamesOffset) {
  H5File file;
  file.add_array<std::uint8_t>("t", DType::kU8, {64},
                               std::span<const std::uint8_t>(Bytes(64, 9)));
  const Bytes wire = file.serialize(/*chunk_size=*/64);
  // Cut inside the 12-byte chunk header itself.
  const std::size_t header_at = wire.size() - 64 - 12;
  const ByteSpan cut = ByteSpan(wire).first(header_at + 5);
  try {
    H5File::parse(cut);
    FAIL() << "expected TruncatedError";
  } catch (const TruncatedError& e) {
    EXPECT_EQ(e.offset(), header_at);
  }
}

TEST(H5Lite, DetectsChunkCorruption) {
  H5File file;
  std::vector<float> v(1000, 1.5F);
  file.add_array<float>("v", DType::kF32, {1000}, std::span<const float>(v));
  Bytes wire = file.serialize(/*chunk_size=*/512);
  wire[wire.size() - 100] ^= 0x10;
  EXPECT_THROW(H5File::parse(wire), FormatError);
}

TEST(H5Lite, WrongTypedViewThrows) {
  H5File file;
  std::vector<float> v(4, 1.0F);
  file.add_array<float>("v", DType::kF32, {4}, std::span<const float>(v));
  EXPECT_THROW(file.dataset("v").as_span<std::uint16_t>(), FormatError);
}

TEST(CosmoSample, ExampleRoundTrip) {
  CosmoSample s;
  s.dim = 8;
  s.counts.resize(s.value_count());
  Rng rng(6);
  for (auto& c : s.counts) {
    c = static_cast<std::int32_t>(rng.next_below(100));
  }
  s.params = {0.3F, 0.8F, 0.96F, 0.7F};

  const Bytes wire = s.serialize();
  const CosmoSample back = CosmoSample::parse(wire);
  EXPECT_EQ(back.dim, 8);
  EXPECT_EQ(back.counts, s.counts);
  EXPECT_EQ(back.params, s.params);
  EXPECT_EQ(back.at(1, 2, 3, 0), s.counts[((3 * 8 + 2) * 8 + 1) * 4]);
}

TEST(CosmoSample, RejectsSizePayloadMismatch) {
  CosmoSample s;
  s.dim = 8;
  s.counts.resize(s.value_count());
  s.params = {1, 2, 3, 4};
  TfExample ex = s.to_example();
  ex.features.at("size").int64_list[0] = 16;  // lie about the size
  EXPECT_THROW(CosmoSample::from_example(ex), FormatError);
}

TEST(CamSample, H5RoundTrip) {
  CamSample s;
  s.height = 6;
  s.width = 10;
  s.channels = 3;
  s.image.resize(s.value_count());
  for (std::size_t i = 0; i < s.image.size(); ++i) {
    s.image[i] = static_cast<float>(i) - 50.0F;
  }
  s.labels.assign(s.pixel_count(), 0);
  s.labels[13] = 1;

  const CamSample back = CamSample::parse(s.serialize());
  EXPECT_EQ(back.height, 6);
  EXPECT_EQ(back.width, 10);
  EXPECT_EQ(back.channels, 3);
  EXPECT_EQ(back.image, s.image);
  EXPECT_EQ(back.labels, s.labels);
  EXPECT_EQ(back.at(1, 2, 3), s.image[(1 * 6 + 2) * 10 + 3]);
  EXPECT_EQ(back.line(2, 5).size(), 10u);
}

TEST(FileIo, WriteReadRoundTrip) {
  const std::string path = ::testing::TempDir() + "/sciprep_io_test.bin";
  Bytes data(4096);
  Rng rng(8);
  for (auto& b : data) b = static_cast<std::uint8_t>(rng.next_u64());
  write_file(path, data);
  EXPECT_EQ(read_file(path), data);
}

TEST(FileIo, MissingFileThrows) {
  EXPECT_THROW(read_file("/nonexistent/definitely/missing.bin"), IoError);
}

}  // namespace
}  // namespace sciprep::io
