# Multi-tenant serving chaos smoke, driven end to end through the trainer
# binary (ctest -L serve). Four tenants share one resident DataService; the
# acceptance bar is tenant fault isolation and bit-identical crash recovery:
#
#   1. A fault-free 4-tenant run records every tenant's stream digest
#      ("U <epoch> <position> <crc>" per delivered sample, one file per
#      tenant), with all counters reconciled under --validate.
#   2. A chaos run injects corruption + transients into tenant 2 (skip
#      policy) AND kills its consumer mid-epoch; the dead session is lease-
#      swept, checkpointed, and reattached. The healthy tenants {0, 1, 3}
#      must produce byte-identical digest files to stage 1 — the faulty,
#      dying co-tenant is invisible to them.
#   3. A faults-only run (same injection into tenant 2, no kill) pins down
#      tenant 2's expected degraded-but-deterministic stream; the chaos
#      run's tenant-2 file must match it byte for byte — suspend + reattach
#      changed nothing about what was delivered.
#   4. An overload drill with the in-flight-bytes budget cut to half the
#      fleet's full-service demand must converge to the same deterministic
#      admit / degrade / reject split every run (--validate reconciles the
#      admission counters and the end-state ledger).
#
# Usage: cmake -DTRAINER=<path> -DWORK_DIR=<dir> -P serve_chaos_smoke.cmake
if(NOT DEFINED TRAINER OR NOT DEFINED WORK_DIR)
  message(FATAL_ERROR "serve_chaos_smoke: pass -DTRAINER=... -DWORK_DIR=...")
endif()

file(MAKE_DIRECTORY ${WORK_DIR})
set(common_args
  --workload cosmo --samples 24 --epochs 2 --dim 16 --batch 4 --workers 4
  --placement cpu --serve --tenants 4)

execute_process(
  COMMAND ${TRAINER} ${common_args}
          --digest-out ${WORK_DIR}/healthy.digest --validate
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "healthy 4-tenant serve run failed (rc=${rc})")
endif()

execute_process(
  COMMAND ${TRAINER} ${common_args}
          --faulty-tenant 2 --inject-corrupt 0.1 --inject-transient 0.05
          --inject-seed 77 --fault-policy retry-skip
          --digest-out ${WORK_DIR}/faults.digest --validate
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "faults-only serve run failed (rc=${rc})")
endif()

execute_process(
  COMMAND ${TRAINER} ${common_args}
          --faulty-tenant 2 --inject-corrupt 0.1 --inject-transient 0.05
          --inject-seed 77 --fault-policy retry-skip
          --kill-tenant 2 --kill-at-batch 4 --lease-ms 200
          --checkpoint-dir ${WORK_DIR}/ckpt
          --digest-out ${WORK_DIR}/chaos.digest --validate
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "chaos serve run (faulty + killed tenant 2) failed (rc=${rc})")
endif()

# Isolation: the healthy tenants' streams are untouched by the chaos.
foreach(tenant 0 1 3)
  execute_process(
    COMMAND ${CMAKE_COMMAND} -E compare_files
            ${WORK_DIR}/healthy.digest.tenant${tenant}
            ${WORK_DIR}/chaos.digest.tenant${tenant}
    RESULT_VARIABLE rc)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "tenant ${tenant} digest changed under a faulty, dying co-tenant")
  endif()
endforeach()

# Recovery: tenant 2's suspend + reattach continuation is bit-identical to
# its uninterrupted (faults-only) stream.
execute_process(
  COMMAND ${CMAKE_COMMAND} -E compare_files
          ${WORK_DIR}/faults.digest.tenant2
          ${WORK_DIR}/chaos.digest.tenant2
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "tenant 2 reattach diverged from its uninterrupted stream")
endif()

execute_process(
  COMMAND ${TRAINER} ${common_args} --overload --validate
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "overload drill failed its deterministic admission check (rc=${rc})")
endif()
