// Cross-module integration tests: the full train-from-storage loop, format
// interop chains (generator -> container -> codec -> pipeline -> model),
// failure injection across layer boundaries, and end-to-end determinism.
#include <gtest/gtest.h>

#include <cmath>

#include "sciprep/apps/measure.hpp"
#include "sciprep/apps/models.hpp"
#include "sciprep/apps/trainer.hpp"
#include "sciprep/codec/cam_codec.hpp"
#include "sciprep/codec/cosmo_codec.hpp"
#include "sciprep/common/error.hpp"
#include "sciprep/compress/gzip.hpp"
#include "sciprep/dnn/loss.hpp"
#include "sciprep/dnn/optimizer.hpp"
#include "sciprep/io/tfrecord.hpp"
#include "sciprep/pipeline/pipeline.hpp"

namespace sciprep {
namespace {

// ---------------------------------------------------------------------------
// End-to-end: encoded dataset -> pipeline (GPU placement) -> training loop.
// ---------------------------------------------------------------------------
TEST(Integration, CosmoTrainFromEncodedPipelineLearns) {
  data::CosmoGenConfig gen_cfg;
  gen_cfg.dim = 16;
  gen_cfg.seed = 900;
  const data::CosmoGenerator gen(gen_cfg);
  const codec::CosmoCodec codec;
  const auto dataset = pipeline::InMemoryDataset::make_cosmo(
      gen, 8, pipeline::StorageFormat::kEncoded, &codec);

  sim::SimGpu gpu({.sm_count = 8, .warps_per_sm = 4});
  pipeline::PipelineConfig pcfg;
  pcfg.batch_size = 2;
  pcfg.seed = 3;
  pcfg.decode_placement = codec::Placement::kGpu;
  pipeline::DataPipeline pipe(dataset, codec, pcfg, &gpu);

  Rng rng(901);
  auto model = apps::build_cosmoflow_model(16, rng);
  dnn::Sgd optimizer(*model, {.learning_rate = 0.02F, .momentum = 0.9F});

  std::vector<double> epoch_losses;
  for (int epoch = 0; epoch < 4; ++epoch) {
    pipe.start_epoch(static_cast<std::uint64_t>(epoch));
    double loss_sum = 0;
    std::size_t steps = 0;
    pipeline::Batch batch;
    while (pipe.next_batch(batch)) {
      double batch_loss = 0;
      for (const auto& tensor : batch.samples) {
        const dnn::Tensor input = apps::cosmo_input_from_fp16(tensor);
        const dnn::Tensor pred = model->forward(input);
        const auto loss = dnn::mse_loss(pred, tensor.float_labels);
        model->backward(loss.grad);
        batch_loss += loss.loss;
      }
      optimizer.step(static_cast<float>(batch.size()));
      loss_sum += batch_loss / batch.size();
      ++steps;
    }
    epoch_losses.push_back(loss_sum / static_cast<double>(steps));
  }
  EXPECT_LT(epoch_losses.back(), epoch_losses.front() * 0.5)
      << "training through the full pipeline must reduce the loss";
  EXPECT_GT(pipe.stats().gpu.warps, 0u);
}

// ---------------------------------------------------------------------------
// Storage chain: generator -> TFRecord file on disk -> gzip variant ->
// pipeline decode; every stage validates the previous one's output.
// ---------------------------------------------------------------------------
TEST(Integration, CosmoDiskRoundTripThroughAllVariants) {
  data::CosmoGenConfig gen_cfg;
  gen_cfg.dim = 16;
  gen_cfg.seed = 910;
  const data::CosmoGenerator gen(gen_cfg);
  const auto sample = gen.generate(2);

  io::TfRecordWriter w;
  w.append(sample.serialize());
  const Bytes stream = std::move(w).take();

  const std::string dir = ::testing::TempDir();
  io::write_file(dir + "/s.tfrecord", stream);
  io::write_file(dir + "/s.tfrecord.gz", io::gzip_tfrecord_stream(stream));

  // Raw path.
  const auto raw_back = io::read_file(dir + "/s.tfrecord");
  const auto records = io::TfRecordReader::read_all(raw_back);
  ASSERT_EQ(records.size(), 1u);
  const auto parsed = io::CosmoSample::parse(records.front());
  EXPECT_EQ(parsed.counts, sample.counts);
  EXPECT_EQ(parsed.params, sample.params);

  // Gzip path.
  const auto gz_back = io::read_file(dir + "/s.tfrecord.gz");
  const auto plain = io::gunzip_tfrecord_stream(gz_back);
  EXPECT_EQ(plain, stream);

  // Encoded path through the codec registry plugin interface.
  const codec::CosmoCodec codec;
  const Bytes encoded = codec.encode(records.front());
  io::write_file(dir + "/s.cse", encoded);
  const auto enc_back = io::read_file(dir + "/s.cse");
  const auto tensor = codec.decode_cpu(enc_back);
  const auto reference = codec.reference_preprocess(records.front());
  ASSERT_EQ(tensor.values.size(), reference.values.size());
  for (std::size_t i = 0; i < tensor.values.size(); ++i) {
    ASSERT_EQ(tensor.values[i].bits(), reference.values[i].bits());
  }
}

// ---------------------------------------------------------------------------
// DeepCAM end-to-end: encoded pipeline + augmentation -> segmentation train.
// ---------------------------------------------------------------------------
TEST(Integration, CamTrainFromEncodedPipelineLearns) {
  data::CamGenConfig gen_cfg;
  gen_cfg.height = 24;
  gen_cfg.width = 32;
  gen_cfg.channels = 4;
  gen_cfg.seed = 920;
  gen_cfg.cyclone_rate = 4.0;
  const data::CamGenerator gen(gen_cfg);
  const codec::CamCodec codec;
  const auto dataset = pipeline::InMemoryDataset::make_cam(
      gen, 6, pipeline::StorageFormat::kEncoded, &codec);

  pipeline::PipelineConfig pcfg;
  pcfg.batch_size = 2;
  pcfg.seed = 5;
  pcfg.ops = {std::make_shared<pipeline::RandomFlipX>(0.5)};
  pipeline::DataPipeline pipe(dataset, codec, pcfg);

  Rng rng(921);
  auto model = apps::build_deepcam_model(4, rng);
  dnn::Sgd optimizer(*model, {.learning_rate = 0.05F, .momentum = 0.9F});
  const std::vector<float> weights = {0.2F, 2.0F, 2.0F};

  std::vector<double> epoch_losses;
  for (int epoch = 0; epoch < 4; ++epoch) {
    pipe.start_epoch(static_cast<std::uint64_t>(epoch));
    double loss_sum = 0;
    std::size_t steps = 0;
    pipeline::Batch batch;
    while (pipe.next_batch(batch)) {
      double batch_loss = 0;
      for (const auto& tensor : batch.samples) {
        const dnn::Tensor input = apps::input_from_fp16(tensor);
        const dnn::Tensor logits = model->forward(input);
        const auto loss =
            dnn::softmax_xent_loss(logits, tensor.byte_labels, weights);
        model->backward(loss.grad);
        batch_loss += loss.loss;
      }
      optimizer.step(static_cast<float>(batch.size()));
      loss_sum += batch_loss / batch.size();
      ++steps;
    }
    epoch_losses.push_back(loss_sum / static_cast<double>(steps));
  }
  EXPECT_LT(epoch_losses.back(), epoch_losses.front());
}

// ---------------------------------------------------------------------------
// Failure injection across layers: corruption introduced at the storage
// level must surface as FormatError from the pipeline, not as bad tensors.
// ---------------------------------------------------------------------------
TEST(Integration, StorageCorruptionSurfacesThroughPipeline) {
  data::CosmoGenConfig gen_cfg;
  gen_cfg.dim = 8;
  gen_cfg.seed = 930;
  const data::CosmoGenerator gen(gen_cfg);
  const codec::CosmoCodec codec;

  // Corrupt a TFRecord payload byte: CRC catches it at decode time.
  io::TfRecordWriter w;
  w.append(gen.generate(0).serialize());
  Bytes stream = std::move(w).take();
  stream[stream.size() / 2] ^= 0x20;
  pipeline::InMemoryDataset ds(pipeline::StorageFormat::kRawTfRecord,
                               "cosmoflow");
  ds.add_sample(std::move(stream));
  pipeline::PipelineConfig pcfg;
  pcfg.prefetch = false;
  pipeline::DataPipeline pipe(ds, codec, pcfg);
  pipeline::Batch batch;
  EXPECT_THROW(pipe.next_batch(batch), FormatError);
}

TEST(Integration, EncodedCorruptionSurfacesThroughPipeline) {
  data::CosmoGenConfig gen_cfg;
  gen_cfg.dim = 8;
  gen_cfg.seed = 931;
  const data::CosmoGenerator gen(gen_cfg);
  const codec::CosmoCodec codec;
  Bytes encoded = codec.encode_sample(gen.generate(0));
  encoded.resize(encoded.size() - 3);  // truncate
  pipeline::InMemoryDataset ds(pipeline::StorageFormat::kEncoded, "cosmoflow");
  ds.add_sample(std::move(encoded));
  pipeline::PipelineConfig pcfg;
  pcfg.prefetch = false;
  pipeline::DataPipeline pipe(ds, codec, pcfg);
  pipeline::Batch batch;
  EXPECT_THROW(pipe.next_batch(batch), FormatError);
}

// Exceptions thrown inside a prefetch worker must reach the consumer.
TEST(Integration, PrefetchWorkerErrorsPropagate) {
  data::CosmoGenConfig gen_cfg;
  gen_cfg.dim = 8;
  gen_cfg.seed = 932;
  const data::CosmoGenerator gen(gen_cfg);
  const codec::CosmoCodec codec;
  pipeline::InMemoryDataset ds(pipeline::StorageFormat::kEncoded, "cosmoflow");
  ds.add_sample(codec.encode_sample(gen.generate(0)));  // batch 1: good
  Bytes bad = codec.encode_sample(gen.generate(1));
  bad.resize(bad.size() - 5);  // batch 2 (prefetched): truncated
  ds.add_sample(std::move(bad));

  pipeline::PipelineConfig pcfg;
  pcfg.batch_size = 1;
  pcfg.shuffle = false;
  pcfg.prefetch = true;
  pipeline::DataPipeline pipe(ds, codec, pcfg);
  pipeline::Batch batch;
  ASSERT_TRUE(pipe.next_batch(batch));  // good batch; bad one is in flight
  EXPECT_THROW(pipe.next_batch(batch), Error);
}

// ---------------------------------------------------------------------------
// Determinism: the same seeds produce bit-identical datasets, pipelines,
// and training trajectories across runs.
// ---------------------------------------------------------------------------
TEST(Integration, FullStackDeterminism) {
  auto run_once = [] {
    data::CosmoGenConfig gen_cfg;
    gen_cfg.dim = 16;
    gen_cfg.seed = 940;
    const data::CosmoGenerator gen(gen_cfg);
    const codec::CosmoCodec codec;
    const auto dataset = pipeline::InMemoryDataset::make_cosmo(
        gen, 6, pipeline::StorageFormat::kEncoded, &codec);
    pipeline::PipelineConfig pcfg;
    pcfg.batch_size = 2;
    pcfg.seed = 17;
    pipeline::DataPipeline pipe(dataset, codec, pcfg);

    Rng rng(941);
    auto model = apps::build_cosmoflow_model(16, rng);
    dnn::Sgd optimizer(*model, {.learning_rate = 0.02F, .momentum = 0.9F});
    std::vector<double> losses;
    pipeline::Batch batch;
    while (pipe.next_batch(batch)) {
      double batch_loss = 0;
      for (const auto& tensor : batch.samples) {
        const dnn::Tensor input = apps::cosmo_input_from_fp16(tensor);
        const auto loss =
            dnn::mse_loss(model->forward(input), tensor.float_labels);
        model->backward(loss.grad);
        batch_loss += loss.loss;
      }
      optimizer.step(static_cast<float>(batch.size()));
      losses.push_back(batch_loss);
    }
    return losses;
  };
  EXPECT_EQ(run_once(), run_once());
}

// ---------------------------------------------------------------------------
// The full measured->modelled chain used by the figure benches.
// ---------------------------------------------------------------------------
TEST(Integration, StepModelConsumesMeasuredProfiles) {
  const auto profile =
      apps::measure_cosmo(apps::LoaderConfig::kGpuPlugin, 16, 1, 950);
  sim::StepScenario scenario;
  scenario.platform = sim::cori_v100();
  scenario.samples_per_node = 128 * 8;
  scenario.batch_size = 4;
  const auto breakdown = sim::model_step(scenario, profile.profile);
  EXPECT_GT(breakdown.step_seconds(), 0);
  EXPECT_GT(breakdown.gpu_decode, 0);
  EXPECT_GT(sim::node_samples_per_second(scenario, breakdown), 0);
}

}  // namespace
}  // namespace sciprep
