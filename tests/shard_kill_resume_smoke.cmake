# Elastic-sharding smoke, driven end to end through the trainer binary
# (ctest -L shard). Three stages over one workload:
#
#   1. A healthy 4-rank run records the merged global stream digest
#      ("S <epoch> <position> <crc>" per delivered sample, emitted from the
#      coordinator's position-keyed digest at the end of the run).
#   2. A single-rank run must reproduce that digest bit for bit — the global
#      shuffle and the per-sample augmentations are rank-count invariant.
#   3. A 4-rank run kills rank 2 mid-epoch; its undelivered shard remainder
#      is redistributed to the survivors from its last coordinated
#      checkpoint, and the merged stream must STILL match the healthy run
#      (--expect-digest + --validate enforce digest identity, exact-once
#      accounting, and the rank-loss bookkeeping).
#
# Usage: cmake -DTRAINER=<path> -DWORK_DIR=<dir> -P shard_kill_resume_smoke.cmake
if(NOT DEFINED TRAINER OR NOT DEFINED WORK_DIR)
  message(FATAL_ERROR "shard_kill_resume_smoke: pass -DTRAINER=... -DWORK_DIR=...")
endif()

file(MAKE_DIRECTORY ${WORK_DIR})
set(common_args
  --workload cam --samples 32 --epochs 2 --dim 8 --batch 4 --workers 2
  --placement cpu)

execute_process(
  COMMAND ${TRAINER} ${common_args} --ranks 4
          --digest-out ${WORK_DIR}/healthy.digest --validate
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "healthy 4-rank run failed (rc=${rc})")
endif()

execute_process(
  COMMAND ${TRAINER} ${common_args} --ranks 1
          --expect-digest ${WORK_DIR}/healthy.digest --validate
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "1-rank run diverged from the 4-rank digest (rc=${rc})")
endif()

execute_process(
  COMMAND ${TRAINER} ${common_args} --ranks 4
          --kill-rank 2 --kill-at-batch 3 --checkpoint-every 2
          --digest-out ${WORK_DIR}/killed.digest
          --expect-digest ${WORK_DIR}/healthy.digest --validate
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "killed-and-resharded run failed the digest check (rc=${rc})")
endif()

# The recovered run's digest FILE must also be byte-identical to the healthy
# one — both are emitted from the merged stream, so any difference means the
# recovery path leaked into the canonical stream.
execute_process(
  COMMAND ${CMAKE_COMMAND} -E compare_files
          ${WORK_DIR}/healthy.digest ${WORK_DIR}/killed.digest
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "healthy and killed digest files differ")
endif()
