// Tests for sciprep::wire: the framed wire protocol (roundtrips, layout,
// hostile-input fuzz — truncation at every offset, every single-bit flip,
// huge declared lengths, wrong version/type under a valid CRC), the AF_UNIX
// socket layer (deadlines, typed connect errors), and the WireServer/
// WireClient pair end-to-end against a real DataService — including
// exactly-once redelivery under injected frame corruption and connection
// drops, hostile-peer containment, and overload surfacing as DEGRADED.
#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <cstring>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "sciprep/codec/cam_codec.hpp"
#include "sciprep/common/crc.hpp"
#include "sciprep/common/error.hpp"
#include "sciprep/common/format.hpp"
#include "sciprep/common/fp16.hpp"
#include "sciprep/common/rng.hpp"
#include "sciprep/data/cam_gen.hpp"
#include "sciprep/fault/fault.hpp"
#include "sciprep/flow/merge.hpp"
#include "sciprep/pipeline/pipeline.hpp"
#include "sciprep/serve/service.hpp"
#include "sciprep/wire/client.hpp"
#include "sciprep/wire/frame.hpp"
#include "sciprep/wire/server.hpp"
#include "sciprep/wire/socket.hpp"

namespace sciprep::wire {
namespace {

using pipeline::Batch;
using pipeline::InMemoryDataset;
using pipeline::StorageFormat;

// --- Frame codec: roundtrips and layout ------------------------------------

Frame make_frame(FrameType type, std::uint8_t flags, std::size_t n) {
  Frame frame;
  frame.type = type;
  frame.flags = flags;
  frame.payload.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    frame.payload[i] = static_cast<std::uint8_t>(i * 31 + 7);
  }
  return frame;
}

TEST(WireFrame, RoundtripsEveryTypeAndFlagCombination) {
  for (int t = static_cast<int>(FrameType::kHello);
       t <= static_cast<int>(FrameType::kTrace); ++t) {
    for (const std::size_t n : {std::size_t{0}, std::size_t{1},
                                std::size_t{13}, std::size_t{4096}}) {
      const Frame frame =
          make_frame(static_cast<FrameType>(t), t % 2 ? kFlagDegraded : 0, n);
      const Bytes encoded = encode_frame(frame);
      ASSERT_EQ(encoded.size(), kHeaderSize + n + kTrailerSize);
      const Frame back = decode_frame(encoded);
      EXPECT_EQ(back.type, frame.type);
      EXPECT_EQ(back.flags, frame.flags);
      EXPECT_EQ(back.payload, frame.payload);
    }
  }
}

TEST(WireFrame, EnvelopeLayoutMatchesTheDocumentedOffsets) {
  const Frame frame = make_frame(FrameType::kBatch, kFlagDegraded, 5);
  const Bytes e = encode_frame(frame);
  // magic "SWIR" little-endian at offset 0.
  EXPECT_EQ(e[0], 'S');
  EXPECT_EQ(e[1], 'W');
  EXPECT_EQ(e[2], 'I');
  EXPECT_EQ(e[3], 'R');
  std::uint16_t version = 0;
  std::memcpy(&version, e.data() + 4, 2);
  EXPECT_EQ(version, kProtocolVersion);
  EXPECT_EQ(e[6], static_cast<std::uint8_t>(FrameType::kBatch));
  EXPECT_EQ(e[7], kFlagDegraded);
  std::uint32_t length = 0;
  std::memcpy(&length, e.data() + 8, 4);
  EXPECT_EQ(length, 5u);
  // The trailer CRC covers [4, 12 + N): everything but the magic.
  std::uint32_t stored = 0;
  std::memcpy(&stored, e.data() + e.size() - kTrailerSize, 4);
  EXPECT_EQ(stored,
            crc32c(ByteSpan(e.data() + 4, kHeaderSize - 4 + frame.payload.size())));
}

TEST(WireFrame, TruncationAtEveryOffsetIsATypedTruncatedError) {
  const Bytes full = encode_frame(make_frame(FrameType::kBatch, 0, 64));
  for (std::size_t n = 0; n < full.size(); ++n) {
    const ByteSpan prefix(full.data(), n);
    EXPECT_THROW((void)decode_frame(prefix), TruncatedError)
        << "prefix length " << n;
  }
}

TEST(WireFrame, EverySingleBitFlipIsDetected) {
  const Bytes full = encode_frame(make_frame(FrameType::kNext, 0, 32));
  for (std::size_t bit = 0; bit < full.size() * 8; ++bit) {
    Bytes flipped = full;
    flipped[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
    try {
      (void)decode_frame(flipped);
      FAIL() << "bit " << bit << " flipped undetected";
    } catch (const TruncatedError&) {
      // A flip in the length field can make the frame claim more payload
      // than was captured — still typed, still detected.
    } catch (const FormatError&) {
      // Magic, version, type, flags, payload, or CRC damage.
    }
  }
}

TEST(WireFrame, HugeDeclaredLengthIsRejectedBeforeAllocation) {
  Bytes header(kHeaderSize, 0);
  header[0] = 'S';
  header[1] = 'W';
  header[2] = 'I';
  header[3] = 'R';
  std::memcpy(header.data() + 4, &kProtocolVersion, 2);
  header[6] = static_cast<std::uint8_t>(FrameType::kBeat);
  const std::uint32_t huge = 0xFFFFFFFFu;
  std::memcpy(header.data() + 8, &huge, 4);
  EXPECT_THROW((void)decode_header(header), FormatError);
  EXPECT_THROW((void)decode_frame(header), FormatError);
}

TEST(WireFrame, WrongMagicIsFormatError) {
  Bytes e = encode_frame(make_frame(FrameType::kBeat, 0, 0));
  e[0] = 'X';
  EXPECT_THROW((void)decode_frame(e), FormatError);
  EXPECT_THROW((void)decode_header(e), FormatError);
}

/// Re-seal a tampered envelope with a freshly computed, *valid* CRC so the
/// tampered field survives the integrity check and must be judged on its
/// semantics.
void reseal(Bytes& e) {
  const std::uint32_t crc = crc32c(
      ByteSpan(e.data() + 4, e.size() - 4 - kTrailerSize));
  std::memcpy(e.data() + e.size() - kTrailerSize, &crc, 4);
}

TEST(WireFrame, WrongVersionWithValidCrcIsProtocolError) {
  Bytes e = encode_frame(make_frame(FrameType::kBeat, 0, 4));
  const std::uint16_t other = kProtocolVersion + 1;
  std::memcpy(e.data() + 4, &other, 2);
  reseal(e);
  EXPECT_THROW((void)decode_frame(e), ProtocolError);
}

TEST(WireFrame, UnknownTypeWithValidCrcIsProtocolError) {
  for (const std::uint8_t type : {std::uint8_t{0},
                                  std::uint8_t{kMaxFrameType + 1},
                                  std::uint8_t{0xFF}}) {
    Bytes e = encode_frame(make_frame(FrameType::kBeat, 0, 4));
    e[6] = type;
    reseal(e);
    EXPECT_THROW((void)decode_frame(e), ProtocolError) << int(type);
  }
}

TEST(WireFrame, TrailingGarbageIsFormatError) {
  Bytes e = encode_frame(make_frame(FrameType::kBeat, 0, 4));
  e.push_back(0xAB);
  EXPECT_THROW((void)decode_frame(e), FormatError);
}

// --- Payload schemas --------------------------------------------------------

TEST(WirePayload, HandshakePayloadsRoundtrip) {
  HelloPayload hello;
  hello.schema_version = 3;
  hello.fingerprint = 0xDEADBEEFCAFE1234ull;
  hello.client = "test-client/9";
  const HelloPayload h = HelloPayload::decode(hello.encode());
  EXPECT_EQ(h.schema_version, hello.schema_version);
  EXPECT_EQ(h.fingerprint, hello.fingerprint);
  EXPECT_EQ(h.client, hello.client);

  WelcomePayload welcome;
  welcome.schema_version = 2;
  welcome.fingerprint = 77;
  const WelcomePayload w = WelcomePayload::decode(welcome.encode());
  EXPECT_EQ(w.schema_version, 2u);
  EXPECT_EQ(w.fingerprint, 77u);

  AttachPayload attach;
  attach.tenant = "tenant42";
  EXPECT_EQ(AttachPayload::decode(attach.encode()).tenant, "tenant42");

  AttachedPayload attached;
  attached.session = 7;
  attached.admission = 1;
  attached.resumed = 1;
  attached.resume_seq = 41;
  const AttachedPayload a = AttachedPayload::decode(attached.encode());
  EXPECT_EQ(a.session, 7);
  EXPECT_EQ(a.admission, 1);
  EXPECT_EQ(a.resumed, 1);
  EXPECT_EQ(a.resume_seq, 41u);

  NextPayload next;
  next.ack = 123456789;
  EXPECT_EQ(NextPayload::decode(next.encode()).ack, 123456789u);

  DetachedPayload detached;
  detached.batches = 8;
  detached.samples = 32;
  detached.attaches = 3;
  detached.sweeps = 1;
  detached.digest_crc = 0xABCD1234u;
  const DetachedPayload d = DetachedPayload::decode(detached.encode());
  EXPECT_EQ(d.batches, 8u);
  EXPECT_EQ(d.samples, 32u);
  EXPECT_EQ(d.attaches, 3u);
  EXPECT_EQ(d.sweeps, 1u);
  EXPECT_EQ(d.digest_crc, 0xABCD1234u);
}

Batch make_batch() {
  Batch batch;
  batch.epoch = 2;
  batch.index_in_epoch = 5;
  batch.bytes_at_rest = 4096;
  for (int s = 0; s < 3; ++s) {
    codec::TensorF16 t;
    t.shape = {2, 4};
    for (int i = 0; i < 8; ++i) {
      t.values.push_back(Half(static_cast<float>(s * 8 + i) * 0.25F));
    }
    t.float_labels = {1.5F * static_cast<float>(s), -2.0F};
    t.byte_labels = {static_cast<std::uint8_t>(s), 0xFE};
    batch.samples.push_back(std::move(t));
    batch.order_positions.push_back(static_cast<std::uint64_t>(10 + s));
  }
  return batch;
}

TEST(WirePayload, BatchPayloadRoundtripsBitIdentically) {
  BatchPayload payload;
  payload.seq = 99;
  payload.batch = make_batch();
  const BatchPayload back = BatchPayload::decode(payload.encode());
  EXPECT_EQ(back.seq, 99u);
  EXPECT_EQ(back.batch.epoch, payload.batch.epoch);
  EXPECT_EQ(back.batch.index_in_epoch, payload.batch.index_in_epoch);
  EXPECT_EQ(back.batch.bytes_at_rest, payload.batch.bytes_at_rest);
  EXPECT_EQ(back.batch.order_positions, payload.batch.order_positions);
  ASSERT_EQ(back.batch.samples.size(), payload.batch.samples.size());
  for (std::size_t s = 0; s < back.batch.samples.size(); ++s) {
    const codec::TensorF16& x = payload.batch.samples[s];
    const codec::TensorF16& y = back.batch.samples[s];
    EXPECT_EQ(y.shape, x.shape);
    ASSERT_EQ(y.values.size(), x.values.size());
    EXPECT_EQ(std::memcmp(y.values.data(), x.values.data(),
                          x.values.size() * sizeof(Half)),
              0);
    EXPECT_EQ(y.float_labels, x.float_labels);
    EXPECT_EQ(y.byte_labels, x.byte_labels);
  }
}

TEST(WirePayload, FuzzedBatchPayloadBytesFailTypedNeverCrash) {
  BatchPayload payload;
  payload.seq = 1;
  payload.batch = make_batch();
  const Bytes valid = payload.encode();
  std::uint64_t state = 0xC0FFEE;
  int decoded = 0;
  for (int iter = 0; iter < 4000; ++iter) {
    Bytes fuzzed = valid;
    // Mutate 1..8 positions: random byte overwrites biased toward the
    // length-bearing prefix, plus occasional truncation/extension.
    const int edits = 1 + static_cast<int>(splitmix64(state) % 8);
    for (int e = 0; e < edits; ++e) {
      const std::size_t at = splitmix64(state) % fuzzed.size();
      fuzzed[at] = static_cast<std::uint8_t>(splitmix64(state));
    }
    if (splitmix64(state) % 4 == 0) {
      fuzzed.resize(splitmix64(state) % (valid.size() + 16));
    }
    try {
      const BatchPayload back = BatchPayload::decode(fuzzed);
      ++decoded;  // structurally valid mutation — fine, content differs
      (void)back;
    } catch (const FormatError&) {
      // typed rejection: exactly what hostile input must produce
    }
  }
  // Overwhelmingly these mutations must be rejected; a handful may keep the
  // structure intact (e.g. edits inside sample values).
  EXPECT_LT(decoded, 4000);
}

TEST(WirePayload, TruncatedBatchPayloadAtEveryOffsetFailsTyped) {
  BatchPayload payload;
  payload.seq = 1;
  payload.batch = make_batch();
  const Bytes valid = payload.encode();
  for (std::size_t n = 0; n < valid.size(); ++n) {
    EXPECT_THROW((void)BatchPayload::decode(ByteSpan(valid.data(), n)),
                 FormatError)
        << "prefix " << n;
  }
}

TEST(WirePayload, ErrorPayloadRethrowsTheTaxonomy) {
  auto roundtrip_throw = [](ErrorClass cls) {
    ErrorPayload payload;
    payload.error_class = static_cast<std::uint8_t>(cls);
    payload.message = "boom";
    throw_error_payload(ErrorPayload::decode(payload.encode()));
  };
  EXPECT_THROW(roundtrip_throw(ErrorClass::kTransient), TransientError);
  EXPECT_THROW(roundtrip_throw(ErrorClass::kCorrupt), FormatError);
  EXPECT_THROW(roundtrip_throw(ErrorClass::kConfig), ConfigError);
  EXPECT_THROW(roundtrip_throw(ErrorClass::kCancelled), CancelledError);
  EXPECT_THROW(roundtrip_throw(ErrorClass::kFatal), Error);
}

// --- Flow extensions: trace context + control payloads ----------------------

TEST(WireTraceContext, RoundtripsAndAdvancesPastTheExtension) {
  ByteWriter w;
  encode_trace_context(w, {0xA1B2C3D4E5F60718ull, 42});
  w.put<std::uint32_t>(0xCAFEBABE);  // the NEXT payload proper
  const Bytes buf = std::move(w).take();
  ByteSpan view(buf);
  const TraceContext ctx = decode_trace_context(view);
  EXPECT_EQ(ctx.trace_id, 0xA1B2C3D4E5F60718ull);
  EXPECT_EQ(ctx.parent_span_id, 42u);
  // The view advanced exactly past the extension; the payload is intact.
  EXPECT_EQ(view.size(), 4u);
  std::uint32_t rest = 0;
  std::memcpy(&rest, view.data(), 4);
  EXPECT_EQ(rest, 0xCAFEBABEu);
}

TEST(WireTraceContext, TruncationAtEveryOffsetIsFormatError) {
  ByteWriter w;
  encode_trace_context(w, {1, 2});
  const Bytes full = std::move(w).take();
  ASSERT_EQ(full.size(), kTraceContextBytes);
  for (std::size_t n = 0; n < full.size(); ++n) {
    ByteSpan view(full.data(), n);
    EXPECT_THROW((void)decode_trace_context(view), FormatError)
        << "prefix " << n;
  }
}

TEST(WireTraceContext, UnknownVersionIsProtocolError) {
  for (const std::uint8_t version :
       {std::uint8_t{0}, std::uint8_t{kTraceContextVersion + 1},
        std::uint8_t{0xFF}}) {
    ByteWriter w;
    encode_trace_context(w, {1, 2});
    Bytes buf = std::move(w).take();
    buf[0] = version;
    ByteSpan view(buf);
    EXPECT_THROW((void)decode_trace_context(view), ProtocolError)
        << int(version);
  }
}

TEST(WireTraceContext, FuzzedExtensionBytesFailTypedNeverCrash) {
  std::uint64_t state = 0xF10'F10;
  int decoded = 0;
  for (int iter = 0; iter < 4000; ++iter) {
    Bytes noise(splitmix64(state) % (kTraceContextBytes + 8));
    for (std::uint8_t& b : noise) {
      b = static_cast<std::uint8_t>(splitmix64(state));
    }
    ByteSpan view(noise);
    try {
      (void)decode_trace_context(view);
      ++decoded;  // version byte happened to be valid and length sufficed
    } catch (const ProtocolError&) {
    } catch (const FormatError&) {
    }
  }
  EXPECT_LT(decoded, 4000);
}

TEST(WireFlowPayloads, ClockSyncAndTraceControlRoundtrip) {
  ClockSyncPayload sync;
  sync.t_client_ns = 123456789;
  sync.t_server_ns = 987654321;
  const ClockSyncPayload sync_back = ClockSyncPayload::decode(sync.encode());
  EXPECT_EQ(sync_back.t_client_ns, sync.t_client_ns);
  EXPECT_EQ(sync_back.t_server_ns, sync.t_server_ns);

  TraceRequestPayload req;
  req.max_spans = 64;
  EXPECT_EQ(TraceRequestPayload::decode(req.encode()).max_spans, 64u);

  TracePayload trace;
  trace.pid = 4242;
  trace.process_name = "trainer-server";
  trace.spans_dropped = 7;
  obs::TraceSpan span;
  span.name = "flow.server.next";
  span.category = "flow";
  span.thread = 3;
  span.t_start_ns = 1000;
  span.t_end_ns = 2000;
  span.args_json = "{\"trace_id\":1,\"parent_span_id\":2}";
  trace.spans.push_back(span);
  const TracePayload trace_back = TracePayload::decode(trace.encode());
  EXPECT_EQ(trace_back.pid, 4242);
  EXPECT_EQ(trace_back.process_name, "trainer-server");
  EXPECT_EQ(trace_back.spans_dropped, 7u);
  ASSERT_EQ(trace_back.spans.size(), 1u);
  EXPECT_EQ(trace_back.spans[0].name, span.name);
  EXPECT_EQ(trace_back.spans[0].category, span.category);
  EXPECT_EQ(trace_back.spans[0].thread, span.thread);
  EXPECT_EQ(trace_back.spans[0].t_start_ns, span.t_start_ns);
  EXPECT_EQ(trace_back.spans[0].t_end_ns, span.t_end_ns);
  EXPECT_EQ(trace_back.spans[0].args_json, span.args_json);
}

TEST(WireFlowPayloads, TruncatedTracePayloadAtEveryOffsetFailsTyped) {
  TracePayload trace;
  trace.pid = 1;
  trace.process_name = "p";
  obs::TraceSpan span;
  span.name = "s";
  span.category = "c";
  trace.spans.push_back(span);
  const Bytes valid = trace.encode();
  for (std::size_t n = 0; n < valid.size(); ++n) {
    EXPECT_THROW((void)TracePayload::decode(ByteSpan(valid.data(), n)),
                 FormatError)
        << "prefix " << n;
  }
}

// --- Socket layer -----------------------------------------------------------

std::string test_socket_path(const char* tag) {
  static std::atomic<int> counter{0};
  return fmt("/tmp/sciprep_wire_{}_{}_{}.sock", tag, ::getpid(),
             counter.fetch_add(1));
}

TEST(WireSocket, FrameRoundtripAcrossAConnection) {
  const std::string path = test_socket_path("rt");
  const Socket listener = listen_unix(path, 4);
  std::thread server([&] {
    Socket conn = accept_unix(listener);
    ASSERT_TRUE(conn.valid());
    Frame request;
    ASSERT_TRUE(recv_frame(conn, request, false));
    EXPECT_EQ(request.type, FrameType::kHello);
    send_frame(conn, Frame{FrameType::kWelcome, 0, request.payload});
  });
  Socket client = connect_unix(path);
  const Frame hello = make_frame(FrameType::kHello, 0, 100);
  send_frame(client, hello);
  Frame reply;
  ASSERT_TRUE(recv_frame(client, reply, false));
  EXPECT_EQ(reply.type, FrameType::kWelcome);
  EXPECT_EQ(reply.payload, hello.payload);
  server.join();
  ::unlink(path.c_str());
}

TEST(WireSocket, ConnectToNothingIsTransient) {
  EXPECT_THROW((void)connect_unix("/tmp/sciprep_wire_no_such.sock"),
               TransientError);
}

TEST(WireSocket, ReadDeadlineSurfacesAsTransientNotHang) {
  const std::string path = test_socket_path("dl");
  const Socket listener = listen_unix(path, 4);
  std::thread server([&] {
    Socket conn = accept_unix(listener);
    // Hold the connection open but never reply.
    std::this_thread::sleep_for(std::chrono::milliseconds(400));
  });
  Socket client = connect_unix(path);
  set_io_deadline(client, 0.05);
  Frame frame;
  EXPECT_THROW((void)recv_frame(client, frame, false), TransientError);
  server.join();
  ::unlink(path.c_str());
}

TEST(WireSocket, OversizeSocketPathIsConfigError) {
  // sockaddr_un caps the path; both ends must refuse before touching the
  // syscall rather than silently truncating to a different address.
  const std::string path = "/tmp/" + std::string(150, 'y');
  EXPECT_THROW((void)listen_unix(path, 4), ConfigError);
  EXPECT_THROW((void)connect_unix(path), ConfigError);
}

// --- End-to-end: WireServer + WireClient over a DataService -----------------

constexpr std::size_t kSamples = 16;
constexpr int kBatchSize = 4;

struct WireRig {
  explicit WireRig(std::uint64_t injector_seed = 1)
      : injector(injector_seed, &registry) {
    data::CamGenConfig cfg;
    cfg.height = 8;
    cfg.width = 8;
    cfg.channels = 4;
    cfg.seed = 11;
    gen.emplace(cfg);
    dataset.emplace(InMemoryDataset::make_cam(*gen, kSamples,
                                              StorageFormat::kEncoded,
                                              &codec));
  }

  [[nodiscard]] serve::ServiceConfig service_config() {
    serve::ServiceConfig cfg;
    cfg.worker_threads = 2;
    cfg.metrics = &registry;
    cfg.verify_stream = true;
    cfg.lease_deadline_seconds = 0.25;
    return cfg;
  }

  [[nodiscard]] static serve::TenantSpec tenant(const std::string& name,
                                                std::uint64_t seed,
                                                std::uint64_t epochs = 1) {
    serve::TenantSpec spec;
    spec.name = name;
    spec.epochs = epochs;
    spec.pipeline.batch_size = kBatchSize;
    spec.pipeline.seed = seed;
    spec.pipeline.prefetch = true;
    spec.pipeline.ops.push_back(std::make_shared<pipeline::RandomFlipX>());
    return spec;
  }

  [[nodiscard]] WireClientConfig client_config(const std::string& path,
                                               const std::string& name) {
    WireClientConfig cfg;
    cfg.socket_path = path;
    cfg.tenant = name;
    cfg.request_timeout_seconds = 5.0;
    cfg.backoff_initial_seconds = 0.01;
    cfg.backoff_max_seconds = 0.1;
    return cfg;
  }

  std::optional<data::CamGenerator> gen;
  codec::CamCodec codec;
  obs::MetricsRegistry registry;
  fault::Injector injector;
  std::optional<InMemoryDataset> dataset;
};

/// The reference stream digest for a tenant spec: what an in-process
/// consumer of an identical service delivers.
std::uint32_t reference_stream(WireRig& rig, const serve::TenantSpec& spec) {
  serve::DataService service(*rig.dataset, rig.codec, rig.service_config());
  const auto open = service.open_session(spec);
  EXPECT_NE(open.admission, serve::Admission::kRejected);
  Batch batch;
  while (service.next_batch(open.session, batch)) {
  }
  service.close_session(open.session);
  return service.digest(open.session).stream_digest();
}

TEST(WireEndToEnd, TwoClientsDrainTheirTenantsBitIdentically) {
  WireRig rig;
  const std::uint32_t ref_a = reference_stream(rig, WireRig::tenant("a", 5));
  const std::uint32_t ref_b = reference_stream(rig, WireRig::tenant("b", 9));

  serve::DataService service(*rig.dataset, rig.codec, rig.service_config());
  const std::string path = test_socket_path("e2e");
  WireServerConfig wcfg;
  wcfg.socket_path = path;
  wcfg.request_timeout_seconds = 1.0;
  wcfg.metrics = &rig.registry;
  WireServer server(service,
                    {WireRig::tenant("a", 5), WireRig::tenant("b", 9)}, wcfg);
  server.start();

  auto drain_tenant = [&](const std::string& name, std::uint64_t& batches,
                          std::uint32_t& stream) {
    WireClient client(rig.client_config(path, name));
    client.attach();
    EXPECT_FALSE(client.resumed());
    Batch batch;
    while (client.next(batch)) {
      ++batches;
      EXPECT_EQ(batch.samples.size(), batch.order_positions.size());
    }
    const DetachedPayload detached = client.detach();
    EXPECT_EQ(detached.attaches, 1u);
    stream = client.digest().stream_digest();
    EXPECT_EQ(detached.digest_crc, stream);
  };
  std::uint64_t batches_a = 0;
  std::uint64_t batches_b = 0;
  std::uint32_t stream_a = 0;
  std::uint32_t stream_b = 0;
  std::thread ta([&] { drain_tenant("a", batches_a, stream_a); });
  std::thread tb([&] { drain_tenant("b", batches_b, stream_b); });
  ta.join();
  tb.join();
  EXPECT_TRUE(server.wait_all_detached(5.0));
  server.stop();

  EXPECT_EQ(batches_a, kSamples / kBatchSize);
  EXPECT_EQ(batches_b, kSamples / kBatchSize);
  // The wire moved the bytes; it must not have changed them.
  EXPECT_EQ(stream_a, ref_a);
  EXPECT_EQ(stream_b, ref_b);
  EXPECT_NE(stream_a, stream_b);  // distinct seeds, distinct streams
  EXPECT_GE(rig.registry.counter_value("wire.batches_sent_total"),
            batches_a + batches_b);
}

TEST(WireEndToEnd, TracedClientDecomposesEveryBatchAndPullsServerState) {
  WireRig rig;
  serve::DataService service(*rig.dataset, rig.codec, rig.service_config());
  const std::string path = test_socket_path("flow");
  WireServerConfig wcfg;
  wcfg.socket_path = path;
  wcfg.request_timeout_seconds = 5.0;
  wcfg.metrics = &rig.registry;
  WireServer server(service, {WireRig::tenant("f", 5)}, wcfg);
  server.start();

  // Private tracer + registry so the validation below sees exactly this
  // client's flow instrumentation.
  obs::MetricsRegistry client_reg;
  obs::Tracer client_tracer;
  WireClientConfig ccfg = rig.client_config(path, "f");
  ccfg.trace_propagate = true;
  ccfg.metrics = &client_reg;
  ccfg.tracer = &client_tracer;
  WireClient client(ccfg);
  client.attach();
  EXPECT_NE(client.trace_id(), 0u);
  // The CLOCK_SYNC handshake ran at attach and produced a bounded estimate.
  EXPECT_TRUE(client.clock_offset().valid);
  EXPECT_GT(client.clock_offset().rtt_ns, 0u);
  EXPECT_EQ(client.clock_offset().error_bound_ns,
            client.clock_offset().rtt_ns / 2);

  std::uint64_t batches = 0;
  Batch batch;
  while (client.next(batch)) ++batches;
  EXPECT_EQ(batches, kSamples / kBatchSize);

  // Control-frame pulls happen on the live session, before DETACH.
  const StatsPayload stats = client.pull_server_stats();
  EXPECT_EQ(stats.scope, "tenant/f");
  EXPECT_EQ(client.server_scope(), "tenant/f");
  const TracePayload server_trace = client.pull_server_trace();
  EXPECT_EQ(server_trace.pid, static_cast<std::int64_t>(::getpid()));
  EXPECT_FALSE(server_trace.process_name.empty());
  const obs::MetricsSnapshot server_totals = client.server_totals();
  (void)client.detach();
  EXPECT_TRUE(server.wait_all_detached(5.0));
  server.stop();

  // The accumulated STATS deltas reproduce the server-side tenant registry:
  // every delivered sample is accounted for in the federated view.
  const auto samples = server_totals.counters.find("pipeline.samples_total");
  ASSERT_NE(samples, server_totals.counters.end());
  EXPECT_EQ(samples->second, kSamples);

  // Walk the cross-process linkage: every batch span must match a server
  // span tree with the full queue-wait/encode/send decomposition, and span
  // time must agree with the attribution histograms on both sides.
  const flow::FlowValidation v = flow::validate_flow(
      client_tracer.snapshot(), server_trace.spans, client_reg.snapshot(),
      server_totals, client_tracer.dropped_total(),
      server_trace.spans_dropped);
  EXPECT_EQ(v.client_batches, batches);
  EXPECT_EQ(v.linked, batches);
  EXPECT_EQ(v.decomposed, batches);
  EXPECT_DOUBLE_EQ(v.decomposed_fraction, 1.0);
  EXPECT_TRUE(v.histograms_consistent);
}

TEST(WireEndToEnd, InjectedCorruptionAndDropsAreAbsorbedBitIdentically) {
  WireRig rig(4242);
  const std::uint32_t ref =
      reference_stream(rig, WireRig::tenant("chaos", 3, 2));

  serve::DataService service(*rig.dataset, rig.codec, rig.service_config());
  rig.injector.configure(fault::Site::kWireFrameCrc,
                         {.corrupt_probability = 0.2});
  rig.injector.configure(fault::Site::kWireConnDrop,
                         {.transient_probability = 0.15});
  const std::string path = test_socket_path("chaos");
  WireServerConfig wcfg;
  wcfg.socket_path = path;
  wcfg.request_timeout_seconds = 1.0;
  wcfg.metrics = &rig.registry;
  wcfg.injector = &rig.injector;
  std::atomic<int> wire_faults{0};
  wcfg.on_event = [&](const fault::RecoveryEvent& event) {
    if (event.kind == fault::EventKind::kWireFault) ++wire_faults;
  };
  WireServer server(service, {WireRig::tenant("chaos", 3, 2)}, wcfg);
  server.start();

  WireClient client(rig.client_config(path, "chaos"));
  Batch batch;
  std::uint64_t batches = 0;
  while (client.next(batch)) ++batches;
  const DetachedPayload detached = client.detach();
  EXPECT_TRUE(server.wait_all_detached(5.0));
  server.stop();

  // Exactly-once: every batch delivered once despite drops + corruption...
  EXPECT_EQ(batches, 2 * kSamples / kBatchSize);
  // ...with the exact bytes an undisturbed in-process run delivers.
  EXPECT_EQ(client.digest().stream_digest(), ref);
  EXPECT_EQ(detached.digest_crc, ref);
  // The chaos actually happened and was seen.
  EXPECT_GT(client.stats().reconnects, 0u);
  EXPECT_GT(wire_faults.load(), 0);
  EXPECT_GT(rig.registry.counter_value("wire.resends_total"), 0u);
}

TEST(WireEndToEnd, HostilePeerIsContainedAndCoTenantUnharmed) {
  WireRig rig;
  const std::uint32_t ref = reference_stream(rig, WireRig::tenant("good", 5));

  serve::DataService service(*rig.dataset, rig.codec, rig.service_config());
  const std::string path = test_socket_path("hostile");
  WireServerConfig wcfg;
  wcfg.socket_path = path;
  wcfg.request_timeout_seconds = 0.5;
  wcfg.metrics = &rig.registry;
  WireServer server(service, {WireRig::tenant("good", 5)}, wcfg);
  server.start();

  // Hostile peer 1: raw garbage instead of a frame.
  {
    Socket hostile = connect_unix(path);
    const char garbage[] = "GET / HTTP/1.1\r\n\r\n";
    EXPECT_NO_THROW(
        send_frame_bytes(hostile, as_bytes(std::string_view(garbage))));
  }
  // Hostile peer 2: valid envelope, server-only frame type.
  {
    Socket hostile = connect_unix(path);
    send_frame(hostile, Frame{FrameType::kBatch, 0, {}});
    Frame reply;
    ASSERT_TRUE(recv_frame(hostile, reply, false));
    ASSERT_EQ(reply.type, FrameType::kError);
    EXPECT_THROW(throw_error_payload(ErrorPayload::decode(reply.payload)),
                 Error);
  }
  // Hostile peer 3: attach to a tenant that does not exist.
  {
    WireClient client(rig.client_config(path, "nope"));
    EXPECT_THROW(client.attach(), ConfigError);
  }

  // The legitimate tenant is untouched by all of the above.
  WireClient client(rig.client_config(path, "good"));
  Batch batch;
  while (client.next(batch)) {
  }
  (void)client.detach();
  server.stop();
  EXPECT_EQ(client.digest().stream_digest(), ref);
}

TEST(WireEndToEnd, SecondAttachToAnOwnedTenantIsRefused) {
  WireRig rig;
  serve::DataService service(*rig.dataset, rig.codec, rig.service_config());
  const std::string path = test_socket_path("busy");
  WireServerConfig wcfg;
  wcfg.socket_path = path;
  wcfg.metrics = &rig.registry;
  WireServer server(service, {WireRig::tenant("solo", 5)}, wcfg);
  server.start();

  WireClient first(rig.client_config(path, "solo"));
  first.attach();
  WireClientConfig second_cfg = rig.client_config(path, "solo");
  second_cfg.max_reconnect_attempts = 1;
  WireClient second(second_cfg);
  EXPECT_THROW(second.attach(), ConfigError);

  Batch batch;
  while (first.next(batch)) {
  }
  (void)first.detach();
  server.stop();
}

TEST(WireEndToEnd, DeadConsumerIsSweptAndAReplacementResumesBitIdentically) {
  WireRig rig;
  const std::uint32_t ref =
      reference_stream(rig, WireRig::tenant("phoenix", 21, 2));

  serve::DataService service(*rig.dataset, rig.codec, rig.service_config());
  const std::string path = test_socket_path("phoenix");
  WireServerConfig wcfg;
  wcfg.socket_path = path;
  wcfg.request_timeout_seconds = 0.5;
  wcfg.sweep_interval_seconds = 0.1;  // lease is 0.25s
  wcfg.metrics = &rig.registry;
  WireServer server(service, {WireRig::tenant("phoenix", 21, 2)}, wcfg);
  server.start();

  // "Process" one: delivers three batches, then vanishes without DETACH —
  // scoped destruction closes the socket exactly like a SIGKILL would.
  std::uint64_t first_delivered = 0;
  {
    WireClient doomed(rig.client_config(path, "phoenix"));
    Batch batch;
    while (first_delivered < 3 && doomed.next(batch)) ++first_delivered;
  }
  ASSERT_EQ(first_delivered, 3u);

  // Let the lease lapse and the sweeper suspend + checkpoint the session.
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::seconds(5);
  while (server.tenant_stats("phoenix").sweeps == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  ASSERT_GE(server.tenant_stats("phoenix").sweeps, 1u);

  // "Process" two: fresh client state, same tenant name.
  WireClient replacement(rig.client_config(path, "phoenix"));
  replacement.attach();
  EXPECT_TRUE(replacement.resumed());
  Batch batch;
  std::uint64_t second_delivered = 0;
  while (replacement.next(batch)) ++second_delivered;
  const DetachedPayload detached = replacement.detach();
  EXPECT_TRUE(server.wait_all_detached(5.0));
  server.stop();

  // The server-side digest spans the death: bit-identical to an
  // uninterrupted run, with the epochs' worth of batches delivered across
  // the two processes (the retained batch may go out twice — at-least-once
  // across a process death, idempotent under the digest).
  EXPECT_EQ(detached.digest_crc, ref);
  EXPECT_GE(first_delivered + second_delivered, 2 * kSamples / kBatchSize);
  EXPECT_GE(detached.sweeps, 1u);
  EXPECT_GE(detached.attaches, 2u);
  EXPECT_EQ(rig.registry.counter_value("serve.sessions_reattached_total"),
            1u);
}

TEST(WireEndToEnd, OverloadSurfacesAsDegradedFlagNeverAHang) {
  WireRig rig;
  serve::ServiceConfig scfg = rig.service_config();
  // Budget for two full-service sessions (prefetch doubles the charge):
  // the first tenant admits at 0.5, the second crosses the 0.75 degrade
  // watermark and is shed into degraded mode at admission.
  serve::DataService probe(*rig.dataset, rig.codec, scfg);
  scfg.limits.max_inflight_bytes = static_cast<std::uint64_t>(kBatchSize) *
                                   probe.probe_sample_bytes() * 4;
  serve::DataService service(*rig.dataset, rig.codec, scfg);
  const std::string path = test_socket_path("shed");
  WireServerConfig wcfg;
  wcfg.socket_path = path;
  wcfg.metrics = &rig.registry;
  WireServer server(service,
                    {WireRig::tenant("t0", 1), WireRig::tenant("t1", 2)},
                    wcfg);
  server.start();

  WireClient c0(rig.client_config(path, "t0"));
  c0.attach();
  EXPECT_FALSE(c0.degraded());
  WireClient c1(rig.client_config(path, "t1"));
  c1.attach();
  EXPECT_TRUE(c1.degraded());

  Batch batch;
  while (c0.next(batch)) {
  }
  while (c1.next(batch)) {
  }
  (void)c0.detach();
  (void)c1.detach();
  server.stop();
}

}  // namespace
}  // namespace sciprep::wire
