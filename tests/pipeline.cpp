// Tests for the data pipeline: dataset variants, decode paths per storage
// format, batching/shuffling/prefetching, placement, ops, and stats.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "sciprep/codec/cam_codec.hpp"
#include "sciprep/codec/cosmo_codec.hpp"
#include "sciprep/common/error.hpp"
#include "sciprep/pipeline/pipeline.hpp"

namespace sciprep::pipeline {
namespace {

data::CosmoGenerator cosmo_gen(int dim = 16) {
  data::CosmoGenConfig cfg;
  cfg.dim = dim;
  cfg.seed = 11;
  return data::CosmoGenerator(cfg);
}

data::CamGenerator cam_gen() {
  data::CamGenConfig cfg;
  cfg.height = 48;
  cfg.width = 64;
  cfg.channels = 4;
  cfg.seed = 12;
  return data::CamGenerator(cfg);
}

TEST(Dataset, CosmoVariantsShrinkAsExpected) {
  const auto gen = cosmo_gen();
  const codec::CosmoCodec codec;
  const auto raw =
      InMemoryDataset::make_cosmo(gen, 4, StorageFormat::kRawTfRecord);
  const auto gz =
      InMemoryDataset::make_cosmo(gen, 4, StorageFormat::kGzipTfRecord);
  const auto enc =
      InMemoryDataset::make_cosmo(gen, 4, StorageFormat::kEncoded, &codec);
  EXPECT_EQ(raw.size(), 4u);
  EXPECT_LT(gz.total_bytes(), raw.total_bytes());
  EXPECT_LT(enc.total_bytes(), raw.total_bytes());
  EXPECT_EQ(raw.workload(), "cosmoflow");
}

TEST(Dataset, SharedSamplesDoNotMultiplyMemoryButCountBytes) {
  const auto gen = cosmo_gen();
  const auto small =
      InMemoryDataset::make_cosmo(gen, 2, StorageFormat::kRawTfRecord);
  const auto big = InMemoryDataset::make_cosmo(
      gen, 10, StorageFormat::kRawTfRecord, nullptr, /*generate_count=*/2);
  EXPECT_EQ(big.size(), 10u);
  EXPECT_EQ(big.total_bytes(), small.total_bytes() * 5);
  // Repeats alias the same storage.
  EXPECT_EQ(big.sample(0).data(), big.sample(2).data());
}

TEST(Dataset, CamRejectsTfRecordFormat) {
  EXPECT_THROW(
      InMemoryDataset::make_cam(cam_gen(), 2, StorageFormat::kRawTfRecord),
      ConfigError);
}

TEST(Pipeline, BaselinePathMatchesReferencePreprocess) {
  const auto gen = cosmo_gen();
  const codec::CosmoCodec codec;
  const auto ds =
      InMemoryDataset::make_cosmo(gen, 3, StorageFormat::kRawTfRecord);
  PipelineConfig cfg;
  cfg.shuffle = false;
  cfg.prefetch = false;
  DataPipeline pipe(ds, codec, cfg);
  const codec::TensorF16 got = pipe.decode_sample(1);
  const codec::TensorF16 want =
      codec::CosmoCodec::reference_preprocess_sample(gen.generate(1));
  ASSERT_EQ(got.values.size(), want.values.size());
  for (std::size_t i = 0; i < got.values.size(); ++i) {
    ASSERT_EQ(got.values[i].bits(), want.values[i].bits());
  }
}

TEST(Pipeline, GzipPathDecodesIdentically) {
  const auto gen = cosmo_gen();
  const codec::CosmoCodec codec;
  const auto raw =
      InMemoryDataset::make_cosmo(gen, 2, StorageFormat::kRawTfRecord);
  const auto gz =
      InMemoryDataset::make_cosmo(gen, 2, StorageFormat::kGzipTfRecord);
  PipelineConfig cfg;
  cfg.shuffle = false;
  cfg.prefetch = false;
  DataPipeline raw_pipe(raw, codec, cfg);
  DataPipeline gz_pipe(gz, codec, cfg);
  const auto a = raw_pipe.decode_sample(0);
  const auto b = gz_pipe.decode_sample(0);
  ASSERT_EQ(a.values.size(), b.values.size());
  for (std::size_t i = 0; i < a.values.size(); ++i) {
    ASSERT_EQ(a.values[i].bits(), b.values[i].bits());
  }
}

TEST(Pipeline, EncodedCpuAndGpuPathsAgree) {
  const auto gen = cosmo_gen();
  const codec::CosmoCodec codec;
  const auto ds =
      InMemoryDataset::make_cosmo(gen, 2, StorageFormat::kEncoded, &codec);
  PipelineConfig cpu_cfg;
  cpu_cfg.shuffle = false;
  cpu_cfg.prefetch = false;
  DataPipeline cpu_pipe(ds, codec, cpu_cfg);

  sim::SimGpu gpu({.sm_count = 4, .warps_per_sm = 2});
  PipelineConfig gpu_cfg = cpu_cfg;
  gpu_cfg.decode_placement = codec::Placement::kGpu;
  DataPipeline gpu_pipe(ds, codec, gpu_cfg, &gpu);

  const auto a = cpu_pipe.decode_sample(0);
  const auto b = gpu_pipe.decode_sample(0);
  ASSERT_EQ(a.values.size(), b.values.size());
  for (std::size_t i = 0; i < a.values.size(); ++i) {
    ASSERT_EQ(a.values[i].bits(), b.values[i].bits());
  }
}

TEST(Pipeline, GpuPlacementRequiresEncodedFormatAndDevice) {
  const auto gen = cosmo_gen();
  const codec::CosmoCodec codec;
  const auto raw =
      InMemoryDataset::make_cosmo(gen, 2, StorageFormat::kRawTfRecord);
  PipelineConfig cfg;
  cfg.decode_placement = codec::Placement::kGpu;
  EXPECT_THROW(DataPipeline(raw, codec, cfg), ConfigError);
  const auto enc =
      InMemoryDataset::make_cosmo(gen, 2, StorageFormat::kEncoded, &codec);
  EXPECT_THROW(DataPipeline(enc, codec, cfg), ConfigError);  // no SimGpu
}

TEST(Pipeline, EpochCoversEverySampleOnce) {
  const auto gen = cosmo_gen(8);
  const codec::CosmoCodec codec;
  const auto ds =
      InMemoryDataset::make_cosmo(gen, 10, StorageFormat::kEncoded, &codec);
  PipelineConfig cfg;
  cfg.batch_size = 3;
  cfg.seed = 5;
  DataPipeline pipe(ds, codec, cfg);
  EXPECT_EQ(pipe.batches_per_epoch(), 4u);

  Batch batch;
  std::size_t samples = 0;
  std::size_t batches = 0;
  while (pipe.next_batch(batch)) {
    samples += static_cast<std::size_t>(batch.size());
    EXPECT_EQ(batch.index_in_epoch, batches);
    ++batches;
  }
  EXPECT_EQ(samples, 10u);
  EXPECT_EQ(batches, 4u);
  EXPECT_EQ(pipe.stats().samples, 10u);
  EXPECT_EQ(pipe.stats().batches, 4u);
  EXPECT_GT(pipe.stats().bytes_at_rest, 0u);
}

TEST(Pipeline, DropLastSkipsPartialBatch) {
  const auto gen = cosmo_gen(8);
  const codec::CosmoCodec codec;
  const auto ds =
      InMemoryDataset::make_cosmo(gen, 10, StorageFormat::kEncoded, &codec);
  PipelineConfig cfg;
  cfg.batch_size = 4;
  cfg.drop_last = true;
  DataPipeline pipe(ds, codec, cfg);
  EXPECT_EQ(pipe.batches_per_epoch(), 2u);
  Batch batch;
  std::size_t samples = 0;
  while (pipe.next_batch(batch)) {
    EXPECT_EQ(batch.size(), 4);
    samples += 4;
  }
  EXPECT_EQ(samples, 8u);
}

TEST(Pipeline, ShuffleDiffersAcrossEpochsAndIsSeeded) {
  const auto gen = cosmo_gen(8);
  const codec::CosmoCodec codec;
  const auto ds =
      InMemoryDataset::make_cosmo(gen, 12, StorageFormat::kEncoded, &codec);
  PipelineConfig cfg;
  cfg.batch_size = 12;
  cfg.seed = 9;
  cfg.prefetch = false;

  auto epoch_labels = [&](DataPipeline& pipe, std::uint64_t epoch) {
    pipe.start_epoch(epoch);
    Batch b;
    EXPECT_TRUE(pipe.next_batch(b));
    std::vector<float> firsts;
    for (const auto& s : b.samples) {
      firsts.push_back(s.float_labels.at(0));
    }
    return firsts;
  };

  DataPipeline pipe(ds, codec, cfg);
  const auto e0 = epoch_labels(pipe, 0);
  const auto e1 = epoch_labels(pipe, 1);
  EXPECT_NE(e0, e1) << "different epochs must shuffle differently";
  // Same seed + epoch reproduces the order exactly.
  DataPipeline pipe2(ds, codec, cfg);
  EXPECT_EQ(epoch_labels(pipe2, 0), e0);
  // Epoch order is a permutation, not a resampling.
  auto sorted0 = e0;
  auto sorted1 = e1;
  std::sort(sorted0.begin(), sorted0.end());
  std::sort(sorted1.begin(), sorted1.end());
  EXPECT_EQ(sorted0, sorted1);
}

TEST(Pipeline, PrefetchProducesSameBatchesAsSynchronous) {
  const auto gen = cosmo_gen(8);
  const codec::CosmoCodec codec;
  const auto ds =
      InMemoryDataset::make_cosmo(gen, 9, StorageFormat::kEncoded, &codec);
  PipelineConfig sync_cfg;
  sync_cfg.batch_size = 2;
  sync_cfg.seed = 3;
  sync_cfg.prefetch = false;
  PipelineConfig pre_cfg = sync_cfg;
  pre_cfg.prefetch = true;

  DataPipeline sync_pipe(ds, codec, sync_cfg);
  DataPipeline pre_pipe(ds, codec, pre_cfg);
  Batch a;
  Batch b;
  while (true) {
    const bool has_a = sync_pipe.next_batch(a);
    const bool has_b = pre_pipe.next_batch(b);
    ASSERT_EQ(has_a, has_b);
    if (!has_a) break;
    ASSERT_EQ(a.size(), b.size());
    for (int i = 0; i < a.size(); ++i) {
      const auto& sa = a.samples[static_cast<std::size_t>(i)];
      const auto& sb = b.samples[static_cast<std::size_t>(i)];
      ASSERT_EQ(sa.float_labels, sb.float_labels);
      ASSERT_EQ(sa.values.size(), sb.values.size());
    }
  }
}

TEST(Pipeline, CamWithFlipOpsKeepsLabelsConsistent) {
  const auto gen = cam_gen();
  const codec::CamCodec codec;
  const auto ds =
      InMemoryDataset::make_cam(gen, 4, StorageFormat::kEncoded, &codec);
  PipelineConfig cfg;
  cfg.batch_size = 4;
  cfg.shuffle = false;
  cfg.prefetch = false;
  cfg.ops = {std::make_shared<RandomFlipX>(1.0)};  // always flip
  DataPipeline pipe(ds, codec, cfg);
  Batch batch;
  ASSERT_TRUE(pipe.next_batch(batch));

  // Compare against an unflipped pipeline: values must be mirrored in x.
  PipelineConfig plain = cfg;
  plain.ops.clear();
  DataPipeline plain_pipe(ds, codec, plain);
  Batch plain_batch;
  ASSERT_TRUE(plain_pipe.next_batch(plain_batch));

  const auto& f = batch.samples[0];
  const auto& p = plain_batch.samples[0];
  const auto c = f.shape[0];
  const auto h = f.shape[1];
  const auto w = f.shape[2];
  for (std::uint64_t ci = 0; ci < c; ++ci) {
    for (std::uint64_t y = 0; y < h; ++y) {
      for (std::uint64_t x = 0; x < w; ++x) {
        ASSERT_EQ(f.values[(ci * h + y) * w + x].bits(),
                  p.values[(ci * h + y) * w + (w - 1 - x)].bits());
      }
    }
  }
  for (std::uint64_t y = 0; y < h; ++y) {
    for (std::uint64_t x = 0; x < w; ++x) {
      ASSERT_EQ(f.byte_labels[y * w + x], p.byte_labels[y * w + (w - 1 - x)]);
    }
  }
}

TEST(Pipeline, StatsTrackDecodeWork) {
  const auto gen = cosmo_gen();
  const codec::CosmoCodec codec;
  const auto ds =
      InMemoryDataset::make_cosmo(gen, 4, StorageFormat::kEncoded, &codec);
  sim::SimGpu gpu({.sm_count = 4, .warps_per_sm = 2});
  PipelineConfig cfg;
  cfg.batch_size = 2;
  cfg.prefetch = false;
  cfg.decode_placement = codec::Placement::kGpu;
  DataPipeline pipe(ds, codec, cfg, &gpu);
  Batch batch;
  while (pipe.next_batch(batch)) {
  }
  EXPECT_EQ(pipe.stats().samples, 4u);
  EXPECT_GT(pipe.stats().gpu.warps, 0u);
  EXPECT_GT(pipe.stats().gpu.bytes_written, 0u);
  EXPECT_DOUBLE_EQ(pipe.stats().decode_cpu_seconds, 0.0);
}

TEST(Pipeline, StatsAreAssembledFromMetricsRegistry) {
  const auto gen = cosmo_gen();
  const codec::CosmoCodec codec;
  const auto ds =
      InMemoryDataset::make_cosmo(gen, 6, StorageFormat::kEncoded, &codec);
  obs::MetricsRegistry registry;
  PipelineConfig cfg;
  cfg.batch_size = 2;
  cfg.metrics = &registry;  // injected registry backs stats()
  DataPipeline pipe(ds, codec, cfg);
  EXPECT_EQ(&pipe.metrics(), &registry);
  Batch batch;
  while (pipe.next_batch(batch)) {
  }
  const PipelineStats stats = pipe.stats();
  EXPECT_EQ(stats.samples, 6u);
  EXPECT_EQ(stats.samples, registry.counter_value("pipeline.samples_total"));
  EXPECT_EQ(stats.batches, registry.counter_value("pipeline.batches_total"));
  EXPECT_EQ(stats.bytes_at_rest,
            registry.counter_value("pipeline.bytes_at_rest_total"));
  // CPU decode time is the decode-stage histogram's sum (no ops configured,
  // so the ops histogram contributes nothing).
  const auto& decode_hist =
      registry.histogram("pipeline.stage.decode_seconds");
  EXPECT_EQ(decode_hist.count(), 6u);
  EXPECT_DOUBLE_EQ(stats.decode_cpu_seconds, decode_hist.sum());
  EXPECT_EQ(registry.histogram("pipeline.stage.ops_seconds").count(), 0u);
  // The worker pool's telemetry landed in the same registry.
  EXPECT_GT(registry.counter_value("pipeline.pool.tasks_total"), 0u);
  EXPECT_EQ(registry.gauge("pipeline.pool.queue_depth").value(), 0);
  // Per-batch assembly and prefetch waits were histogrammed.
  EXPECT_EQ(registry.histogram("pipeline.stage.batch_assemble_seconds").count(),
            stats.batches);
  EXPECT_GT(registry.histogram("pipeline.stage.prefetch_wait_seconds").count(),
            0u);
}

TEST(Pipeline, PrivateRegistriesKeepPipelinesApart) {
  const auto gen = cosmo_gen();
  const codec::CosmoCodec codec;
  const auto ds =
      InMemoryDataset::make_cosmo(gen, 4, StorageFormat::kEncoded, &codec);
  PipelineConfig cfg;
  cfg.batch_size = 2;
  DataPipeline a(ds, codec, cfg);
  DataPipeline b(ds, codec, cfg);
  Batch batch;
  while (a.next_batch(batch)) {
  }
  EXPECT_EQ(a.stats().samples, 4u);
  EXPECT_EQ(b.stats().samples, 0u);  // b's private registry saw nothing
}

TEST(Ops, ScaleOpScalesValues) {
  codec::TensorF16 t;
  t.shape = {4};
  t.values = {Half(1.0F), Half(2.0F), Half(-3.0F), Half(0.0F)};
  Rng rng(1);
  ScaleOp(2.0F).apply(t, rng);
  EXPECT_EQ(t.values[0].to_float(), 2.0F);
  EXPECT_EQ(t.values[2].to_float(), -6.0F);
}

TEST(Ops, FlipYReversesRows) {
  codec::TensorF16 t;
  t.shape = {1, 2, 3};
  t.values.resize(6);
  for (int i = 0; i < 6; ++i) {
    t.values[static_cast<std::size_t>(i)] = Half(static_cast<float>(i));
  }
  t.byte_labels = {0, 1, 2, 3, 4, 5};
  Rng rng(1);
  RandomFlipY(1.0).apply(t, rng);
  EXPECT_EQ(t.values[0].to_float(), 3.0F);
  EXPECT_EQ(t.values[3].to_float(), 0.0F);
  EXPECT_EQ(t.byte_labels, (std::vector<std::uint8_t>{3, 4, 5, 0, 1, 2}));
}

TEST(Ops, FlipRejectsNonImageTensors) {
  codec::TensorF16 t;
  t.shape = {8};
  t.values.resize(8);
  Rng rng(1);
  EXPECT_THROW(RandomFlipX(1.0).apply(t, rng), ConfigError);
  EXPECT_THROW(RandomFlipX(1.5), ConfigError);
}

}  // namespace
}  // namespace sciprep::pipeline
