// sciprep::perfscope unit tests (ctest -L perf): the JSON document model,
// bench-record serialization roundtrips, host resource sampling invariants,
// trajectory persistence, and the noise-aware comparison verdicts.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "sciprep/obs/json.hpp"
#include "sciprep/perfscope/perfscope.hpp"

namespace {

using namespace sciprep;
using namespace sciprep::perfscope;

std::string temp_path(const std::string& name) {
  return (std::filesystem::temp_directory_path() /
          ("sciprep_perfscope_test_" + name))
      .string();
}

// ---------------------------------------------------------------- jsondom --

TEST(JsonDom, ParsesScalarsAndNesting) {
  JsonValue doc;
  ASSERT_TRUE(json_parse(
      R"({"a":1.5,"b":"text","c":true,"d":null,"e":[1,2,3],"f":{"g":-2e3}})",
      doc));
  ASSERT_TRUE(doc.is_object());
  EXPECT_DOUBLE_EQ(doc.number_or("a", 0), 1.5);
  EXPECT_EQ(doc.string_or("b", ""), "text");
  EXPECT_TRUE(doc.at("c").as_bool());
  EXPECT_TRUE(doc.at("d").is_null());
  ASSERT_TRUE(doc.at("e").is_array());
  ASSERT_EQ(doc.at("e").as_array().size(), 3u);
  EXPECT_DOUBLE_EQ(doc.at("e").as_array()[1].as_number(), 2.0);
  EXPECT_DOUBLE_EQ(doc.at("f").number_or("g", 0), -2000.0);
}

TEST(JsonDom, ParsesStringEscapes) {
  JsonValue doc;
  ASSERT_TRUE(json_parse(R"({"s":"a\"b\\c\nd\tuA"})", doc));
  EXPECT_EQ(doc.string_or("s", ""), "a\"b\\c\nd\tuA");
}

TEST(JsonDom, RejectsMalformedDocuments) {
  JsonValue doc;
  EXPECT_FALSE(json_parse("", doc));
  EXPECT_FALSE(json_parse("{", doc));
  EXPECT_FALSE(json_parse("{\"a\":}", doc));
  EXPECT_FALSE(json_parse("[1,2,]", doc));
  EXPECT_FALSE(json_parse("{} trailing", doc));
  EXPECT_FALSE(json_parse("{'single':1}", doc));
}

TEST(JsonDom, MissingKeysDegradeToFallbacks) {
  JsonValue doc;
  ASSERT_TRUE(json_parse(R"({"x":1})", doc));
  EXPECT_FALSE(doc.has("y"));
  EXPECT_TRUE(doc.at("y").is_null());
  EXPECT_DOUBLE_EQ(doc.number_or("y", 7.0), 7.0);
  EXPECT_EQ(doc.string_or("y", "fb"), "fb");
  // Wrong-kind access degrades the same way.
  EXPECT_DOUBLE_EQ(doc.at("x").as_array().size(), 0u);
}

// ----------------------------------------------------------- bench record --

BenchReporter make_reporter() {
  BenchReporter reporter("unit_bench");
  reporter.set_config("dim=16 repeat=2");
  reporter.add_metric("samples_per_s", 1234.5, "samples/s", "modeled");
  reporter.add_metric("decode_seconds", 0.25, "seconds", "measured",
                      /*better_higher=*/false, /*noise_floor=*/0.01);
  reporter.charge_sim_seconds(3.5);
  reporter.add_latency("decode", 1e-4, 5e-4);
  return reporter;
}

TEST(BenchReport, EmitsValidSchemaTaggedJson) {
  const std::string json = make_reporter().to_json();
  EXPECT_TRUE(obs::json_valid(json)) << json;
  EXPECT_NE(json.find("\"schema\":\"sciprep.perf.bench.v1\""),
            std::string::npos);
  EXPECT_NE(json.find("\"host\":"), std::string::npos);
  EXPECT_NE(json.find("\"config_fingerprint\""), std::string::npos);
}

TEST(BenchReport, RoundTripsThroughTheDom) {
  const BenchReporter reporter = make_reporter();
  JsonValue doc;
  ASSERT_TRUE(json_parse(reporter.to_json(), doc));
  BenchRecord parsed;
  ASSERT_TRUE(bench_record_from_json(doc, parsed));

  EXPECT_EQ(parsed.bench, "unit_bench");
  EXPECT_EQ(parsed.config, "dim=16 repeat=2");
  EXPECT_FALSE(parsed.config_fingerprint.empty());
  EXPECT_DOUBLE_EQ(parsed.sim_charged_seconds, 3.5);
  ASSERT_EQ(parsed.metrics.size(), 2u);
  const BenchMetric* decode = parsed.find_metric("decode_seconds");
  ASSERT_NE(decode, nullptr);
  EXPECT_DOUBLE_EQ(decode->value, 0.25);
  EXPECT_EQ(decode->unit, "seconds");
  EXPECT_EQ(decode->kind, "measured");
  EXPECT_FALSE(decode->better_higher);
  EXPECT_DOUBLE_EQ(decode->noise_floor, 0.01);
  ASSERT_EQ(parsed.latencies.count("decode"), 1u);
  EXPECT_DOUBLE_EQ(parsed.latencies.at("decode").p50_seconds, 1e-4);
  EXPECT_DOUBLE_EQ(parsed.latencies.at("decode").p99_seconds, 5e-4);
}

TEST(BenchReport, FromJsonRejectsWrongSchema) {
  JsonValue doc;
  ASSERT_TRUE(json_parse(R"({"schema":"something.else.v9","bench":"x"})", doc));
  BenchRecord parsed;
  EXPECT_FALSE(bench_record_from_json(doc, parsed));
}

TEST(BenchReport, WallAndSimSecondsStaySeparate) {
  BenchReporter reporter("timing");
  reporter.charge_sim_seconds(100.0);  // modeled time, not harness time
  const BenchRecord record = reporter.snapshot();
  EXPECT_DOUBLE_EQ(record.sim_charged_seconds, 100.0);
  EXPECT_LT(record.wall_seconds, 10.0);  // the snapshot itself is instant
  EXPECT_GE(record.wall_seconds, 0.0);
}

// ------------------------------------------------------- resource sampler --

#if !defined(SCIPREP_OBS_DISABLED)

TEST(ResourceSampler, PeakRssNeverBelowCurrent) {
  const ResourceSample s = ResourceSampler::sample();
  ASSERT_TRUE(s.ok);
  EXPECT_GT(s.rss_bytes, 0u);
  EXPECT_GE(s.peak_rss_bytes, s.rss_bytes);
  EXPECT_GE(s.threads, 1u);
}

TEST(ResourceSampler, CumulativeCountersAreMonotone) {
  const ResourceSample a = ResourceSampler::sample();
  // Burn a little CPU so the utime clock visibly advances between readings.
  volatile double sink = 0;
  for (int i = 0; i < 2000000; ++i) sink += static_cast<double>(i) * 1e-9;
  const ResourceSample b = ResourceSampler::sample();
  ASSERT_TRUE(a.ok);
  ASSERT_TRUE(b.ok);
  EXPECT_GE(b.cpu_utime_seconds, a.cpu_utime_seconds);
  EXPECT_GE(b.cpu_stime_seconds, a.cpu_stime_seconds);
  EXPECT_GT(b.cpu_seconds(), a.cpu_seconds());
  EXPECT_GE(b.minor_faults, a.minor_faults);
  EXPECT_GE(b.major_faults, a.major_faults);
  EXPECT_GE(b.ctx_voluntary, a.ctx_voluntary);
  EXPECT_GE(b.io_read_bytes, a.io_read_bytes);
  EXPECT_GE(b.peak_rss_bytes, a.peak_rss_bytes);
}

TEST(ResourceSampler, PublishMirrorsIntoGaugesAndSeries) {
  obs::MetricsRegistry registry;
  ResourceSampler sampler(&registry);
  const ResourceSample s = sampler.publish();
  ASSERT_TRUE(s.ok);
  const obs::MetricsSnapshot snap = registry.snapshot();
  ASSERT_EQ(snap.gauges.count("proc.rss_bytes"), 1u);
  ASSERT_EQ(snap.gauges.count("proc.cpu_utime_ms"), 1u);
  EXPECT_EQ(static_cast<std::uint64_t>(snap.gauges.at("proc.rss_bytes").value),
            s.rss_bytes);
  ASSERT_EQ(sampler.series().size(), 1u);
  sampler.publish();
  EXPECT_EQ(sampler.series().size(), 2u);
}

TEST(ResourceSampler, SampleJsonIsValid) {
  const ResourceSample s = ResourceSampler::sample();
  EXPECT_TRUE(obs::json_valid(s.to_json())) << s.to_json();
}

#else  // SCIPREP_OBS_DISABLED

TEST(ResourceSampler, DisabledBuildIsANoOp) {
  obs::MetricsRegistry registry;
  ResourceSampler sampler(&registry);
  const ResourceSample s = sampler.publish();
  EXPECT_FALSE(s.ok);
  EXPECT_EQ(s.rss_bytes, 0u);
  EXPECT_DOUBLE_EQ(s.cpu_seconds(), 0.0);
  EXPECT_TRUE(sampler.series().empty());
}

#endif  // SCIPREP_OBS_DISABLED

// --------------------------------------------------------------- trajectory --

BenchRecord simple_record(const std::string& bench, double value,
                          const std::string& fingerprint = "cafe1234") {
  BenchRecord r;
  r.bench = bench;
  r.config = "unit";
  r.config_fingerprint = fingerprint;
  BenchMetric m;
  m.name = "samples_per_s";
  m.value = value;
  m.unit = "samples/s";
  m.better_higher = true;
  r.metrics.push_back(m);
  return r;
}

BenchRun simple_run(double value, const std::string& fingerprint = "cafe1234") {
  BenchRun run;
  run.benches["unit_bench"] = simple_record("unit_bench", value, fingerprint);
  return run;
}

TEST(Trajectory, SaveLoadRoundTrip) {
  const std::string path = temp_path("trajectory.json");
  Trajectory t;
  append_run(t, simple_run(100), 0);
  append_run(t, simple_run(110), 0);
  save_trajectory(path, t);

  Trajectory loaded;
  ASSERT_TRUE(load_trajectory(path, loaded));
  ASSERT_EQ(loaded.runs.size(), 2u);
  EXPECT_EQ(loaded.runs[0].run_index, 1u);
  EXPECT_EQ(loaded.runs[1].run_index, 2u);
  const BenchMetric* m =
      loaded.runs[1].benches.at("unit_bench").find_metric("samples_per_s");
  ASSERT_NE(m, nullptr);
  EXPECT_DOUBLE_EQ(m->value, 110.0);
  std::remove(path.c_str());
}

TEST(Trajectory, AppendCapsHistory) {
  Trajectory t;
  for (int i = 0; i < 10; ++i) append_run(t, simple_run(100.0 + i), 4);
  ASSERT_EQ(t.runs.size(), 4u);
  // The oldest runs were dropped; indices keep counting up.
  EXPECT_EQ(t.runs.front().run_index, 7u);
  EXPECT_EQ(t.runs.back().run_index, 10u);
  const BenchMetric* m =
      t.runs.back().benches.at("unit_bench").find_metric("samples_per_s");
  ASSERT_NE(m, nullptr);
  EXPECT_DOUBLE_EQ(m->value, 109.0);
}

TEST(Trajectory, LoadRejectsMissingGarbageAndWrongSchema) {
  Trajectory t;
  EXPECT_FALSE(load_trajectory(temp_path("nonexistent.json"), t));

  const std::string garbage = temp_path("garbage.json");
  std::ofstream(garbage) << "not json at all {";
  EXPECT_FALSE(load_trajectory(garbage, t));
  std::remove(garbage.c_str());

  const std::string wrong = temp_path("wrong_schema.json");
  std::ofstream(wrong) << R"({"schema":"sciprep.other.v1","runs":[]})";
  EXPECT_FALSE(load_trajectory(wrong, t));
  std::remove(wrong.c_str());
}

// ------------------------------------------------------------------ compare --

TEST(Compare, IdenticalRunsPass) {
  Trajectory t;
  append_run(t, simple_run(100), 0);
  append_run(t, simple_run(100), 0);
  const CompareReport report = compare_latest(t);
  ASSERT_EQ(report.verdicts.size(), 1u);
  EXPECT_EQ(report.verdicts[0].verdict, Verdict::kPass);
  EXPECT_EQ(report.regressions(), 0u);
}

TEST(Compare, DoubledDecodeTimeRegressesAndNamesTheCulprit) {
  BenchRecord base = simple_record("decode_bench", 0);
  base.metrics.clear();
  BenchMetric m;
  m.name = "decode_seconds";
  m.value = 0.1;
  m.unit = "seconds";
  m.better_higher = false;  // time: lower is better
  base.metrics.push_back(m);

  BenchRecord slow = base;
  slow.metrics[0].value = 0.2;  // the injected 2x decode slowdown

  BenchRun run_base;
  run_base.benches["decode_bench"] = base;
  BenchRun run_slow;
  run_slow.benches["decode_bench"] = slow;

  const CompareReport report = compare_runs({run_base}, run_slow);
  ASSERT_EQ(report.verdicts.size(), 1u);
  EXPECT_EQ(report.verdicts[0].verdict, Verdict::kRegressed);
  EXPECT_EQ(report.verdicts[0].bench, "decode_bench");
  EXPECT_EQ(report.verdicts[0].metric, "decode_seconds");
  EXPECT_EQ(report.regressions(), 1u);
  // The gate's output names the culprit, not just a boolean.
  EXPECT_NE(report.human_table().find("decode_bench"), std::string::npos);
  EXPECT_NE(report.human_table().find("decode_seconds"), std::string::npos);
  EXPECT_NE(report.human_table().find("REGRESSED"), std::string::npos);
}

TEST(Compare, HalvedDecodeTimeIsAnImprovement) {
  BenchRun run_base = simple_run(0);
  run_base.benches["unit_bench"].metrics[0].better_higher = false;
  run_base.benches["unit_bench"].metrics[0].value = 0.1;
  BenchRun run_fast = run_base;
  run_fast.benches["unit_bench"].metrics[0].value = 0.05;
  const CompareReport report = compare_runs({run_base}, run_fast);
  ASSERT_EQ(report.verdicts.size(), 1u);
  EXPECT_EQ(report.verdicts[0].verdict, Verdict::kImproved);
  EXPECT_EQ(report.regressions(), 0u);
}

TEST(Compare, MadHistoryWidensTheTolerance) {
  // Noisy history around 100 (MAD 5); current lands at 114 — beyond the
  // 1% relative tolerance but inside the 4*MAD band.
  std::vector<BenchRun> history;
  for (const double v : {100.0, 110.0, 90.0, 105.0, 95.0}) {
    history.push_back(simple_run(v));
  }
  const BenchRun current = simple_run(114);
  CompareOptions mad_on;
  mad_on.rel_tol = 0.01;
  mad_on.min_history = 3;  // MAD trusted
  const CompareReport with_mad = compare_runs(history, current, mad_on);
  ASSERT_EQ(with_mad.verdicts.size(), 1u);
  EXPECT_EQ(with_mad.verdicts[0].verdict, Verdict::kPass);
  EXPECT_DOUBLE_EQ(with_mad.verdicts[0].baseline_median, 100.0);
  EXPECT_DOUBLE_EQ(with_mad.verdicts[0].baseline_mad, 5.0);

  CompareOptions mad_off = mad_on;
  mad_off.min_history = 100;  // history too thin: rel_tol alone applies
  const CompareReport without_mad = compare_runs(history, current, mad_off);
  ASSERT_EQ(without_mad.verdicts.size(), 1u);
  // 114 is samples/s (higher better) — below-median moves would regress, but
  // 114 > 100 is the good side, so it shows as an improvement, not a pass.
  EXPECT_EQ(without_mad.verdicts[0].verdict, Verdict::kImproved);

  // The same spread on the bad side: 86 regresses without MAD, passes with.
  const BenchRun low = simple_run(86);
  EXPECT_EQ(compare_runs(history, low, mad_on).verdicts[0].verdict,
            Verdict::kPass);
  EXPECT_EQ(compare_runs(history, low, mad_off).verdicts[0].verdict,
            Verdict::kRegressed);
}

TEST(Compare, DeclaredNoiseFloorSuppressesTinyWobble) {
  BenchRun base = simple_run(0);
  base.benches["unit_bench"].metrics[0].better_higher = false;
  base.benches["unit_bench"].metrics[0].value = 0.001;
  base.benches["unit_bench"].metrics[0].noise_floor = 0.05;
  BenchRun wobble = base;
  wobble.benches["unit_bench"].metrics[0].value = 0.04;  // 40x, but sub-floor
  const CompareReport report = compare_runs({base}, wobble);
  ASSERT_EQ(report.verdicts.size(), 1u);
  EXPECT_EQ(report.verdicts[0].verdict, Verdict::kPass);
}

TEST(Compare, MissingMetricIsARegression) {
  BenchRun base = simple_run(100);
  BenchRun current = base;
  current.benches["unit_bench"].metrics.clear();
  const CompareReport report = compare_runs({base}, current);
  ASSERT_EQ(report.verdicts.size(), 1u);
  EXPECT_EQ(report.verdicts[0].verdict, Verdict::kMissing);
  EXPECT_EQ(report.regressions(), 1u);

  CompareOptions lenient;
  lenient.fail_on_missing = false;
  EXPECT_EQ(compare_runs({base}, current, lenient).regressions(), 0u);
}

TEST(Compare, NewMetricIsInformational) {
  BenchRun base = simple_run(100);
  BenchRun current = base;
  BenchMetric extra;
  extra.name = "brand_new";
  extra.value = 1;
  current.benches["unit_bench"].metrics.push_back(extra);
  const CompareReport report = compare_runs({base}, current);
  EXPECT_EQ(report.count(Verdict::kNew), 1u);
  EXPECT_EQ(report.regressions(), 0u);
}

TEST(Compare, ConfigChangeIsNotComparable) {
  BenchRun base = simple_run(100, "aaaa");
  // Same bench, different knobs: a 10x "regression" must not fire.
  BenchRun retuned = simple_run(10, "bbbb");
  const CompareReport report = compare_runs({base}, retuned);
  ASSERT_GE(report.verdicts.size(), 1u);
  EXPECT_EQ(report.verdicts[0].verdict, Verdict::kConfigChanged);
  EXPECT_EQ(report.regressions(), 0u);
}

TEST(Compare, RequiresTwoRunsForSelfComparison) {
  Trajectory t;
  append_run(t, simple_run(100), 0);
  EXPECT_TRUE(compare_latest(t).verdicts.empty());
}

}  // namespace
