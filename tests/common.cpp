// Tests for buffer/bitstream/crc/rng/threadpool/stats substrate.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdint>
#include <numeric>
#include <string>
#include <vector>

#include "sciprep/common/bitstream.hpp"
#include "sciprep/common/buffer.hpp"
#include "sciprep/common/crc.hpp"
#include "sciprep/common/error.hpp"
#include "sciprep/common/rng.hpp"
#include "sciprep/common/stats.hpp"
#include "sciprep/common/threadpool.hpp"

namespace sciprep {
namespace {

TEST(ErrorClassify, MapsExceptionTypesToRecoveryClasses) {
  EXPECT_EQ(classify(TransientError("pfs stall")), ErrorClass::kTransient);
  EXPECT_EQ(classify(FormatError("bad crc")), ErrorClass::kCorrupt);
  EXPECT_EQ(classify(TruncatedError("cut", 128)), ErrorClass::kCorrupt);
  EXPECT_EQ(classify(ConfigError("bad batch size")), ErrorClass::kConfig);
  EXPECT_EQ(classify(Error("generic")), ErrorClass::kFatal);
  EXPECT_EQ(classify(std::runtime_error("foreign")), ErrorClass::kFatal);
  EXPECT_EQ(classify(IoError("open failed")), ErrorClass::kFatal);
}

TEST(ErrorClassify, TruncatedErrorCarriesOffsetAndIsIoError) {
  const TruncatedError e("record cut short", 4096);
  EXPECT_EQ(e.offset(), 4096u);
  EXPECT_NE(dynamic_cast<const IoError*>(&e), nullptr);
  EXPECT_STREQ(error_class_name(classify(e)), "corrupt");
  EXPECT_STREQ(error_class_name(ErrorClass::kTransient), "transient");
}

TEST(ByteWriter, ScalarsAndStringsRoundTrip) {
  ByteWriter w;
  w.put<std::uint32_t>(0xDEADBEEFu);
  w.put<std::uint16_t>(42);
  w.put<float>(3.5F);
  w.put_string("cosmo");
  w.put<std::int64_t>(-7);

  ByteReader r(w.bytes());
  EXPECT_EQ(r.get<std::uint32_t>(), 0xDEADBEEFu);
  EXPECT_EQ(r.get<std::uint16_t>(), 42);
  EXPECT_EQ(r.get<float>(), 3.5F);
  EXPECT_EQ(r.get_string(), "cosmo");
  EXPECT_EQ(r.get<std::int64_t>(), -7);
  EXPECT_TRUE(r.done());
}

TEST(ByteReader, ThrowsOnTruncation) {
  ByteWriter w;
  w.put<std::uint16_t>(7);
  ByteReader r(w.bytes());
  EXPECT_EQ(r.get<std::uint8_t>(), 7);
  EXPECT_THROW(r.get<std::uint32_t>(), FormatError);
}

TEST(ByteWriter, PatchRewritesReservedBytes) {
  ByteWriter w;
  const std::size_t at = w.reserve(4);
  w.put<std::uint8_t>(9);
  w.patch<std::uint32_t>(at, 123456u);
  ByteReader r(w.bytes());
  EXPECT_EQ(r.get<std::uint32_t>(), 123456u);
  EXPECT_EQ(r.get<std::uint8_t>(), 9);
}

TEST(BitStream, SingleBits) {
  BitWriter w;
  const std::uint32_t pattern = 0b1011001110001111u;
  for (int i = 0; i < 16; ++i) {
    w.put_bits((pattern >> i) & 1u, 1);
  }
  const Bytes bytes = std::move(w).finish();
  BitReader r(bytes);
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(r.get_bit(), (pattern >> i) & 1u) << "bit " << i;
  }
}

TEST(BitStream, MixedWidthRoundTrip) {
  Rng rng(99);
  std::vector<std::pair<std::uint32_t, int>> fields;
  BitWriter w;
  for (int i = 0; i < 5000; ++i) {
    const int width = 1 + static_cast<int>(rng.next_below(24));
    const auto value = static_cast<std::uint32_t>(
        rng.next_u64() & ((width == 32 ? ~0u : (1u << width) - 1u)));
    fields.emplace_back(value, width);
    w.put_bits(value, width);
  }
  const Bytes bytes = std::move(w).finish();
  BitReader r(bytes);
  for (const auto& [value, width] : fields) {
    EXPECT_EQ(r.get_bits(width), value);
  }
}

TEST(BitStream, AlignAndBytes) {
  BitWriter w;
  w.put_bits(0b101, 3);
  w.align_to_byte();
  const Bytes payload = {0xAB, 0xCD};
  w.put_bytes(payload);
  const Bytes bytes = std::move(w).finish();

  BitReader r(bytes);
  EXPECT_EQ(r.get_bits(3), 0b101u);
  r.align_to_byte();
  const ByteSpan got = r.get_bytes(2);
  EXPECT_EQ(got[0], 0xAB);
  EXPECT_EQ(got[1], 0xCD);
  EXPECT_TRUE(r.exhausted());
}

TEST(BitStream, TruncationThrows) {
  BitWriter w;
  w.put_bits(0x3, 2);
  const Bytes bytes = std::move(w).finish();
  BitReader r(bytes);
  EXPECT_EQ(r.get_bits(8), 0x3u);  // full padded byte is available
  EXPECT_THROW(r.get_bits(8), FormatError);
}

TEST(Crc32, KnownVectors) {
  // "123456789" — canonical check values.
  const auto data = as_bytes(std::string_view("123456789"));
  EXPECT_EQ(crc32(data), 0xCBF43926u);
  EXPECT_EQ(crc32c(data), 0xE3069283u);
}

TEST(Crc32, EmptyIsZero) {
  EXPECT_EQ(crc32(ByteSpan{}), 0u);
  EXPECT_EQ(crc32c(ByteSpan{}), 0u);
}

TEST(Crc32, IncrementalMatchesOneShot) {
  Rng rng(5);
  Bytes data(1000);
  for (auto& b : data) b = static_cast<std::uint8_t>(rng.next_u64());
  const ByteSpan s(data);
  const std::uint32_t whole = crc32(s);
  const std::uint32_t part = crc32(s.subspan(300), crc32(s.first(300)));
  EXPECT_EQ(part, whole);
  EXPECT_EQ(crc32c(s.subspan(123), crc32c(s.first(123))), crc32c(s));
}

TEST(Crc32, MaskUnmaskInverse) {
  for (std::uint32_t v : {0u, 1u, 0xFFFFFFFFu, 0xCBF43926u, 0x12345678u}) {
    EXPECT_EQ(unmask_crc(mask_crc(v)), v);
    EXPECT_NE(mask_crc(v), v);  // masking must change the value
  }
}

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, ForkGivesIndependentStreams) {
  Rng root(1);
  Rng s0 = root.fork(0);
  Rng s1 = root.fork(1);
  EXPECT_NE(s0.next_u64(), s1.next_u64());
  // Forking is a pure function of (state, stream id).
  Rng root2(1);
  Rng s0b = root2.fork(0);
  s0 = root.fork(0);
  EXPECT_EQ(s0.next_u64(), s0b.next_u64());
}

TEST(Rng, UniformBounds) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.next_double();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    const auto k = rng.next_below(17);
    ASSERT_LT(k, 17u);
  }
}

TEST(Rng, NormalMoments) {
  Rng rng(11);
  RunningStats stats;
  for (int i = 0; i < 200000; ++i) {
    stats.add(rng.normal());
  }
  EXPECT_NEAR(stats.mean(), 0.0, 0.02);
  EXPECT_NEAR(stats.stddev(), 1.0, 0.02);
}

TEST(Rng, PoissonMeanMatches) {
  Rng rng(13);
  for (const double mean : {0.5, 4.0, 30.0, 200.0}) {
    RunningStats stats;
    for (int i = 0; i < 20000; ++i) {
      stats.add(static_cast<double>(rng.poisson(mean)));
    }
    EXPECT_NEAR(stats.mean(), mean, mean * 0.05 + 0.05) << "mean " << mean;
  }
}

TEST(ThreadPool, ParallelForCoversAllIndices) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(hits.size(),
                    [&](std::size_t i) { hits[i].fetch_add(1); }, 16);
  for (std::size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPool, PropagatesExceptions) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.parallel_for(100,
                                 [](std::size_t i) {
                                   if (i == 57) throw Error("boom");
                                 }),
               Error);
  // Pool remains usable afterwards.
  std::atomic<int> sum{0};
  pool.parallel_for(10, [&](std::size_t i) { sum += static_cast<int>(i); });
  EXPECT_EQ(sum.load(), 45);
}

TEST(RunningStats, MatchesDirectComputation) {
  RunningStats stats;
  const std::vector<double> xs = {1, 2, 3, 4, 100};
  for (double x : xs) stats.add(x);
  EXPECT_EQ(stats.count(), xs.size());
  EXPECT_DOUBLE_EQ(stats.mean(), 22.0);
  EXPECT_DOUBLE_EQ(stats.min(), 1.0);
  EXPECT_DOUBLE_EQ(stats.max(), 100.0);
  // Sample variance of {1,2,3,4,100}.
  const double mean = 22.0;
  double m2 = 0;
  for (double x : xs) m2 += (x - mean) * (x - mean);
  EXPECT_NEAR(stats.variance(), m2 / 4.0, 1e-9);
}

TEST(RunningStats, MergeEqualsSequential) {
  Rng rng(21);
  RunningStats a;
  RunningStats b;
  RunningStats all;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.normal() * 3 + 1;
    ((i % 2 == 0) ? a : b).add(x);
    all.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-6);
}

TEST(FrequencyTable, OrdersByFrequency) {
  FrequencyTable t;
  for (int i = 0; i < 10; ++i) t.add(5);
  for (int i = 0; i < 3; ++i) t.add(7);
  t.add(9);
  EXPECT_EQ(t.unique_count(), 3u);
  EXPECT_EQ(t.total(), 14u);
  const auto ranked = t.by_frequency();
  EXPECT_EQ(ranked[0].first, 5);
  EXPECT_EQ(ranked[1].first, 7);
  EXPECT_EQ(ranked[2].first, 9);
}

TEST(FrequencyTable, PowerLawSlopeRecoversExponent) {
  // Construct frequencies ~ rank^-2 exactly and check the fit.
  FrequencyTable t;
  for (std::int64_t rank = 1; rank <= 50; ++rank) {
    const auto freq =
        static_cast<std::uint64_t>(1e9 / static_cast<double>(rank * rank));
    t.add(rank, freq);
  }
  EXPECT_NEAR(t.power_law_slope(50), -2.0, 0.01);
}

TEST(Percentile, InterpolatesLinearly) {
  const std::vector<double> v = {1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 1.0), 5.0);
  EXPECT_DOUBLE_EQ(percentile(v, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(percentile(v, 0.25), 2.0);
  EXPECT_DOUBLE_EQ(percentile(v, 0.125), 1.5);
}

TEST(Percentile, SortsUnsortedInput) {
  const std::vector<double> v = {5, 1, 4, 2, 3};
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(percentile(v, 1.0), 5.0);
}

TEST(Percentile, EmptyInputIsNaN) {
  const std::vector<double> empty;
  EXPECT_TRUE(std::isnan(percentile(empty, 0.5)));
  EXPECT_TRUE(std::isnan(percentile_sorted(empty, 0.5)));
}

TEST(RunningStats, MergeWithEmptySides) {
  RunningStats empty;
  RunningStats filled;
  filled.add(2.0);
  filled.add(4.0);

  RunningStats a = filled;
  a.merge(empty);  // merging in empty is a no-op
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 3.0);
  EXPECT_DOUBLE_EQ(a.min(), 2.0);
  EXPECT_DOUBLE_EQ(a.max(), 4.0);

  RunningStats b;
  b.merge(filled);  // merging into empty copies
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), 3.0);
  EXPECT_DOUBLE_EQ(b.variance(), filled.variance());

  RunningStats c;
  c.merge(empty);  // empty into empty stays empty
  EXPECT_EQ(c.count(), 0u);
}

TEST(RunningStats, MergeSingleElementSides) {
  RunningStats a;
  a.add(10.0);
  RunningStats b;
  b.add(-10.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 0.0);
  EXPECT_DOUBLE_EQ(a.min(), -10.0);
  EXPECT_DOUBLE_EQ(a.max(), 10.0);
}

TEST(FrequencyTable, PowerLawSlopeDegenerateInputs) {
  FrequencyTable empty;
  EXPECT_DOUBLE_EQ(empty.power_law_slope(), 0.0);

  FrequencyTable single;
  single.add(7, 100);
  EXPECT_DOUBLE_EQ(single.power_law_slope(), 0.0);  // one point, no slope
}

TEST(FrequencyTable, PowerLawSlopeFewerEntriesThanRanks) {
  // rank^-1 over 5 entries, fit asked for 64 ranks: must clamp to what is
  // there instead of reading out of range.
  FrequencyTable t;
  for (std::int64_t rank = 1; rank <= 5; ++rank) {
    t.add(rank, static_cast<std::uint64_t>(120 / rank));
  }
  EXPECT_NEAR(t.power_law_slope(64), -1.0, 0.05);
}

TEST(LogHistogram, BucketBoundariesArePowersOfTwoSubdivided) {
  LogHistogram h({.min_value = 1.0, .max_value = 16.0, .buckets_per_octave = 1});
  // 4 octaves at 1 bucket each + underflow bucket 0.
  EXPECT_EQ(h.bucket_count(), 5u);
  EXPECT_DOUBLE_EQ(h.bucket_lower(0), 0.0);
  EXPECT_DOUBLE_EQ(h.bucket_upper(0), 1.0);
  EXPECT_DOUBLE_EQ(h.bucket_lower(1), 1.0);
  EXPECT_DOUBLE_EQ(h.bucket_upper(1), 2.0);
  EXPECT_DOUBLE_EQ(h.bucket_lower(4), 8.0);
  EXPECT_TRUE(std::isinf(h.bucket_upper(4)));  // last bucket absorbs overflow

  EXPECT_EQ(h.bucket_index(0.5), 0u);   // underflow
  EXPECT_EQ(h.bucket_index(1.0), 0u);   // boundary: <= min_value underflows
  EXPECT_EQ(h.bucket_index(1.5), 1u);
  EXPECT_EQ(h.bucket_index(3.0), 2u);
  EXPECT_EQ(h.bucket_index(12.0), 4u);
  EXPECT_EQ(h.bucket_index(1e9), 4u);   // overflow clamps to the last bucket
}

TEST(LogHistogram, TracksExactCountSumMinMax) {
  LogHistogram h;
  EXPECT_TRUE(std::isnan(h.mean()));
  EXPECT_TRUE(std::isnan(h.min()));
  EXPECT_TRUE(std::isnan(h.max()));
  EXPECT_TRUE(std::isnan(h.quantile(0.5)));

  h.record(1e-3);
  h.record(4e-3);
  h.record(16e-3);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_NEAR(h.sum(), 21e-3, 1e-12);
  EXPECT_DOUBLE_EQ(h.min(), 1e-3);
  EXPECT_DOUBLE_EQ(h.max(), 16e-3);
  // Quantiles are clamped to the observed extremes.
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 1e-3);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 16e-3);
  // The middle quantile lands inside 4e-3's bucket (within its bounds).
  const double p50 = h.quantile(0.5);
  EXPECT_GE(p50, h.bucket_lower(h.bucket_index(4e-3)));
  EXPECT_LE(p50, h.bucket_upper(h.bucket_index(4e-3)));
}

TEST(LogHistogram, MergeAccumulates) {
  const LogHistogram::Options opts{.min_value = 1e-6,
                                   .max_value = 1.0,
                                   .buckets_per_octave = 2};
  LogHistogram a(opts);
  LogHistogram b(opts);
  a.record(1e-3, 5);
  b.record(1e-2, 3);
  a.merge(b);
  EXPECT_EQ(a.count(), 8u);
  EXPECT_NEAR(a.sum(), 5e-3 + 3e-2, 1e-12);
  EXPECT_DOUBLE_EQ(a.min(), 1e-3);
  EXPECT_DOUBLE_EQ(a.max(), 1e-2);
}

TEST(FormatBytes, HumanReadable) {
  EXPECT_EQ(format_bytes(512), "512 B");
  EXPECT_EQ(format_bytes(2048), "2.00 KiB");
  EXPECT_EQ(format_bytes(3ull * 1024 * 1024 * 1024), "3.00 GiB");
}

}  // namespace
}  // namespace sciprep
