// Unit and property tests for the software binary16 implementation.
#include "sciprep/common/fp16.hpp"

#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>

#include "sciprep/common/rng.hpp"

namespace sciprep {
namespace {

TEST(Fp16, ZeroRoundTrips) {
  EXPECT_EQ(fp32_to_fp16_bits(0.0F), 0x0000u);
  EXPECT_EQ(fp32_to_fp16_bits(-0.0F), 0x8000u);
  EXPECT_EQ(fp16_bits_to_fp32(0x0000u), 0.0F);
  EXPECT_EQ(fp16_bits_to_fp32(0x8000u), -0.0F);
  EXPECT_TRUE(std::signbit(fp16_bits_to_fp32(0x8000u)));
}

TEST(Fp16, KnownValues) {
  EXPECT_EQ(fp32_to_fp16_bits(1.0F), 0x3C00u);
  EXPECT_EQ(fp32_to_fp16_bits(-2.0F), 0xC000u);
  EXPECT_EQ(fp32_to_fp16_bits(65504.0F), 0x7BFFu);  // max half
  EXPECT_EQ(fp32_to_fp16_bits(0.5F), 0x3800u);
  EXPECT_EQ(fp16_bits_to_fp32(0x3C00u), 1.0F);
  EXPECT_EQ(fp16_bits_to_fp32(0x7BFFu), 65504.0F);
  // Smallest positive denormal: 2^-24.
  EXPECT_EQ(fp16_bits_to_fp32(0x0001u), 5.9604644775390625e-08F);
}

TEST(Fp16, InfinityAndOverflow) {
  EXPECT_EQ(fp32_to_fp16_bits(std::numeric_limits<float>::infinity()), 0x7C00u);
  EXPECT_EQ(fp32_to_fp16_bits(-std::numeric_limits<float>::infinity()),
            0xFC00u);
  EXPECT_EQ(fp32_to_fp16_bits(1.0e30F), 0x7C00u);  // overflow -> inf
  EXPECT_EQ(fp32_to_fp16_bits(65536.0F), 0x7C00u);
  // 65520 is exactly halfway between 65504 and 65536 -> rounds to even (inf).
  EXPECT_EQ(fp32_to_fp16_bits(65520.0F), 0x7C00u);
  // Just below halfway stays at max finite.
  EXPECT_EQ(fp32_to_fp16_bits(65519.996F), 0x7BFFu);
}

TEST(Fp16, NanPropagates) {
  const std::uint16_t bits =
      fp32_to_fp16_bits(std::numeric_limits<float>::quiet_NaN());
  EXPECT_TRUE(Half::from_bits(bits).is_nan());
  EXPECT_TRUE(std::isnan(fp16_bits_to_fp32(bits)));
}

TEST(Fp16, RoundToNearestEven) {
  // 1.0 + 2^-11 is exactly halfway between 1.0 and the next half value
  // 1.0009765625; ties-to-even keeps 1.0 (even significand).
  const float halfway = 1.0F + 0x1.0p-11F;
  EXPECT_EQ(fp32_to_fp16_bits(halfway), 0x3C00u);
  // Halfway between 1.0009765625 (odd significand) and 1.001953125 rounds up.
  const float halfway_odd = 1.0009765625F + 0x1.0p-11F;
  EXPECT_EQ(fp32_to_fp16_bits(halfway_odd), 0x3C02u);
}

TEST(Fp16, DenormalsRoundTrip) {
  for (std::uint16_t bits = 1; bits < 0x0400u; ++bits) {
    const float f = fp16_bits_to_fp32(bits);
    EXPECT_EQ(fp32_to_fp16_bits(f), bits) << "denormal bits " << bits;
  }
}

TEST(Fp16, UnderflowToZero) {
  EXPECT_EQ(fp32_to_fp16_bits(1.0e-10F), 0x0000u);
  EXPECT_EQ(fp32_to_fp16_bits(-1.0e-10F), 0x8000u);
  // Exactly half the smallest denormal rounds to even -> zero.
  EXPECT_EQ(fp32_to_fp16_bits(0x1.0p-25F), 0x0000u);
  // Just above half the smallest denormal rounds up to it.
  EXPECT_EQ(fp32_to_fp16_bits(0x1.000002p-25F), 0x0001u);
}

// Property: every half value round-trips exactly through float. This is the
// invariant the decoders rely on when emitting FP16 samples.
TEST(Fp16Property, AllFiniteHalvesRoundTrip) {
  for (std::uint32_t b = 0; b <= 0xFFFFu; ++b) {
    const auto bits = static_cast<std::uint16_t>(b);
    const Half h = Half::from_bits(bits);
    if (h.is_nan()) continue;
    EXPECT_EQ(fp32_to_fp16_bits(fp16_bits_to_fp32(bits)), bits)
        << "half bits " << bits;
  }
}

// Property: conversion error for random normal-range floats is bounded by the
// documented relative epsilon.
TEST(Fp16Property, RelativeErrorBounded) {
  Rng rng(2024);
  for (int i = 0; i < 100000; ++i) {
    const float x =
        static_cast<float>(rng.uniform(-60000.0, 60000.0));
    if (std::abs(x) < kHalfMinNormal) continue;
    const float back = fp16_bits_to_fp32(fp32_to_fp16_bits(x));
    EXPECT_LE(std::abs(back - x), std::abs(x) * kHalfRelativeEps)
        << "x=" << x;
  }
}

// Property: conversion agrees with the reference rounding computed through
// long-double arithmetic for a grid of values spanning denormals to overflow.
TEST(Fp16Property, MonotoneOverPositiveRange) {
  // fp16(x) must be monotone non-decreasing in x.
  Rng rng(7);
  float prev_x = 0.0F;
  std::uint16_t prev_bits = 0;
  for (int i = 0; i < 20000; ++i) {
    const float x = std::exp(static_cast<float>(rng.uniform(-18.0, 11.0)));
    const std::uint16_t bits = fp32_to_fp16_bits(x);
    if (x >= prev_x) {
      EXPECT_GE(bits, prev_bits) << "x=" << x << " prev=" << prev_x;
    } else {
      EXPECT_LE(bits, prev_bits) << "x=" << x << " prev=" << prev_x;
    }
    prev_x = x;
    prev_bits = bits;
  }
}

TEST(Half, ArithmeticThroughFloat) {
  const Half a(1.5F);
  const Half b(2.25F);
  EXPECT_EQ(static_cast<float>(a + b), 3.75F);
  EXPECT_EQ(static_cast<float>(a * b), 3.375F);
  EXPECT_EQ(static_cast<float>(b - a), 0.75F);
}

TEST(Half, Classification) {
  EXPECT_TRUE(Half::from_bits(0x7C01u).is_nan());
  EXPECT_TRUE(Half::from_bits(0x7C00u).is_inf());
  EXPECT_TRUE(Half::from_bits(0x0001u).is_denormal());
  EXPECT_TRUE(Half::from_bits(0x8000u).is_zero());
  EXPECT_TRUE(Half::from_bits(0x8000u).signbit());
  EXPECT_EQ(Half::from_bits(0x0000u), Half::from_bits(0x8000u));
}

}  // namespace
}  // namespace sciprep
