# Perf-regression smoke, driven end to end through the real binaries
# (ctest -L perf). perfbench runs twice at quick settings into one
# BENCH_*.json trajectory, then perfcompare self-compares the latest run
# against the first — two back-to-back runs of identical code on the same
# host must pass the noise-aware gate, or the gate is miscalibrated and will
# cry wolf in CI.
#
# Usage: cmake -DPERFBENCH=<path> -DPERFCOMPARE=<path> -DWORK_DIR=<dir>
#              -P perf_smoke.cmake
if(NOT DEFINED PERFBENCH OR NOT DEFINED PERFCOMPARE OR NOT DEFINED WORK_DIR)
  message(FATAL_ERROR
          "perf_smoke: pass -DPERFBENCH=... -DPERFCOMPARE=... -DWORK_DIR=...")
endif()

file(MAKE_DIRECTORY ${WORK_DIR})
set(trajectory ${WORK_DIR}/BENCH_smoke.json)
file(REMOVE ${trajectory})

# Quick settings: small workloads, two repeats. The overhead probes' declared
# noise floors absorb the extra run-to-run wobble this buys.
set(bench_args
  --out ${trajectory} --repeat 2 --warmup 1 --epochs 2
  --cosmo-dim 16 --cam-h 64 --cam-w 96)

foreach(pass RANGE 1 2)
  execute_process(
    COMMAND ${PERFBENCH} ${bench_args} --label smoke-${pass}
    WORKING_DIRECTORY ${WORK_DIR}
    RESULT_VARIABLE rc)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "perfbench pass ${pass} failed (rc=${rc})")
  endif()
endforeach()

execute_process(
  COMMAND ${PERFCOMPARE} --trajectory ${trajectory}
  WORKING_DIRECTORY ${WORK_DIR}
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE table)
message(STATUS "perfcompare output:\n${table}")
if(NOT rc EQUAL 0)
  message(FATAL_ERROR
          "identical back-to-back runs must pass the gate (rc=${rc})")
endif()
if(NOT table MATCHES "perfcompare: 0 regressed")
  message(FATAL_ERROR "summary line missing or nonzero regressions:\n${table}")
endif()
