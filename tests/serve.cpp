// Tests for sciprep::serve: admission control with watermark hysteresis,
// graceful overload degradation, the shared decoded-sample cache (LRU,
// per-tenant quotas, bit-transparency), weighted-fair scheduling on the
// shared pool, tenant fault isolation (skip-policy chaos and eviction both
// leave co-tenants' streams bit-identical), and session leases with
// checkpointed suspend + bit-identical reattach.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "sciprep/codec/cam_codec.hpp"
#include "sciprep/common/error.hpp"
#include "sciprep/common/threadpool.hpp"
#include "sciprep/data/cam_gen.hpp"
#include "sciprep/fault/fault.hpp"
#include "sciprep/pipeline/pipeline.hpp"
#include "sciprep/serve/cache.hpp"
#include "sciprep/serve/service.hpp"

namespace sciprep::serve {
namespace {

using pipeline::Batch;
using pipeline::InMemoryDataset;
using pipeline::StorageFormat;

constexpr std::size_t kSamples = 16;
constexpr int kBatch = 4;

/// A small encoded cam dataset plus a private registry per service, so
/// concurrent tests never share serve.* counters.
struct ServeRig {
  explicit ServeRig(std::size_t n = kSamples) {
    data::CamGenConfig cfg;
    cfg.height = 8;
    cfg.width = 8;
    cfg.channels = 4;
    cfg.seed = 11;
    gen.emplace(cfg);
    dataset.emplace(
        InMemoryDataset::make_cam(*gen, n, StorageFormat::kEncoded, &codec));
  }

  [[nodiscard]] ServiceConfig config() {
    ServiceConfig cfg;
    cfg.worker_threads = 2;
    cfg.metrics = &registry;
    // The suite's isolation and reattach proofs all rest on stream digests.
    cfg.verify_stream = true;
    return cfg;
  }

  [[nodiscard]] static TenantSpec tenant(const std::string& name,
                                         std::uint64_t seed,
                                         std::uint64_t epochs = 1) {
    TenantSpec spec;
    spec.name = name;
    spec.epochs = epochs;
    spec.pipeline.batch_size = kBatch;
    spec.pipeline.seed = seed;
    spec.pipeline.prefetch = true;
    spec.pipeline.ops.push_back(std::make_shared<pipeline::RandomFlipX>());
    return spec;
  }

  std::optional<data::CamGenerator> gen;
  codec::CamCodec codec;
  obs::MetricsRegistry registry;
  std::optional<InMemoryDataset> dataset;
};

/// Drain a session to completion; returns delivered batches.
std::uint64_t drain(DataService& service, int session) {
  Batch batch;
  std::uint64_t batches = 0;
  while (service.next_batch(session, batch)) ++batches;
  return batches;
}

std::string scratch_dir(const std::string& tag) {
  const std::string dir =
      (std::filesystem::temp_directory_path() / ("sciprep_serve_" + tag))
          .string();
  std::filesystem::remove_all(dir);
  return dir;
}

// --- Admission control + overload shedding ---------------------------------

TEST(ServeAdmission, WatermarksShedDeterministicallyWithHysteresis) {
  ServeRig rig;
  ServiceConfig cfg = rig.config();
  // Budget = two full-service sessions. With the default 0.75/0.5
  // watermarks: t0 admitted (0.5), t1 crosses 0.75 -> shedding, fits
  // degraded, t2 fits degraded exactly, t3 rejected.
  DataService probe_svc(*rig.dataset, rig.codec, cfg);
  const std::uint64_t full = static_cast<std::uint64_t>(kBatch) *
                             probe_svc.probe_sample_bytes() * 2;
  cfg.limits.max_inflight_bytes = 2 * full;
  DataService service(*rig.dataset, rig.codec, cfg);

  const auto t0 = service.open_session(ServeRig::tenant("t0", 1));
  const auto t1 = service.open_session(ServeRig::tenant("t1", 2));
  const auto t2 = service.open_session(ServeRig::tenant("t2", 3));
  const auto t3 = service.open_session(ServeRig::tenant("t3", 4));
  EXPECT_EQ(t0.admission, Admission::kAdmitted);
  EXPECT_EQ(t1.admission, Admission::kDegraded);
  EXPECT_EQ(t2.admission, Admission::kDegraded);
  EXPECT_EQ(t3.admission, Admission::kRejected);
  EXPECT_EQ(t3.session, -1);
  EXPECT_TRUE(service.shedding());
  EXPECT_EQ(rig.registry.counter_value("serve.sessions_admitted_total"), 1u);
  EXPECT_EQ(rig.registry.counter_value("serve.sessions_degraded_total"), 2u);
  EXPECT_EQ(rig.registry.counter_value("serve.sessions_rejected_total"), 1u);

  // Hysteresis: closing t0 leaves the ratio at exactly the recover
  // watermark (0.5), which is NOT below it — still shedding. Closing a
  // degraded session drops below and clears.
  drain(service, t0.session);
  service.close_session(t0.session);
  EXPECT_TRUE(service.shedding());
  drain(service, t1.session);
  service.close_session(t1.session);
  EXPECT_FALSE(service.shedding());

  // Below the degrade watermark again, a retried tenant gets full service.
  const auto t4 = service.open_session(ServeRig::tenant("t3", 4));
  EXPECT_EQ(t4.admission, Admission::kAdmitted);
}

TEST(ServeAdmission, RosterFullRejectsAndNamesMustBeUnique) {
  ServeRig rig;
  ServiceConfig cfg = rig.config();
  cfg.limits.max_tenants = 1;
  cfg.limits.max_inflight_bytes = 0;  // unlimited bytes: only the roster caps
  DataService service(*rig.dataset, rig.codec, cfg);

  const auto a = service.open_session(ServeRig::tenant("a", 1));
  EXPECT_EQ(a.admission, Admission::kAdmitted);
  EXPECT_EQ(service.open_session(ServeRig::tenant("b", 2)).admission,
            Admission::kRejected);
  EXPECT_THROW((void)service.open_session(ServeRig::tenant("a", 1)),
               ConfigError);
  drain(service, a.session);
  service.close_session(a.session);
  // The slot is free again, and a terminal name may be reused.
  EXPECT_EQ(service.open_session(ServeRig::tenant("a", 1)).admission,
            Admission::kAdmitted);
}

TEST(ServeAdmission, SessionLifecycleIsValidated) {
  ServeRig rig;
  DataService service(*rig.dataset, rig.codec, rig.config());
  Batch batch;
  EXPECT_THROW((void)service.next_batch(0, batch), ConfigError);
  EXPECT_THROW(service.close_session(7), ConfigError);
  EXPECT_THROW((void)service.reattach("nobody"), ConfigError);

  const auto a = service.open_session(ServeRig::tenant("a", 1));
  drain(service, a.session);
  service.close_session(a.session);
  EXPECT_THROW(service.close_session(a.session), ConfigError);
  EXPECT_THROW((void)service.next_batch(a.session, batch), ConfigError);
  EXPECT_THROW((void)service.reattach("a"), ConfigError);  // closed ≠ suspended
}

// --- Shared decoded-sample cache -------------------------------------------

TEST(ServeCache, SecondTenantHitsTheFirstTenantsDecodes) {
  ServeRig rig;
  ServiceConfig cfg = rig.config();
  cfg.cache.capacity_bytes = 8ull << 20;
  DataService service(*rig.dataset, rig.codec, cfg);

  const auto a = service.open_session(ServeRig::tenant("a", 1));
  const auto b = service.open_session(ServeRig::tenant("b", 9));
  drain(service, a.session);
  drain(service, b.session);
  // The cache holds pre-augmentation decode output, so tenant b (different
  // seed, different shuffle and flips) still reuses every one of tenant a's
  // decodes.
  EXPECT_GE(rig.registry.counter_value("serve.cache.hits_total"), kSamples);
  EXPECT_LE(rig.registry.counter_value("serve.cache.misses_total"),
            kSamples + 2 * kBatch);  // prefetch may race its own inserts
  service.close_session(a.session);
  service.close_session(b.session);
}

TEST(ServeCache, CachedStreamIsBitIdenticalToUncached) {
  ServeRig rig;
  std::uint32_t uncached = 0;
  {
    ServiceConfig cfg = rig.config();
    cfg.cache.capacity_bytes = 0;  // cache off
    DataService service(*rig.dataset, rig.codec, cfg);
    const auto a = service.open_session(ServeRig::tenant("a", 1, 2));
    drain(service, a.session);
    uncached = service.digest(a.session).stream_digest();
  }
  ServiceConfig cfg = rig.config();
  cfg.cache.capacity_bytes = 8ull << 20;
  DataService service(*rig.dataset, rig.codec, cfg);
  // A co-resident tenant warms the cache with ITS decodes before tenant a
  // runs a single batch: every one of a's samples is a cache hit, and the
  // stream must still be bit-identical to the uncached run.
  const auto warm = service.open_session(ServeRig::tenant("warm", 5));
  drain(service, warm.session);
  const auto a = service.open_session(ServeRig::tenant("a", 1, 2));
  drain(service, a.session);
  EXPECT_GT(rig.registry.counter_value("serve.cache.hits_total"), 0u);
  EXPECT_EQ(service.digest(a.session).stream_digest(), uncached);
}

TEST(ServeCache, LruEvictsAndQuotaBoundsATenant) {
  codec::TensorF16 tensor;
  tensor.shape = {64};
  tensor.values.assign(64, Half(1.0F));
  const std::uint64_t one = tensor_bytes(tensor);

  obs::MetricsRegistry reg;
  CacheConfig cfg;
  cfg.capacity_bytes = 3 * one;
  cfg.per_tenant_quota_bytes = 2 * one;
  cfg.metrics = &reg;
  SampleCache cache(cfg);

  // Tenant 1 caps out at its quota, not the capacity.
  cache.insert(0, 0, 1, tensor);
  cache.insert(0, 1, 1, tensor);
  cache.insert(0, 2, 1, tensor);
  EXPECT_EQ(cache.entry_count(), 2u);
  EXPECT_EQ(cache.tenant_bytes(1), 2 * one);
  EXPECT_EQ(reg.counter_value("serve.cache.quota_rejected_total"), 1u);

  // Tenant 2 fills the third slot; one more evicts the LRU entry (0,0).
  cache.insert(0, 3, 2, tensor);
  cache.insert(0, 4, 2, tensor);
  EXPECT_EQ(cache.entry_count(), 3u);
  EXPECT_EQ(reg.counter_value("serve.cache.evictions_total"), 1u);
  codec::TensorF16 out;
  EXPECT_FALSE(cache.lookup(0, 0, out));
  EXPECT_TRUE(cache.lookup(0, 1, out));
  EXPECT_EQ(out.values.size(), 64u);

  // drop_tenant frees exactly that tenant's bytes.
  cache.drop_tenant(2);
  EXPECT_EQ(cache.tenant_bytes(2), 0u);
  EXPECT_EQ(cache.entry_count(), 1u);
  EXPECT_EQ(cache.resident_bytes(), one);
}

// --- Weighted-fair scheduling on the shared pool ---------------------------

TEST(ServeFairness, StrideSchedulingHonoursClassWeights) {
  // One worker so dispatch order IS completion order. A gate task holds the
  // worker while both classes queue up behind it.
  ThreadPool pool(1);
  std::mutex gate;
  gate.lock();
  pool.submit([&gate] { const std::lock_guard hold(gate); }, /*key=*/0);

  std::mutex order_mutex;
  std::vector<int> order;
  constexpr int kPerClass = 12;
  for (int i = 0; i < kPerClass; ++i) {
    pool.submit(
        [&order_mutex, &order] {
          const std::lock_guard lock(order_mutex);
          order.push_back(1);
        },
        /*key=*/1, /*weight=*/1);
    pool.submit(
        [&order_mutex, &order] {
          const std::lock_guard lock(order_mutex);
          order.push_back(3);
        },
        /*key=*/2, /*weight=*/3);
  }
  gate.unlock();
  pool.wait_idle();

  ASSERT_EQ(order.size(), 2u * kPerClass);
  // While both classes are backlogged, the weight-3 class must run ~3x as
  // often: in the first 12 dispatches it owns at least 8 slots.
  int heavy = 0;
  for (int i = 0; i < kPerClass; ++i) heavy += order[i] == 3 ? 1 : 0;
  EXPECT_GE(heavy, 8) << "weight-3 class got " << heavy << " of the first "
                      << kPerClass << " dispatch slots";
}

// --- Tenant fault isolation ------------------------------------------------

TEST(ServeIsolation, FaultyCoTenantLeavesTheStreamBitIdentical) {
  ServeRig rig;
  std::uint32_t solo = 0;
  {
    DataService service(*rig.dataset, rig.codec, rig.config());
    const auto a = service.open_session(ServeRig::tenant("a", 1, 2));
    drain(service, a.session);
    solo = service.digest(a.session).stream_digest();
  }

  fault::Injector injector(77);
  injector.configure(fault::Site::kCodecDecode, {.corrupt_probability = 0.5});
  DataService service(*rig.dataset, rig.codec, rig.config());
  const auto a = service.open_session(ServeRig::tenant("a", 1, 2));
  TenantSpec chaos = ServeRig::tenant("chaos", 2, 2);
  chaos.pipeline.injector = &injector;
  chaos.pipeline.fault_policy.on_corrupt = fault::Action::kSkipSample;
  chaos.pipeline.fault_policy.error_budget = 1u << 20;
  const auto c = service.open_session(std::move(chaos));

  // Interleave the two consumers batch for batch on the shared pool.
  Batch batch;
  bool a_live = true;
  bool c_live = true;
  while (a_live || c_live) {
    if (a_live && !service.next_batch(a.session, batch)) a_live = false;
    if (c_live && !service.next_batch(c.session, batch)) c_live = false;
  }
  const obs::MetricsRegistry& chaos_reg = service.tenant_metrics(c.session);
  EXPECT_GT(chaos_reg.counter_value("pipeline.samples_skipped_total"), 0u);
  EXPECT_EQ(service.tenant_metrics(a.session)
                .counter_value("pipeline.samples_skipped_total"),
            0u);
  EXPECT_EQ(service.digest(a.session).stream_digest(), solo);
}

TEST(ServeIsolation, EscalationEvictsOnlyTheOffender) {
  ServeRig rig;
  fault::Injector injector(77);
  injector.configure(fault::Site::kCodecDecode, {.corrupt_probability = 1.0});
  DataService service(*rig.dataset, rig.codec, rig.config());

  const auto a = service.open_session(ServeRig::tenant("a", 1));
  TenantSpec doomed = ServeRig::tenant("doomed", 2);
  doomed.pipeline.injector = &injector;  // default policy: kFail
  const auto d = service.open_session(std::move(doomed));

  Batch batch;
  EXPECT_THROW((void)service.next_batch(d.session, batch), Error);
  EXPECT_EQ(service.session_state(d.session), SessionState::kEvicted);
  EXPECT_EQ(rig.registry.counter_value("serve.sessions_evicted_total"), 1u);
  // Terminal: the evicted session cannot be consumed or reattached.
  EXPECT_THROW((void)service.next_batch(d.session, batch), ConfigError);
  EXPECT_THROW((void)service.reattach("doomed"), ConfigError);

  // The co-tenant is untouched and completes exactly.
  drain(service, a.session);
  EXPECT_EQ(service.tenant_metrics(a.session)
                .counter_value("pipeline.samples_total"),
            kSamples);
  service.close_session(a.session);
  EXPECT_EQ(service.committed_bytes(), 0u);
}

// --- Session leases + crash recovery ---------------------------------------

TEST(ServeLease, DeadConsumerIsSweptAndReattachesBitIdentically) {
  ServeRig rig;
  std::uint32_t uninterrupted = 0;
  {
    DataService service(*rig.dataset, rig.codec, rig.config());
    const auto a = service.open_session(ServeRig::tenant("a", 1, 2));
    drain(service, a.session);
    uninterrupted = service.digest(a.session).stream_digest();
  }

  ServiceConfig cfg = rig.config();
  cfg.lease_deadline_seconds = 0.05;
  DataService service(*rig.dataset, rig.codec, cfg);
  const auto a = service.open_session(ServeRig::tenant("a", 1, 2));
  Batch batch;
  ASSERT_TRUE(service.next_batch(a.session, batch));
  ASSERT_TRUE(service.next_batch(a.session, batch));

  // The consumer "dies": no more beats until the sweep declares it lost.
  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  const std::vector<std::string> lost = service.sweep_leases();
  ASSERT_EQ(lost.size(), 1u);
  EXPECT_EQ(lost[0], "a");
  EXPECT_EQ(service.session_state(a.session), SessionState::kSuspended);
  EXPECT_EQ(service.committed_bytes(), 0u);
  EXPECT_THROW((void)service.next_batch(a.session, batch), ConfigError);

  const auto re = service.reattach("a");
  EXPECT_EQ(re.session, a.session);  // same session id, same digest
  EXPECT_NE(re.admission, Admission::kRejected);
  drain(service, re.session);
  service.close_session(re.session);
  EXPECT_EQ(service.digest(a.session).stream_digest(), uninterrupted);
  EXPECT_EQ(service.tenant_metrics(a.session)
                .counter_value("pipeline.samples_total"),
            2 * kSamples);  // exact-once across the suspend
  EXPECT_EQ(rig.registry.counter_value("serve.sessions_suspended_total"), 1u);
  EXPECT_EQ(rig.registry.counter_value("serve.sessions_reattached_total"), 1u);
}

TEST(ServeLease, SuspendCheckpointsToDiskAndReattachProvesTheRoundTrip) {
  ServeRig rig;
  const std::string dir = scratch_dir("lease_ckpt");
  ServiceConfig cfg = rig.config();
  cfg.lease_deadline_seconds = 0.05;
  cfg.checkpoint_dir = dir;
  DataService service(*rig.dataset, rig.codec, cfg);

  const auto a = service.open_session(ServeRig::tenant("a", 1, 2));
  Batch batch;
  ASSERT_TRUE(service.next_batch(a.session, batch));
  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  ASSERT_EQ(service.sweep_leases().size(), 1u);
  EXPECT_TRUE(std::filesystem::exists(dir + "/a.ckpt"));

  const auto re = service.reattach("a");
  ASSERT_NE(re.admission, Admission::kRejected);
  drain(service, re.session);
  EXPECT_EQ(service.tenant_metrics(re.session)
                .counter_value("pipeline.samples_total"),
            2 * kSamples);
  service.close_session(re.session);
  std::filesystem::remove_all(dir);
}

TEST(ServeLease, LiveConsumersKeepTheirLeases) {
  ServeRig rig;
  ServiceConfig cfg = rig.config();
  cfg.lease_deadline_seconds = 0.5;
  DataService service(*rig.dataset, rig.codec, cfg);
  const auto a = service.open_session(ServeRig::tenant("a", 1, 4));
  Batch batch;
  // Beating via next_batch faster than the deadline: never swept.
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(service.next_batch(a.session, batch));
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    EXPECT_TRUE(service.sweep_leases().empty());
  }
}

}  // namespace
}  // namespace sciprep::serve
