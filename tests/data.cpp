// Tests for the synthetic dataset generators: determinism plus the
// statistical properties (§V of the paper) the codecs rely on.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <unordered_set>

#include "sciprep/common/stats.hpp"
#include "sciprep/data/cam_gen.hpp"
#include "sciprep/data/cosmo_gen.hpp"

namespace sciprep::data {
namespace {

CosmoGenConfig small_cosmo() {
  CosmoGenConfig c;
  c.dim = 32;  // keep tests fast; statistical properties hold at any dim
  c.seed = 42;
  return c;
}

CamGenConfig small_cam() {
  CamGenConfig c;
  c.height = 96;
  c.width = 144;
  c.channels = 16;
  c.seed = 42;
  return c;
}

TEST(CosmoGen, Deterministic) {
  const CosmoGenerator gen(small_cosmo());
  const auto a = gen.generate(3);
  const auto b = gen.generate(3);
  EXPECT_EQ(a.counts, b.counts);
  EXPECT_EQ(a.params, b.params);
}

TEST(CosmoGen, DistinctIndicesDiffer) {
  const CosmoGenerator gen(small_cosmo());
  const auto a = gen.generate(0);
  const auto b = gen.generate(1);
  EXPECT_NE(a.counts, b.counts);
  EXPECT_NE(a.params, b.params);
}

TEST(CosmoGen, ParamsWithinThirtyPercentSpread) {
  const CosmoGenerator gen(small_cosmo());
  const CosmoParams mean{};
  const std::array<float, 4> means = {mean.omega_m, mean.sigma_8, mean.n_s,
                                      mean.h_0};
  for (std::uint64_t i = 0; i < 200; ++i) {
    const auto s = gen.generate(i % 5);  // sample a few
    for (int p = 0; p < 4; ++p) {
      EXPECT_GE(s.params[static_cast<std::size_t>(p)],
                means[static_cast<std::size_t>(p)] * 0.699F);
      EXPECT_LE(s.params[static_cast<std::size_t>(p)],
                means[static_cast<std::size_t>(p)] * 1.301F);
    }
    if (i >= 4) break;
  }
}

TEST(CosmoGen, CountsAreSmallNonNegativeIntegers) {
  const CosmoGenerator gen(small_cosmo());
  const auto s = gen.generate(0);
  std::int32_t max_count = 0;
  for (const auto c : s.counts) {
    ASSERT_GE(c, 0);
    max_count = std::max(max_count, c);
  }
  EXPECT_GT(max_count, 5);       // has dense clusters
  EXPECT_LT(max_count, 100000);  // but counts stay "small integers"
}

// §V.B property: unique values per sample in the order of hundreds.
TEST(CosmoGen, FewUniqueValues) {
  const CosmoGenerator gen(small_cosmo());
  const auto s = gen.generate(1);
  std::set<std::int32_t> unique(s.counts.begin(), s.counts.end());
  EXPECT_GE(unique.size(), 20u);
  EXPECT_LE(unique.size(), 2000u);  // paper: "few hundreds" at 128^3
}

// §V.B property: value frequencies follow a power law (negative log-log
// slope) — most voxels near-empty, rare dense clusters.
TEST(CosmoGen, PowerLawFrequency) {
  const CosmoGenerator gen(small_cosmo());
  const auto s = gen.generate(2);
  FrequencyTable table;
  for (const auto c : s.counts) table.add(c);
  const double slope = table.power_law_slope(40);
  EXPECT_LT(slope, -0.8);  // clearly decaying
}

// §V.B property: redshift channels are coupled — the number of unique
// groups-of-4 is orders of magnitude below the combinatorial bound.
TEST(CosmoGen, RedshiftGroupsAreCoupled) {
  const CosmoGenerator gen(small_cosmo());
  const auto s = gen.generate(3);
  std::set<std::int32_t> unique(s.counts.begin(), s.counts.end());
  std::unordered_set<std::uint64_t> groups;
  for (std::size_t v = 0; v < s.counts.size(); v += 4) {
    std::uint64_t key = 0;
    for (int r = 0; r < 4; ++r) {
      key = key * 131071 + static_cast<std::uint64_t>(s.counts[v + r]);
    }
    groups.insert(key);
  }
  const double combinatorial = std::pow(static_cast<double>(unique.size()), 4);
  EXPECT_LT(static_cast<double>(groups.size()), combinatorial / 50.0);
  // And small enough to index with 16-bit keys scaled to this volume — at
  // 128^3 the paper reports ~37k groups for 558 unique values.
  EXPECT_LT(groups.size(), s.voxel_count());
}

// Later redshifts are more clustered: the variance/mean ratio of counts grows.
TEST(CosmoGen, ProgressiveClustering) {
  const CosmoGenerator gen(small_cosmo());
  const auto s = gen.generate(4);
  std::array<RunningStats, 4> stats;
  for (std::size_t v = 0; v < s.counts.size(); v += 4) {
    for (int r = 0; r < 4; ++r) {
      stats[static_cast<std::size_t>(r)].add(s.counts[v + r]);
    }
  }
  const double early = stats[0].variance() / std::max(0.1, stats[0].mean());
  const double late = stats[3].variance() / std::max(0.1, stats[3].mean());
  EXPECT_GT(late, early * 1.5);
}

TEST(CosmoGen, RejectsNonPowerOfTwoDim) {
  CosmoGenConfig c;
  c.dim = 100;
  EXPECT_THROW(CosmoGenerator{c}, ConfigError);
}

TEST(CamGen, Deterministic) {
  const CamGenerator gen(small_cam());
  const auto a = gen.generate(7);
  const auto b = gen.generate(7);
  EXPECT_EQ(a.image, b.image);
  EXPECT_EQ(a.labels, b.labels);
}

TEST(CamGen, ShapesMatchConfig) {
  const CamGenerator gen(small_cam());
  const auto s = gen.generate(0);
  EXPECT_EQ(s.height, 96);
  EXPECT_EQ(s.width, 144);
  EXPECT_EQ(s.channels, 16);
  EXPECT_EQ(s.image.size(), s.value_count());
  EXPECT_EQ(s.labels.size(), s.pixel_count());
}

TEST(CamGen, ChannelsHavePhysicalRanges) {
  const CamGenerator gen(small_cam());
  const auto s = gen.generate(1);
  // Sea-level pressure (channel 7) must live near 1e5 Pa, temperature
  // channels near 250-310 K: magnitudes differ by orders of magnitude.
  RunningStats psl;
  RunningStats t500;
  for (int y = 0; y < s.height; ++y) {
    for (int x = 0; x < s.width; ++x) {
      psl.add(s.at(7, y, x));
      t500.add(s.at(9, y, x));
    }
  }
  EXPECT_GT(psl.mean(), 9.0e4);
  EXPECT_LT(psl.mean(), 1.1e5);
  EXPECT_GT(t500.mean(), 230.0);
  EXPECT_LT(t500.mean(), 290.0);
}

// §V.A property: the x-direction is the smoothest — mean |dv/dx| well below
// mean |dv/dy|.
TEST(CamGen, SmoothestAlongX) {
  const CamGenerator gen(small_cam());
  const auto s = gen.generate(2);
  double dx_sum = 0;
  double dy_sum = 0;
  std::size_t n = 0;
  for (int c = 0; c < s.channels; ++c) {
    const ChannelSpec& spec = channel_spec(c);
    for (int y = 1; y < s.height - 1; ++y) {
      for (int x = 1; x < s.width - 1; ++x) {
        dx_sum += std::abs(s.at(c, y, x + 1) - s.at(c, y, x)) / spec.scale;
        dy_sum += std::abs(s.at(c, y + 1, x) - s.at(c, y, x)) / spec.scale;
        ++n;
      }
    }
  }
  EXPECT_LT(dx_sum / n, dy_sum / n * 0.8);
}

TEST(CamGen, LabelsMarkAnomalies) {
  const CamGenerator gen(small_cam());
  // Find a sample with at least one cyclone.
  for (std::uint64_t i = 0; i < 20; ++i) {
    const auto s = gen.generate(i);
    std::size_t cyclone_pixels = 0;
    std::size_t river_pixels = 0;
    for (const auto l : s.labels) {
      cyclone_pixels += (l == 1);
      river_pixels += (l == 2);
    }
    if (cyclone_pixels == 0) continue;
    // Labels are rare (extreme events): < 30% of pixels.
    EXPECT_LT(cyclone_pixels + river_pixels, s.pixel_count() * 3 / 10);
    return;
  }
  FAIL() << "no cyclone in 20 samples (rate too low?)";
}

// The anomaly must perturb the field: gradient energy inside labelled
// regions exceeds the background (that is what the segmentation net learns,
// and why the codec leaves those lines raw).
TEST(CamGen, AnomaliesAreAbrupt) {
  const CamGenerator gen(small_cam());
  for (std::uint64_t i = 0; i < 20; ++i) {
    const auto s = gen.generate(i);
    double grad_in = 0;
    double grad_out = 0;
    std::size_t n_in = 0;
    std::size_t n_out = 0;
    const int c = 7;  // PSL: strong anomaly gain
    const ChannelSpec& spec = channel_spec(c);
    for (int y = 0; y < s.height; ++y) {
      for (int x = 0; x + 1 < s.width; ++x) {
        const double g =
            std::abs(s.at(c, y, x + 1) - s.at(c, y, x)) / spec.scale;
        if (s.labels[static_cast<std::size_t>(y) * s.width + x] == 1) {
          grad_in += g;
          ++n_in;
        } else {
          grad_out += g;
          ++n_out;
        }
      }
    }
    if (n_in < 100) continue;
    EXPECT_GT(grad_in / n_in, 2.0 * grad_out / n_out);
    return;
  }
  FAIL() << "no labelled sample found";
}

TEST(CamGen, RejectsDegenerateConfig) {
  CamGenConfig c;
  c.height = 4;
  EXPECT_THROW(CamGenerator{c}, ConfigError);
}

}  // namespace
}  // namespace sciprep::data
