// Parameterized property sweeps across module boundaries: codec option
// matrices, compression-content interactions, and step-model monotonicity
// invariants. These guard the *relationships* the figures depend on.
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "sciprep/codec/cam_codec.hpp"
#include "sciprep/codec/cosmo_codec.hpp"
#include "sciprep/common/rng.hpp"
#include "sciprep/compress/gzip.hpp"
#include "sciprep/data/cam_gen.hpp"
#include "sciprep/data/cosmo_gen.hpp"
#include "sciprep/sim/stepmodel.hpp"

namespace sciprep {
namespace {

// ---------------------------------------------------------------------------
// CosmoFlow codec option matrix: every combination must round-trip exactly.
// ---------------------------------------------------------------------------
class CosmoOptionMatrix
    : public ::testing::TestWithParam<std::tuple<bool, bool, std::uint32_t>> {};

TEST_P(CosmoOptionMatrix, RoundTripsExactly) {
  codec::CosmoEncodeOptions opt;
  opt.fuse_log1p = std::get<0>(GetParam());
  opt.rle = std::get<1>(GetParam());
  opt.max_groups_per_block = std::get<2>(GetParam());

  data::CosmoGenConfig cfg;
  cfg.dim = 16;
  cfg.seed = 1234;
  const auto sample = data::CosmoGenerator(cfg).generate(1);
  const codec::CosmoCodec codec(opt);
  const auto decoded = codec.decode_sample_cpu(codec.encode_sample(sample));
  for (std::size_t i = 0; i < sample.counts.size(); ++i) {
    const float x = static_cast<float>(sample.counts[i]);
    const Half want(opt.fuse_log1p ? std::log1p(x) : x);
    ASSERT_EQ(decoded.values[i].bits(), want.bits()) << "value " << i;
  }
  // GPU decode agrees under every option set too.
  sim::SimGpu gpu({.sm_count = 4, .warps_per_sm = 2});
  const auto on_gpu =
      codec.decode_sample_gpu(codec.encode_sample(sample), gpu);
  for (std::size_t i = 0; i < decoded.values.size(); ++i) {
    ASSERT_EQ(on_gpu.values[i].bits(), decoded.values[i].bits());
  }
}

INSTANTIATE_TEST_SUITE_P(
    Options, CosmoOptionMatrix,
    ::testing::Combine(::testing::Bool(), ::testing::Bool(),
                       ::testing::Values<std::uint32_t>(64, 4096, 65536)));

// ---------------------------------------------------------------------------
// DeepCAM codec option matrix: bounded error and GPU/CPU agreement for every
// (normalize, layout, segment cap) combination.
// ---------------------------------------------------------------------------
class CamOptionMatrix
    : public ::testing::TestWithParam<std::tuple<bool, codec::CamLayout, int>> {
};

TEST_P(CamOptionMatrix, BoundedErrorAndPlacementAgreement) {
  codec::CamEncodeOptions eopt;
  eopt.normalize = std::get<0>(GetParam());
  eopt.max_segment_length = std::get<2>(GetParam());
  codec::CamDecodeOptions dopt;
  dopt.layout = std::get<1>(GetParam());

  data::CamGenConfig cfg;
  cfg.height = 32;
  cfg.width = 48;
  cfg.channels = 4;
  cfg.seed = 4321;
  // Without normalization FP16 overflows on 1e5-scale channels; use the
  // bounded channels only by scaling the config down via noise_level (the
  // generator still emits physical magnitudes, so skip normalize=false with
  // the pressure channels by remapping channel count to 4: TMQ/U850/V850/
  // UBOT, all < 100 in magnitude).
  const auto sample = data::CamGenerator(cfg).generate(2);
  const codec::CamCodec codec(eopt, dopt);
  const Bytes encoded = codec.encode_sample(sample);
  const auto decoded = codec.decode_sample_cpu(encoded);
  ASSERT_EQ(decoded.values.size(), sample.value_count());
  for (const Half h : decoded.values) {
    ASSERT_FALSE(h.is_nan());
    ASSERT_FALSE(h.is_inf());
  }
  const auto reference = codec::CamCodec::reference_preprocess_sample(
      sample, eopt.normalize, dopt.layout);
  std::vector<float> ref(reference.values.size());
  for (std::size_t i = 0; i < ref.size(); ++i) {
    ref[i] = reference.values[i].to_float();
  }
  EXPECT_LT(codec::fraction_above_rel_error(ref, decoded.values, 0.10), 0.10);

  sim::SimGpu gpu({.sm_count = 4, .warps_per_sm = 2});
  const auto on_gpu = codec.decode_sample_gpu(encoded, gpu);
  for (std::size_t i = 0; i < decoded.values.size(); ++i) {
    ASSERT_EQ(on_gpu.values[i].bits(), decoded.values[i].bits());
  }
}

INSTANTIATE_TEST_SUITE_P(
    Options, CamOptionMatrix,
    ::testing::Combine(::testing::Values(true),  // normalize (false overflows FP16 on physical channels by design)
                       ::testing::Values(codec::CamLayout::kCHW,
                                         codec::CamLayout::kHWC),
                       ::testing::Values(32, 256, 1024)));

// ---------------------------------------------------------------------------
// DEFLATE content-type sweep: ratio ordering must hold (constant < text <
// float-counts < random) and every payload round-trips at every level.
// ---------------------------------------------------------------------------
class DeflateContentSweep
    : public ::testing::TestWithParam<compress::DeflateLevel> {};

TEST_P(DeflateContentSweep, RatioOrderingByEntropy) {
  const auto level = GetParam();
  Rng rng(5150);
  const std::size_t n = 60000;

  Bytes constant(n, 0x42);
  Bytes counts(n);
  for (auto& b : counts) {
    b = static_cast<std::uint8_t>(rng.poisson(2.0));  // low-entropy ints
  }
  Bytes random(n);
  for (auto& b : random) b = static_cast<std::uint8_t>(rng.next_u64());

  auto ratio = [&](const Bytes& data) {
    const Bytes packed = compress::deflate(data, level);
    EXPECT_EQ(compress::inflate(packed, data.size()), data);
    return static_cast<double>(data.size()) /
           static_cast<double>(packed.size());
  };
  const double r_const = ratio(constant);
  const double r_counts = ratio(counts);
  const double r_random = ratio(random);
  EXPECT_GT(r_const, r_counts);
  EXPECT_GT(r_counts, r_random * 1.5);
  EXPECT_LT(r_random, 1.1);  // incompressible stays ~1
  EXPECT_GT(r_const, 100.0);
}

INSTANTIATE_TEST_SUITE_P(Levels, DeflateContentSweep,
                         ::testing::Values(compress::DeflateLevel::kFast,
                                           compress::DeflateLevel::kDefault,
                                           compress::DeflateLevel::kBest));

// ---------------------------------------------------------------------------
// Step-model monotonicity: the relationships the figures rest on.
// ---------------------------------------------------------------------------
TEST(StepModelProperty, SmallerSamplesNeverSlower) {
  sim::WorkloadProfile big;
  big.bytes_at_rest = 32ull << 20;
  big.bytes_to_device = 32ull << 20;
  big.host_seconds = 50e-3;
  big.model_train_flops = 1e11;
  sim::WorkloadProfile small = big;
  small.bytes_at_rest /= 4;
  small.bytes_to_device /= 4;

  for (const auto& platform : sim::all_platforms()) {
    for (const std::uint64_t n : {1024ull, 16384ull}) {
      for (const bool staged : {false, true}) {
        sim::StepScenario s;
        s.platform = platform;
        s.samples_per_node = n;
        s.staged = staged;
        const double t_big = sim::model_step(s, big).step_seconds();
        const double t_small = sim::model_step(s, small).step_seconds();
        EXPECT_LE(t_small, t_big + 1e-12)
            << platform.name << " n=" << n << " staged=" << staged;
      }
    }
  }
}

TEST(StepModelProperty, MoreWorkersNeverSlower) {
  sim::WorkloadProfile w;
  w.bytes_at_rest = 8ull << 20;
  w.bytes_to_device = 16ull << 20;
  w.host_seconds = 200e-3;
  w.model_train_flops = 1e11;
  sim::StepScenario s;
  s.platform = sim::cori_v100();
  s.samples_per_node = 1024;
  double prev = 1e9;
  for (const int workers : {1, 2, 4, 8}) {
    s.cpu_workers_per_gpu = workers;
    const double t = sim::model_step(s, w).step_seconds();
    EXPECT_LE(t, prev + 1e-12) << "workers " << workers;
    prev = t;
  }
}

TEST(StepModelProperty, LargerBatchAmortizesOverheads) {
  sim::WorkloadProfile w;
  w.bytes_at_rest = 4ull << 20;
  w.bytes_to_device = 4ull << 20;
  w.host_seconds = 1e-3;
  w.model_train_flops = 1e10;
  sim::StepScenario s;
  s.platform = sim::summit();
  s.samples_per_node = 768;
  s.device_overhead_per_batch_seconds = 0.2;
  double prev = 1e9;
  for (const int batch : {1, 2, 4, 8}) {
    s.batch_size = batch;
    const double t = sim::model_step(s, w).step_seconds();
    EXPECT_LT(t, prev) << "batch " << batch;
    prev = t;
  }
}

TEST(StepModelProperty, StagingNeverHurtsSteadyState) {
  sim::WorkloadProfile w;
  w.bytes_at_rest = 16ull << 20;
  w.bytes_to_device = 16ull << 20;
  w.host_seconds = 1e-3;
  w.model_train_flops = 1e10;
  for (const auto& platform : sim::all_platforms()) {
    for (const std::uint64_t n : {512ull, 8192ull, 65536ull}) {
      sim::StepScenario s;
      s.platform = platform;
      s.samples_per_node = n;
      s.staged = false;
      const double unstaged = sim::model_step(s, w).step_seconds();
      s.staged = true;
      const double staged = sim::model_step(s, w).step_seconds();
      EXPECT_LE(staged, unstaged + 1e-12) << platform.name << " n=" << n;
    }
  }
}

// ---------------------------------------------------------------------------
// Generator-vs-codec contract across scales: the codec's key-space never
// overflows a single 16-bit table on volumes up to the benchmark dimension's
// test-scale proxies, so decode stays single-table (the fast path).
// ---------------------------------------------------------------------------
class CosmoScaleSweep : public ::testing::TestWithParam<int> {};

TEST_P(CosmoScaleSweep, SingleTableUpToTestScales) {
  const int dim = GetParam();
  data::CosmoGenConfig cfg;
  cfg.dim = dim;
  cfg.seed = 99;
  const auto sample = data::CosmoGenerator(cfg).generate(0);
  const codec::CosmoCodec codec;
  const auto info = codec::CosmoCodec::inspect(codec.encode_sample(sample));
  EXPECT_EQ(info.block_count, 1u) << "dim " << dim;
  EXPECT_LE(info.total_groups, 65536u);
}

INSTANTIATE_TEST_SUITE_P(Dims, CosmoScaleSweep, ::testing::Values(8, 16, 32, 64));

}  // namespace
}  // namespace sciprep
