// Tests for the workload apps: model construction, trainer behaviour,
// FP32-vs-FP16 input arms, measurement harness, and the step-time model's
// reproduction of the paper's qualitative effects.
#include <gtest/gtest.h>

#include <cmath>

#include "sciprep/apps/measure.hpp"
#include "sciprep/apps/models.hpp"
#include "sciprep/apps/trainer.hpp"
#include "sciprep/codec/cam_codec.hpp"
#include "sciprep/codec/cosmo_codec.hpp"
#include "sciprep/common/error.hpp"
#include "sciprep/data/cam_gen.hpp"
#include "sciprep/data/cosmo_gen.hpp"
#include "sciprep/sim/stepmodel.hpp"

namespace sciprep::apps {
namespace {

TEST(Models, CosmoflowShapes) {
  Rng rng(1);
  auto model = build_cosmoflow_model(16, rng);
  dnn::Tensor input({4, 16, 16, 16});
  const dnn::Tensor out = model->forward(input);
  EXPECT_EQ(out.size(), 4u);
  EXPECT_THROW(build_cosmoflow_model(10, rng), ConfigError);
}

TEST(Models, DeepcamShapes) {
  Rng rng(2);
  auto model = build_deepcam_model(4, rng);
  dnn::Tensor input({4, 8, 12});
  const dnn::Tensor out = model->forward(input);
  EXPECT_EQ(out.shape, (std::vector<std::uint64_t>{3, 8, 12}));
}

TEST(Models, Fp32AndFp16ArmsAreClose) {
  data::CosmoGenConfig cfg;
  cfg.dim = 16;
  cfg.seed = 5;
  const auto sample = data::CosmoGenerator(cfg).generate(0);
  const dnn::Tensor fp32 = cosmo_input_fp32(sample);
  const codec::CosmoCodec codec;
  const dnn::Tensor fp16 = cosmo_input_from_fp16(
      codec.decode_sample_cpu(codec.encode_sample(sample)));
  ASSERT_EQ(fp32.size(), fp16.size());
  for (std::size_t i = 0; i < fp32.size(); ++i) {
    // FP16 quantization of log1p(count) in [0, ~10]: absolute gap < 0.005.
    ASSERT_NEAR(fp32[i], fp16[i], 0.005F) << "value " << i;
  }
}

TEST(Models, CamFp32ArmIsNormalized) {
  data::CamGenConfig cfg;
  cfg.height = 32;
  cfg.width = 48;
  cfg.channels = 4;
  cfg.seed = 6;
  const auto sample = data::CamGenerator(cfg).generate(0);
  const dnn::Tensor input = cam_input_fp32(sample);
  // Per-channel mean ~0, std ~1.
  const std::size_t plane = sample.pixel_count();
  for (int c = 0; c < 4; ++c) {
    double sum = 0;
    double sq = 0;
    for (std::size_t i = 0; i < plane; ++i) {
      const double v = input[static_cast<std::size_t>(c) * plane + i];
      sum += v;
      sq += v * v;
    }
    EXPECT_NEAR(sum / plane, 0.0, 1e-3);
    EXPECT_NEAR(std::sqrt(sq / plane), 1.0, 1e-2);
  }
}

TEST(Trainer, CosmoMiniatureLossDecreases) {
  data::CosmoGenConfig cfg;
  cfg.dim = 16;
  cfg.seed = 7;
  const data::CosmoGenerator gen(cfg);
  std::vector<Example> examples;
  for (std::uint64_t i = 0; i < 8; ++i) {
    const auto sample = gen.generate(i);
    Example ex;
    ex.input = cosmo_input_fp32(sample);
    ex.regression_target.assign(sample.params.begin(), sample.params.end());
    examples.push_back(std::move(ex));
  }
  Rng rng(8);
  auto model = build_cosmoflow_model(16, rng);
  TrainConfig tc;
  tc.batch_size = 2;
  tc.epochs = 6;
  tc.sgd = {.learning_rate = 0.01F, .momentum = 0.9F};
  const TrainResult result = train(*model, examples, tc);
  ASSERT_EQ(result.epoch_losses.size(), 6u);
  EXPECT_LT(result.epoch_losses.back(), result.epoch_losses.front());
}

TEST(Trainer, Fp16AndFp32ConvergenceMatch) {
  // The Fig 6/7 claim in miniature: decoded FP16 inputs must track the FP32
  // baseline loss curve closely under an identical schedule and seed.
  data::CosmoGenConfig cfg;
  cfg.dim = 16;
  cfg.seed = 9;
  const data::CosmoGenerator gen(cfg);
  const codec::CosmoCodec codec;

  auto build_examples = [&](bool fp16) {
    std::vector<Example> examples;
    for (std::uint64_t i = 0; i < 6; ++i) {
      const auto sample = gen.generate(i);
      Example ex;
      ex.input = fp16 ? cosmo_input_from_fp16(codec.decode_sample_cpu(
                            codec.encode_sample(sample)))
                      : cosmo_input_fp32(sample);
      ex.regression_target.assign(sample.params.begin(), sample.params.end());
      examples.push_back(std::move(ex));
    }
    return examples;
  };

  TrainConfig tc;
  tc.batch_size = 2;
  tc.epochs = 4;
  tc.seed = 3;
  tc.sgd = {.learning_rate = 0.01F, .momentum = 0.9F};

  auto fp32_examples = build_examples(false);
  Rng rng_a(10);
  auto model_a = build_cosmoflow_model(16, rng_a);
  const TrainResult base = train(*model_a, fp32_examples, tc);

  auto fp16_examples = build_examples(true);
  Rng rng_b(10);  // identical init
  auto model_b = build_cosmoflow_model(16, rng_b);
  const TrainResult decoded = train(*model_b, fp16_examples, tc);

  // Training is chaotic at the step level (tiny input perturbations grow),
  // so compare the *trajectory* the way the paper's figures do: per-epoch
  // mean losses must track closely, and both arms must descend.
  ASSERT_EQ(base.epoch_losses.size(), decoded.epoch_losses.size());
  for (std::size_t e = 0; e < base.epoch_losses.size(); ++e) {
    // Tolerance: 25% relative plus an absolute floor of ~1% of the initial
    // loss — late epochs sit deep in the noise floor of SGD.
    EXPECT_NEAR(decoded.epoch_losses[e], base.epoch_losses[e],
                0.25 * std::abs(base.epoch_losses[e]) +
                    0.01 * std::abs(base.epoch_losses.front()))
        << "epoch " << e;
  }
  EXPECT_LT(base.epoch_losses.back(), base.epoch_losses.front());
  EXPECT_LT(decoded.epoch_losses.back(), decoded.epoch_losses.front());
  // The very first steps see (almost) identical inputs and identical
  // weights, so they must agree tightly before chaos sets in.
  EXPECT_NEAR(decoded.step_losses.front(), base.step_losses.front(),
              0.02 * std::abs(base.step_losses.front()) + 1e-4);
}

TEST(Trainer, DeepcamSegmentationLearns) {
  data::CamGenConfig cfg;
  cfg.height = 24;
  cfg.width = 32;
  cfg.channels = 4;
  cfg.seed = 11;
  cfg.cyclone_rate = 4.0;  // make sure labels appear at this tiny size
  const data::CamGenerator gen(cfg);
  std::vector<Example> examples;
  for (std::uint64_t i = 0; i < 6; ++i) {
    const auto sample = gen.generate(i);
    Example ex;
    ex.input = cam_input_fp32(sample);
    ex.pixel_labels = sample.labels;
    examples.push_back(std::move(ex));
  }
  Rng rng(12);
  auto model = build_deepcam_model(4, rng);
  TrainConfig tc;
  tc.batch_size = 2;
  tc.epochs = 5;
  tc.sgd = {.learning_rate = 0.05F, .momentum = 0.9F};
  tc.class_weights = {0.2F, 2.0F, 2.0F};
  const TrainResult result = train(*model, examples, tc);
  EXPECT_LT(result.epoch_losses.back(), result.epoch_losses.front());
}

TEST(Measure, CosmoProfilesHaveExpectedStructure) {
  const auto base = measure_cosmo(LoaderConfig::kBaseline, 32, 1, 500);
  const auto gz = measure_cosmo(LoaderConfig::kGzip, 32, 1, 500);
  const auto cpu = measure_cosmo(LoaderConfig::kCpuPlugin, 32, 1, 500);
  const auto gpu = measure_cosmo(LoaderConfig::kGpuPlugin, 32, 1, 500);

  // Storage: gzip and codec both shrink the raw bytes.
  EXPECT_LT(gz.profile.bytes_at_rest, base.profile.bytes_at_rest);
  EXPECT_LT(cpu.profile.bytes_at_rest, base.profile.bytes_at_rest);
  EXPECT_GT(cpu.compression_ratio, 2.0);

  // Transfer payloads: fp32 > fp16 > encoded.
  EXPECT_EQ(base.profile.bytes_to_device, cpu.profile.bytes_to_device * 2);
  EXPECT_LT(gpu.profile.bytes_to_device, cpu.profile.bytes_to_device);

  // Host work: gunzip costs more than the raw baseline; the plugin's CPU
  // decode is cheaper than baseline preprocessing; the GPU plugin leaves the
  // host nearly idle.
  EXPECT_GT(gz.profile.host_seconds, base.profile.host_seconds);
  EXPECT_LT(cpu.profile.host_seconds, base.profile.host_seconds);
  EXPECT_LT(gpu.profile.host_seconds, cpu.profile.host_seconds);
  EXPECT_GT(gpu.profile.gpu_decode_host_seconds, 0.0);
}

TEST(Measure, CamProfilesHaveExpectedStructure) {
  const auto base = measure_cam(LoaderConfig::kBaseline, 96, 144, 16, 1, 501);
  const auto cpu = measure_cam(LoaderConfig::kCpuPlugin, 96, 144, 16, 1, 501);
  const auto gpu = measure_cam(LoaderConfig::kGpuPlugin, 96, 144, 16, 1, 501);
  EXPECT_GT(cpu.compression_ratio, 2.0);
  EXPECT_EQ(base.profile.bytes_to_device, cpu.profile.bytes_to_device * 2);
  EXPECT_LT(gpu.profile.bytes_to_device, cpu.profile.bytes_to_device);
  EXPECT_GT(gpu.profile.gpu_decode_host_seconds, 0.0);
  EXPECT_THROW(measure_cam(LoaderConfig::kGzip, 96, 144, 16, 1, 1), ConfigError);
}

// The paper's qualitative results must fall out of the step model when fed
// measured profiles.
TEST(StepModel, PluginBeatsBaselineAndBaselineIsPcieBound) {
  const auto base = measure_cam(LoaderConfig::kBaseline, 96, 144, 16, 1, 502);
  const auto gpu = measure_cam(LoaderConfig::kGpuPlugin, 96, 144, 16, 1, 502);

  // Scale byte counts to full-size DeepCAM samples so residency decisions
  // match the paper's dataset sizes.
  auto full = [](sim::WorkloadProfile p, double scale) {
    p.bytes_at_rest = static_cast<std::uint64_t>(p.bytes_at_rest * scale);
    p.bytes_to_device = static_cast<std::uint64_t>(p.bytes_to_device * scale);
    p.host_seconds *= scale;
    p.gpu_decode_host_seconds *= scale;
    p.model_train_flops *= scale;
    return p;
  };
  const double scale = (1152.0 * 768 * 16) / (96.0 * 144 * 16);

  sim::StepScenario scenario;
  scenario.platform = sim::cori_a100();
  scenario.samples_per_node = 1536;
  scenario.staged = true;
  scenario.batch_size = 4;

  const auto base_step = sim::model_step(scenario, full(base.profile, scale));
  const auto gpu_step = sim::model_step(scenario, full(gpu.profile, scale));
  const double base_tput = sim::node_samples_per_second(scenario, base_step);
  const double gpu_tput = sim::node_samples_per_second(scenario, gpu_step);
  EXPECT_GT(gpu_tput, base_tput) << "plugin must beat baseline";

  // Baseline V100 vs A100: PCIe-bound, so close throughput (§IX.A).
  sim::StepScenario v100 = scenario;
  v100.platform = sim::cori_v100();
  const auto base_v100 = sim::model_step(v100, full(base.profile, scale));
  const double tput_v100 = sim::node_samples_per_second(v100, base_v100);
  EXPECT_LT(base_tput / tput_v100, 1.6)
      << "baseline must not benefit much from the A100";
}

TEST(StepModel, LargeDatasetUnstagedIsPfsBound) {
  sim::WorkloadProfile p;
  p.bytes_at_rest = 57ull * 1024 * 1024;
  p.bytes_to_device = p.bytes_at_rest;
  p.host_seconds = 1e-3;
  p.model_train_flops = 1e12;

  sim::StepScenario scenario;
  scenario.platform = sim::cori_v100();
  scenario.samples_per_node = 12288;
  scenario.batch_size = 4;
  scenario.staged = false;
  const auto unstaged = sim::model_step(scenario, p);
  EXPECT_EQ(unstaged.residency, sim::Residency::kPfs);
  scenario.staged = true;
  const auto staged = sim::model_step(scenario, p);
  EXPECT_EQ(staged.residency, sim::Residency::kNvme);
  EXPECT_LT(staged.step_seconds(), unstaged.step_seconds());
}

TEST(StepModel, BreakdownComponentsAreConsistent) {
  sim::WorkloadProfile p;
  p.bytes_at_rest = 4 * 1024 * 1024;
  p.bytes_to_device = 8 * 1024 * 1024;
  p.host_seconds = 2e-3;
  p.gpu_decode_host_seconds = 1e-3;
  p.model_train_flops = 2e11;

  sim::StepScenario scenario;
  scenario.platform = sim::summit();
  scenario.samples_per_node = 128 * 6;
  scenario.batch_size = 2;
  const auto b = sim::model_step(scenario, p);
  EXPECT_GT(b.io_read, 0);
  EXPECT_GT(b.host_work, 0);
  EXPECT_GT(b.h2d, 0);
  EXPECT_GT(b.gpu_decode, 0);
  EXPECT_GT(b.gpu_compute, 0);
  EXPECT_GT(b.allreduce, 0);
  EXPECT_GE(b.step_seconds(), b.device_stage() - 1e-12);
  EXPECT_GE(b.step_seconds(), b.host_work);
  EXPECT_GE(b.step_seconds(), b.io_read);
  EXPECT_GT(sim::node_samples_per_second(scenario, b), 0);
}

}  // namespace
}  // namespace sciprep::apps
