// Fuzz-ish robustness tests: bit-flipped and truncated codec payloads fed
// through the CPU and SimGpu decode paths must surface as typed sciprep
// errors — never UB, crashes, or unbounded allocations. The suite is run
// under the asan-ubsan preset (ctest -L fault) to back the "no asan
// findings" half of that claim.
#include <gtest/gtest.h>

#include <cstddef>

#include "sciprep/codec/cam_codec.hpp"
#include "sciprep/codec/cosmo_codec.hpp"
#include "sciprep/common/error.hpp"
#include "sciprep/common/rng.hpp"
#include "sciprep/data/cam_gen.hpp"
#include "sciprep/data/cosmo_gen.hpp"
#include "sciprep/sim/simgpu.hpp"

namespace sciprep::codec {
namespace {

constexpr int kFlipTrials = 150;

Bytes encoded_cosmo() {
  data::CosmoGenConfig cfg;
  cfg.dim = 8;
  cfg.seed = 31;
  const data::CosmoGenerator gen(cfg);
  return CosmoCodec().encode_sample(gen.generate(0));
}

Bytes encoded_cam() {
  data::CamGenConfig cfg;
  cfg.height = 16;
  cfg.width = 24;
  cfg.channels = 2;
  cfg.seed = 32;
  const data::CamGenerator gen(cfg);
  return CamCodec().encode_sample(gen.generate(0));
}

/// Flip 1–4 random bits of `clean` (deterministic per trial).
Bytes flipped(const Bytes& clean, int trial) {
  Rng rng(static_cast<std::uint64_t>(trial) * 0x9E3779B9u + 1);
  Bytes bad = clean;
  const int flips = 1 + static_cast<int>(rng.next_below(4));
  for (int f = 0; f < flips; ++f) {
    const std::size_t at = static_cast<std::size_t>(rng.next_below(bad.size()));
    bad[at] ^= static_cast<std::uint8_t>(1u << rng.next_below(8));
  }
  return bad;
}

/// Decode must either succeed (the flip hit a don't-care bit or produced a
/// self-consistent stream) or throw a typed sciprep::Error. Anything else —
/// a foreign exception, a crash, an asan report — fails the test run.
template <class Decode>
void expect_contained(Decode&& decode, const Bytes& payload,
                      const char* what) {
  try {
    const TensorF16 out = decode(ByteSpan(payload));
    // On success the decode honored some header: the output must be sized
    // self-consistently, not garbage-length.
    EXPECT_FALSE(out.values.empty()) << what;
  } catch (const Error&) {
    // Typed rejection is the expected outcome.
  }
}

TEST(FuzzCosmo, BitFlipsAreContainedOnCpuAndGpu) {
  const Bytes clean = encoded_cosmo();
  const CosmoCodec codec;
  sim::SimGpu gpu({.sm_count = 2, .warps_per_sm = 2});
  for (int trial = 0; trial < kFlipTrials; ++trial) {
    const Bytes bad = flipped(clean, trial);
    expect_contained(
        [&](ByteSpan p) { return codec.decode_sample_cpu(p); }, bad,
        "cosmo cpu");
    expect_contained(
        [&](ByteSpan p) { return codec.decode_sample_gpu(p, gpu); }, bad,
        "cosmo gpu");
  }
}

TEST(FuzzCosmo, EveryStrictPrefixIsRejected) {
  const Bytes clean = encoded_cosmo();
  const CosmoCodec codec;
  sim::SimGpu gpu({.sm_count = 2, .warps_per_sm = 2});
  for (std::size_t len = 0; len < clean.size();
       len += 1 + len / 16) {  // denser near the header, sparser in the body
    const Bytes cut(clean.begin(),
                    clean.begin() + static_cast<std::ptrdiff_t>(len));
    EXPECT_THROW((void)codec.decode_sample_cpu(ByteSpan(cut)), Error)
        << "prefix length " << len;
    EXPECT_THROW((void)codec.decode_sample_gpu(ByteSpan(cut), gpu), Error)
        << "prefix length " << len;
  }
}

TEST(FuzzCam, BitFlipsAreContainedOnCpuAndGpu) {
  const Bytes clean = encoded_cam();
  const CamCodec codec;
  sim::SimGpu gpu({.sm_count = 2, .warps_per_sm = 2});
  for (int trial = 0; trial < kFlipTrials; ++trial) {
    const Bytes bad = flipped(clean, trial);
    expect_contained(
        [&](ByteSpan p) { return codec.decode_sample_cpu(p); }, bad,
        "cam cpu");
    expect_contained(
        [&](ByteSpan p) { return codec.decode_sample_gpu(p, gpu); }, bad,
        "cam gpu");
  }
}

TEST(FuzzCam, EveryStrictPrefixIsRejected) {
  const Bytes clean = encoded_cam();
  const CamCodec codec;
  sim::SimGpu gpu({.sm_count = 2, .warps_per_sm = 2});
  for (std::size_t len = 0; len < clean.size(); len += 1 + len / 16) {
    const Bytes cut(clean.begin(),
                    clean.begin() + static_cast<std::ptrdiff_t>(len));
    EXPECT_THROW((void)codec.decode_sample_cpu(ByteSpan(cut)), Error)
        << "prefix length " << len;
    EXPECT_THROW((void)codec.decode_sample_gpu(ByteSpan(cut), gpu), Error)
        << "prefix length " << len;
  }
}

}  // namespace
}  // namespace sciprep::codec
