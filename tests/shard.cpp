// Tests for sciprep::shard: the deterministic plan (global shuffle +
// balanced partition), the bit-reproducibility property — merged global
// stream digest identical across rank counts {1,2,4,8}, identical to the
// unsharded pipeline, and identical across a killed-and-recovered rank —
// heartbeat-based loss detection, coordinated checkpoint/resume, the
// double-count-safe aggregate, and a corrupted-snapshot fuzz pass through
// read_coordinated/resume (typed errors, never UB).
#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "sciprep/codec/cam_codec.hpp"
#include "sciprep/common/error.hpp"
#include "sciprep/common/rng.hpp"
#include "sciprep/data/cam_gen.hpp"
#include "sciprep/fault/fault.hpp"
#include "sciprep/guard/snapshot.hpp"
#include "sciprep/pipeline/pipeline.hpp"
#include "sciprep/shard/coordinator.hpp"
#include "sciprep/shard/digest.hpp"
#include "sciprep/shard/heartbeat.hpp"
#include "sciprep/shard/plan.hpp"

namespace sciprep::shard {
namespace {

using pipeline::InMemoryDataset;
using pipeline::StorageFormat;

constexpr std::size_t kSamples = 48;
constexpr int kEpochs = 2;

/// A cam dataset rig: RandomFlipX makes the augmentation RNG load-bearing —
/// the digest-invariance tests fail if per-sample randomness is keyed by
/// anything rank- or position-dependent.
struct ShardRig {
  explicit ShardRig(std::size_t n = kSamples) {
    data::CamGenConfig cfg;
    cfg.height = 8;
    cfg.width = 8;
    cfg.channels = 4;
    cfg.seed = 11;
    gen.emplace(cfg);
    dataset.emplace(
        InMemoryDataset::make_cam(*gen, n, StorageFormat::kEncoded, &codec));
  }

  [[nodiscard]] ShardConfig config(int world) const {
    ShardConfig cfg;
    cfg.world = world;
    cfg.pipeline.batch_size = 4;
    cfg.pipeline.worker_threads = 2;
    cfg.pipeline.seed = 5;
    cfg.pipeline.ops.push_back(std::make_shared<pipeline::RandomFlipX>());
    cfg.verify_stream = true;
    cfg.heartbeat_deadline_seconds = 0.05;
    return cfg;
  }

  std::optional<data::CamGenerator> gen;
  codec::CamCodec codec;
  std::optional<InMemoryDataset> dataset;
};

/// Drive `coordinator` through epochs [first_epoch, kEpochs), collecting
/// every delivery into `out` (epoch -> position -> crc) when given.
void drain(ShardCoordinator& coordinator, int first_epoch = 0,
           std::map<std::uint64_t, std::map<std::uint64_t, std::uint32_t>>*
               out = nullptr) {
  for (int epoch = first_epoch; epoch < kEpochs; ++epoch) {
    if (epoch > 0 &&
        coordinator.epoch() != static_cast<std::uint64_t>(epoch)) {
      coordinator.start_epoch(static_cast<std::uint64_t>(epoch));
    }
    ShardBatch sb;
    while (coordinator.step(sb)) {
      if (out == nullptr) continue;
      for (std::size_t i = 0; i < sb.batch.samples.size(); ++i) {
        (*out)[sb.batch.epoch][sb.global_positions[i]] =
            sample_crc(sb.batch.samples[i]);
      }
    }
  }
}

/// Matches the coordinator's rank-site operation key (coordinator.cpp): the
/// probing helpers below enumerate the same key space to find seeds whose
/// fault draws hit exactly one rank.
std::uint64_t rank_op(std::uint64_t epoch, int rank, std::uint64_t ordinal) {
  return (epoch << 32) ^ (static_cast<std::uint64_t>(rank) << 20) ^ ordinal;
}

bool fires(const fault::Injector& injector, fault::Site site,
           std::uint64_t op) {
  try {
    injector.on_operation(site, op);
    return false;
  } catch (const TransientError&) {
    return true;
  }
}

/// First injector seed whose `site` draws (at probability `p`) hit exactly
/// one rank of `world` within ordinals [0, 32) of epochs [0, kEpochs), with
/// the victim's earliest hit at an ordinal in [min_ord, max_ord] — the
/// window of per-rank ordinals a real run actually reaches (a rank of a
/// 48-sample 4-rank world sees ~4 heartbeats / ~3 batches per epoch, more
/// only after adopting re-sharded work).
std::uint64_t find_single_rank_fault_seed(fault::Site site, double p,
                                          int world, std::uint64_t min_ord,
                                          std::uint64_t max_ord) {
  obs::MetricsRegistry scratch;
  for (std::uint64_t seed = 1; seed < 20000; ++seed) {
    fault::Injector probe(seed, &scratch);
    probe.configure(site, {.transient_probability = p});
    std::set<int> hit;
    std::optional<std::uint64_t> earliest_ord;
    for (std::uint64_t epoch = 0; epoch < kEpochs; ++epoch) {
      for (std::uint64_t ord = 0; ord < 32; ++ord) {
        for (int rank = 0; rank < world; ++rank) {
          if (fires(probe, site, rank_op(epoch, rank, ord))) {
            hit.insert(rank);
            if (!earliest_ord) earliest_ord = ord;
          }
        }
      }
    }
    if (hit.size() == 1 && earliest_ord && *earliest_ord >= min_ord &&
        *earliest_ord <= max_ord) {
      return seed;
    }
  }
  ADD_FAILURE() << "no single-rank fault seed found";
  return 1;
}

struct TempDir {
  TempDir() {
    path = (std::filesystem::temp_directory_path() /
            ("sciprep_shard_" +
             std::to_string(
                 std::hash<std::thread::id>{}(std::this_thread::get_id())) +
             "_" + std::to_string(counter++)))
               .string();
    std::filesystem::remove_all(path);
  }
  ~TempDir() { std::filesystem::remove_all(path); }
  static inline int counter = 0;
  std::string path;
};

// ---------------------------------------------------------------------------
// split_seed / ShardPlan.

TEST(SplitSeed, StreamsAreIndependentAndDeterministic) {
  EXPECT_EQ(split_seed(7, 0, 1), split_seed(7, 0, 1));
  EXPECT_NE(split_seed(7, 0, 1), split_seed(7, 0, 2));
  EXPECT_NE(split_seed(7, 0, 1), split_seed(7, 1, 1));
  EXPECT_NE(split_seed(7, 0, 1), split_seed(8, 0, 1));
  // The shuffle stream and a per-sample stream never collide on any small
  // epoch (the property the ops-RNG migration relies on).
  for (std::uint64_t epoch = 0; epoch < 8; ++epoch) {
    for (std::uint64_t id = 0; id < 64; ++id) {
      EXPECT_NE(split_seed(5, epoch, kShuffleStream), split_seed(5, epoch, id));
    }
  }
}

TEST(ShardPlan, BalancedContiguousPartitionCoversTheOrder) {
  const ShardPlan plan = ShardPlan::build(10, {0, 1, 2}, 5, 0, true);
  ASSERT_EQ(plan.bounds.size(), 4u);
  EXPECT_EQ(plan.bounds.front(), 0u);
  EXPECT_EQ(plan.bounds.back(), 10u);
  std::vector<std::size_t> rebuilt;
  for (std::size_t s = 0; s < plan.world(); ++s) {
    const auto local = plan.local_order(s);
    const auto sibling = plan.local_order((s + 1) % plan.world());
    EXPECT_LE(local.size() > sibling.size() ? local.size() - sibling.size()
                                            : sibling.size() - local.size(),
              1u);
    const auto positions = plan.global_positions(s);
    ASSERT_EQ(positions.size(), local.size());
    EXPECT_EQ(positions.front(), plan.bounds[s]);
    rebuilt.insert(rebuilt.end(), local.begin(), local.end());
  }
  EXPECT_EQ(rebuilt, plan.global_order);
  // The order is a permutation of the dataset.
  std::vector<std::size_t> sorted = plan.global_order;
  std::sort(sorted.begin(), sorted.end());
  for (std::size_t i = 0; i < sorted.size(); ++i) EXPECT_EQ(sorted[i], i);
}

TEST(ShardPlan, UnshuffledOrderIsIdentity) {
  const ShardPlan plan = ShardPlan::build(6, {0, 1}, 5, 3, false);
  for (std::size_t i = 0; i < 6; ++i) EXPECT_EQ(plan.global_order[i], i);
}

TEST(ShardPlan, ValidatesTheParticipantList) {
  EXPECT_THROW((void)ShardPlan::build(8, {}, 5, 0, true), ConfigError);
  EXPECT_THROW((void)ShardPlan::build(8, {0, 1, 1}, 5, 0, true), ConfigError);
  const ShardPlan plan = ShardPlan::build(8, {3, 0, 2}, 5, 0, true);
  EXPECT_EQ(plan.ranks, (std::vector<int>{0, 2, 3}));
  EXPECT_EQ(plan.slot_of(2), 1);
  EXPECT_EQ(plan.slot_of(1), -1);
}

TEST(ShardPlan, OrderFingerprintSeparatesWorldRankSeedAndPlacement) {
  const std::vector<int> world4{0, 1, 2, 3};
  const std::uint64_t base = order_fingerprint(world4, 2, 5, true, true);
  EXPECT_EQ(base, order_fingerprint(world4, 2, 5, true, true));
  EXPECT_NE(base, order_fingerprint(world4, 3, 5, true, true));
  EXPECT_NE(base, order_fingerprint({0, 1}, 0, 5, true, true));
  EXPECT_NE(base, order_fingerprint(world4, 2, 6, true, true));
  EXPECT_NE(base, order_fingerprint(world4, 2, 5, false, true));
  EXPECT_NE(base, order_fingerprint(world4, 2, 5, true, false));
}

// ---------------------------------------------------------------------------
// GlobalStreamDigest.

TEST(GlobalStreamDigest, DuplicateReDeliveryIsIdempotentMismatchThrows) {
  GlobalStreamDigest digest;
  digest.record(0, 3, 0xABCD);
  EXPECT_NO_THROW(digest.record(0, 3, 0xABCD));  // identical re-delivery
  EXPECT_EQ(digest.recorded(0), 1u);
  EXPECT_THROW(digest.record(0, 3, 0xABCE), FormatError);
  // Digest is interleaving-independent: same entries, any insertion order.
  GlobalStreamDigest other;
  other.record(0, 7, 0x11);
  other.record(0, 3, 0xABCD);
  GlobalStreamDigest reversed;
  reversed.record(0, 3, 0xABCD);
  reversed.record(0, 7, 0x11);
  EXPECT_EQ(other.epoch_digest(0), reversed.epoch_digest(0));
  EXPECT_EQ(other.stream_digest(), reversed.stream_digest());
  EXPECT_NE(other.epoch_digest(0), digest.epoch_digest(0));
}

// ---------------------------------------------------------------------------
// The bit-reproducibility property.

TEST(ShardProperty, MergedDigestInvariantAcrossWorldSizes) {
  ShardRig rig;

  // The unsharded reference: a plain DataPipeline over the same dataset,
  // seed, and ops — the shard stream must be bit-identical to it.
  std::map<std::uint64_t, std::map<std::uint64_t, std::uint32_t>> unsharded;
  {
    ShardConfig cfg = rig.config(1);
    pipeline::DataPipeline pipe(*rig.dataset, rig.codec, cfg.pipeline);
    for (int epoch = 0; epoch < kEpochs; ++epoch) {
      pipe.start_epoch(static_cast<std::uint64_t>(epoch));
      pipeline::Batch batch;
      while (pipe.next_batch(batch)) {
        for (std::size_t i = 0; i < batch.samples.size(); ++i) {
          unsharded[batch.epoch][batch.order_positions[i]] =
              sample_crc(batch.samples[i]);
        }
      }
    }
  }

  std::optional<std::uint32_t> reference;
  for (const int world : {1, 2, 4, 8}) {
    ShardCoordinator coordinator(*rig.dataset, rig.codec, rig.config(world));
    drain(coordinator);
    for (int epoch = 0; epoch < kEpochs; ++epoch) {
      EXPECT_EQ(coordinator.digest().entries(epoch), unsharded[epoch])
          << "world " << world << " epoch " << epoch;
    }
    const std::uint32_t digest = coordinator.digest().stream_digest();
    if (!reference) reference = digest;
    EXPECT_EQ(digest, *reference) << "world " << world;
    const ShardStats stats = coordinator.aggregate();
    EXPECT_EQ(stats.totals.samples, kSamples * kEpochs);
    EXPECT_EQ(stats.ranks_lost, 0u);
    EXPECT_EQ(stats.alive, world);
  }
}

TEST(ShardProperty, KilledAndReshardedRankPreservesTheDigest) {
  ShardRig rig;
  ShardCoordinator healthy(*rig.dataset, rig.codec, rig.config(4));
  drain(healthy);

  ShardConfig cfg = rig.config(4);
  cfg.checkpoint_every_batches = 2;  // in-memory rollback anchors
  ShardCoordinator coordinator(*rig.dataset, rig.codec, std::move(cfg));
  ShardBatch sb;
  std::uint64_t consumer_samples = 0;
  for (int step = 0; step < 5; ++step) {
    ASSERT_TRUE(coordinator.step(sb));
    consumer_samples += sb.batch.samples.size();
  }
  coordinator.kill_rank(2);
  EXPECT_FALSE(coordinator.alive(2));
  // Idempotent on a dead rank.
  EXPECT_NO_THROW(coordinator.kill_rank(2));
  while (coordinator.step(sb)) consumer_samples += sb.batch.samples.size();
  drain(coordinator, 1);

  EXPECT_EQ(coordinator.digest().stream_digest(),
            healthy.digest().stream_digest());
  for (int epoch = 0; epoch < kEpochs; ++epoch) {
    EXPECT_EQ(coordinator.digest().entries(epoch),
              healthy.digest().entries(epoch));
  }
  const ShardStats stats = coordinator.aggregate();
  EXPECT_EQ(stats.ranks_lost, 1u);
  EXPECT_EQ(stats.alive, 3);
  EXPECT_GE(stats.reshards, 1u);
  EXPECT_GE(stats.resharded_samples, 1u);
  // Double-count safety: the aggregate counts the canonical exact-once
  // stream even though the consumer saw the dead rank's post-checkpoint
  // batches AND their re-delivery by survivors (>= one epoch's worth).
  EXPECT_EQ(stats.totals.samples, kSamples * kEpochs);
  EXPECT_GE(consumer_samples, kSamples);
}

TEST(ShardProperty, NonElasticWorldAbortsOnRankLoss) {
  ShardRig rig;
  ShardConfig cfg = rig.config(2);
  cfg.elastic = false;
  ShardCoordinator coordinator(*rig.dataset, rig.codec, std::move(cfg));
  ShardBatch sb;
  ASSERT_TRUE(coordinator.step(sb));
  EXPECT_THROW(coordinator.kill_rank(0), Error);
}

// ---------------------------------------------------------------------------
// Fault-site driven failure: suppressed heartbeat and mid-batch crash.

TEST(ShardFault, SuppressedHeartbeatIsDetectedAndRecovered) {
  ShardRig rig;
  ShardCoordinator healthy(*rig.dataset, rig.codec, rig.config(4));
  drain(healthy);

  // Earliest hit at ordinal 1..3: the victim has beaten at least once (so
  // the watchdog, not the detection failsafe, outs it) and the ordinal is
  // reachable (~4 beats per rank per epoch).
  const std::uint64_t seed = find_single_rank_fault_seed(
      fault::Site::kRankHeartbeat, 0.02, 4, 1, 3);
  obs::MetricsRegistry registry;
  fault::Injector injector(seed, &registry);
  injector.configure(fault::Site::kRankHeartbeat,
                     {.transient_probability = 0.02});
  ShardConfig cfg = rig.config(4);
  cfg.pipeline.injector = &injector;
  cfg.checkpoint_every_batches = 2;
  std::uint64_t lost_events = 0;
  cfg.on_event = [&lost_events](const fault::RecoveryEvent& event) {
    if (event.kind == fault::EventKind::kRankLost) {
      ++lost_events;
      EXPECT_EQ(event.scope.rfind("rank", 0), 0u) << event.scope;
    }
  };
  ShardCoordinator coordinator(*rig.dataset, rig.codec, std::move(cfg));
  drain(coordinator);

  const ShardStats stats = coordinator.aggregate();
  EXPECT_EQ(stats.ranks_lost, 1u);
  EXPECT_EQ(lost_events, 1u);
  EXPECT_EQ(stats.alive, 3);
  EXPECT_GE(coordinator.metrics().counter_value("shard.heartbeat.lost_total"),
            1u);
  EXPECT_EQ(stats.totals.samples, kSamples * kEpochs);
  EXPECT_EQ(coordinator.digest().stream_digest(),
            healthy.digest().stream_digest());
}

TEST(ShardFault, InjectedMidBatchCrashRecoversBitIdentically) {
  ShardRig rig;
  ShardCoordinator healthy(*rig.dataset, rig.codec, rig.config(4));
  drain(healthy);

  // Earliest hit at ordinal 0..2: a rank delivers ~3 batches per epoch, so
  // only those crash ordinals are reachable.
  const std::uint64_t seed =
      find_single_rank_fault_seed(fault::Site::kRankCrash, 0.02, 4, 0, 2);
  obs::MetricsRegistry registry;
  fault::Injector injector(seed, &registry);
  injector.configure(fault::Site::kRankCrash, {.transient_probability = 0.02});
  ShardConfig cfg = rig.config(4);
  cfg.pipeline.injector = &injector;
  cfg.checkpoint_every_batches = 2;
  ShardCoordinator coordinator(*rig.dataset, rig.codec, std::move(cfg));
  drain(coordinator);

  const ShardStats stats = coordinator.aggregate();
  EXPECT_EQ(stats.ranks_lost, 1u);
  EXPECT_EQ(stats.totals.samples, kSamples * kEpochs);
  EXPECT_EQ(coordinator.digest().stream_digest(),
            healthy.digest().stream_digest());
}

// ---------------------------------------------------------------------------
// HeartbeatMonitor.

TEST(HeartbeatMonitor, DeadlineExpiryFlipsLostAndBeatRearms) {
  obs::MetricsRegistry registry;
  HeartbeatMonitor monitor(2, 0.03, &registry);
  EXPECT_FALSE(monitor.lost(0));
  EXPECT_FALSE(monitor.armed(0));

  monitor.beat(0);
  EXPECT_TRUE(monitor.armed(0));
  const auto give_up = std::chrono::steady_clock::now() +
                       std::chrono::seconds(5);
  while (!monitor.lost(0) && std::chrono::steady_clock::now() < give_up) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_TRUE(monitor.lost(0));
  EXPECT_FALSE(monitor.lost(1));  // never armed, never lost

  monitor.beat(0);  // a live beat clears the expired state
  EXPECT_FALSE(monitor.lost(0));
  monitor.pause(0);  // exhausted-not-dead: disarmed without counting a loss
  EXPECT_FALSE(monitor.lost(0));
  EXPECT_FALSE(monitor.armed(0));
  EXPECT_EQ(registry.counter_value("shard.heartbeat.lost_total"), 0u);

  monitor.retire(0);
  monitor.beat(0);  // retired ranks stay retired
  EXPECT_FALSE(monitor.armed(0));
}

TEST(HeartbeatMonitor, ValidatesItsConfig) {
  obs::MetricsRegistry registry;
  EXPECT_THROW(HeartbeatMonitor(0, 0.1, &registry), ConfigError);
  EXPECT_THROW(HeartbeatMonitor(2, 0.0, &registry), ConfigError);
}

// ---------------------------------------------------------------------------
// Coordinated checkpoint / resume, and the corrupted-snapshot fuzz.

TEST(ShardResume, CoordinatedResumeCompletesTheExactStream) {
  ShardRig rig;
  ShardCoordinator healthy(*rig.dataset, rig.codec, rig.config(4));
  drain(healthy);

  TempDir dir;
  ShardConfig cfg = rig.config(4);
  cfg.checkpoint_every_batches = 4;
  cfg.checkpoint_dir = dir.path;
  std::map<std::uint64_t, std::map<std::uint64_t, std::uint32_t>> merged;
  {
    ShardCoordinator first(*rig.dataset, rig.codec, cfg);
    ShardBatch sb;
    for (int step = 0; step < 4; ++step) {  // cadence writes at batch 4
      ASSERT_TRUE(first.step(sb));
      for (std::size_t i = 0; i < sb.batch.samples.size(); ++i) {
        merged[sb.batch.epoch][sb.global_positions[i]] =
            sample_crc(sb.batch.samples[i]);
      }
    }
  }  // abandoned mid-epoch; only the on-disk coordinated set survives

  ShardCoordinator resumed(*rig.dataset, rig.codec, cfg);
  resumed.resume(dir.path);
  drain(resumed, /*first_epoch=*/static_cast<int>(resumed.epoch()), &merged);
  for (int epoch = 0; epoch < kEpochs; ++epoch) {
    EXPECT_EQ(merged[epoch], healthy.digest().entries(epoch))
        << "epoch " << epoch;
  }
  // The resumed world's aggregate matches an uninterrupted run: the snapshot
  // deltas were restored into fresh registries.
  EXPECT_EQ(resumed.aggregate().totals.samples, kSamples * kEpochs);
}

TEST(ShardResume, CorruptedSnapshotsSurfaceTypedErrorsNeverUB) {
  ShardRig rig;
  TempDir dir;
  ShardConfig cfg = rig.config(4);
  cfg.checkpoint_every_batches = 4;
  cfg.checkpoint_dir = dir.path;
  {
    ShardCoordinator first(*rig.dataset, rig.codec, cfg);
    ShardBatch sb;
    for (int step = 0; step < 4; ++step) ASSERT_TRUE(first.step(sb));
  }
  ASSERT_NO_THROW((void)guard::read_coordinated(dir.path, 4));

  const std::string victim = guard::rank_snapshot_path(dir.path, 1);
  std::ifstream in(victim, std::ios::binary);
  std::string pristine((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  in.close();
  ASSERT_FALSE(pristine.empty());
  auto restore = [&] {
    std::ofstream out(victim, std::ios::binary | std::ios::trunc);
    out.write(pristine.data(),
              static_cast<std::streamsize>(pristine.size()));
  };

  // Bit-flip fuzz: every corrupted byte position must surface a typed parse
  // error (the CRC or framing catches it) — never garbage snapshots, never
  // UB (this test is the asan-ubsan preset's payload).
  for (std::size_t at = 0; at < pristine.size(); ++at) {
    std::string mutated = pristine;
    mutated[at] = static_cast<char>(mutated[at] ^ 0x10);
    {
      std::ofstream out(victim, std::ios::binary | std::ios::trunc);
      out.write(mutated.data(),
                static_cast<std::streamsize>(mutated.size()));
    }
    EXPECT_THROW((void)guard::read_coordinated(dir.path, 4), Error)
        << "flip at byte " << at;
  }
  // Truncation at every length: TruncatedError or FormatError, typed.
  for (std::size_t len = 0; len < pristine.size(); len += 3) {
    std::ofstream out(victim, std::ios::binary | std::ios::trunc);
    out.write(pristine.data(), static_cast<std::streamsize>(len));
    out.close();
    EXPECT_THROW((void)guard::read_coordinated(dir.path, 4), Error)
        << "truncated to " << len;
  }
  restore();

  // A missing member makes the set unreadable.
  std::filesystem::remove(victim);
  EXPECT_THROW((void)guard::read_coordinated(dir.path, 4), IoError);
  restore();

  // Epoch disagreement means the set is torn.
  guard::Snapshot torn = guard::read_rank_snapshot(dir.path, 1);
  torn.epoch += 1;
  guard::write_rank_snapshot(dir.path, 1, torn);
  EXPECT_THROW((void)guard::read_coordinated(dir.path, 4), ConfigError);
  restore();

  // A cross-rank swap parses cleanly but must be rejected at resume: the
  // order fingerprint includes the rank id.
  const std::string other = guard::rank_snapshot_path(dir.path, 2);
  std::filesystem::copy_file(
      other, victim, std::filesystem::copy_options::overwrite_existing);
  ASSERT_NO_THROW((void)guard::read_coordinated(dir.path, 4));
  ShardCoordinator fresh(*rig.dataset, rig.codec, cfg);
  EXPECT_THROW(fresh.resume(dir.path), ConfigError);
  restore();

  // And the pristine set still resumes cleanly after all that.
  ShardCoordinator clean(*rig.dataset, rig.codec, cfg);
  EXPECT_NO_THROW(clean.resume(dir.path));
}

TEST(ShardConfigValidation, RejectsBadWorldsAndKills) {
  ShardRig rig;
  ShardConfig cfg = rig.config(0);
  EXPECT_THROW(ShardCoordinator(*rig.dataset, rig.codec, cfg), ConfigError);
  ShardCoordinator coordinator(*rig.dataset, rig.codec, rig.config(2));
  EXPECT_THROW(coordinator.kill_rank(-1), ConfigError);
  EXPECT_THROW(coordinator.kill_rank(2), ConfigError);
  // GPU placement demands a per-rank device factory.
  ShardConfig gpu_cfg = rig.config(2);
  gpu_cfg.pipeline.decode_placement = codec::Placement::kGpu;
  EXPECT_THROW(ShardCoordinator(*rig.dataset, rig.codec, gpu_cfg),
               ConfigError);
}

}  // namespace
}  // namespace sciprep::shard
