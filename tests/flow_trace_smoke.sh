#!/bin/sh
# End-to-end distributed-tracing smoke (ctest -L flow). A WireServer trainer
# serves two tenants over AF_UNIX to two traced client processes, and the
# acceptance bar is the whole sciprep::flow contract at once:
#
#   1. Healthy pass: both clients run --trace-propagate with --flow-merge,
#      --fleet-out, --report-out, and --validate. The clients' validate mode
#      enforces the flow invariants in-process: a non-zero trace id, a valid
#      clock-offset estimate, >=95% of client batches fully decomposed via
#      span linkage, span-vs-histogram sum agreement on both sides, and a
#      reconciled fleet series. The merged Chrome trace must carry both
#      processes' tracks (server + client process_name metadata).
#   2. Throttled pass: the server delays every reply send (--throttle-wire-ms),
#      which is charged to the flow.server.send attribution site — the
#      client's bottleneck report must convict the wire path, not the
#      pipeline ("wire-bound" or "server-queue-bound" verdict).
#   3. Federation: fleetview merges both tenants' fleet series into one
#      global series + Prometheus body; --require-reconciled makes any lost
#      delta a hard failure, and the per-scope labels must survive.
#
# Usage: flow_trace_smoke.sh <trainer> <fleetview> <work_dir>
set -u

TRAINER=$1
FLEETVIEW=$2
WORK=$3
rm -rf "$WORK"
mkdir -p "$WORK"

# sockaddr_un caps paths at ~107 bytes; sockets live under /tmp, keyed by PID
# against parallel ctest.
SOCK="/tmp/sciprep_flow_smoke_$$.sock"
SOCK_SLOW="/tmp/sciprep_flow_slow_$$.sock"
trap 'rm -f "$SOCK" "$SOCK_SLOW"' EXIT

COMMON="--workload cosmo --samples 24 --epochs 3 --dim 16 --batch 4
        --workers 4 --placement cpu"

fail() {
  echo "flow_trace_smoke: FAIL: $1" >&2
  for log in "$WORK"/*.log; do
    echo "--- $log ---" >&2
    cat "$log" >&2
  done
  exit 1
}

wait_for_socket() {
  i=0
  while [ ! -S "$1" ]; do
    i=$((i + 1))
    [ "$i" -gt 100 ] && fail "server never bound $1"
    sleep 0.1
  done
}

# --- Stage 1: healthy traced run, two tenants --------------------------------

# shellcheck disable=SC2086  # COMMON is a flag list, splitting is the point
"$TRAINER" $COMMON --serve-socket "$SOCK" --tenants 2 --validate \
  >"$WORK/server.log" 2>&1 &
SERVER=$!
wait_for_socket "$SOCK"

for t in 0 1; do
  # shellcheck disable=SC2086
  "$TRAINER" $COMMON --connect "$SOCK" --tenant-name "tenant$t" \
    --trace-propagate \
    --flow-merge "$WORK/merged$t.json" \
    --fleet-out "$WORK/fleet$t.jsonl" \
    --report-out "$WORK/report$t.json" \
    --validate >"$WORK/c$t.log" 2>&1 &
  eval "C$t=\$!"
done
for t in 0 1; do
  eval "pid=\$C$t"
  wait "$pid" || fail "traced client $t failed --validate (flow invariants)"
done
wait "$SERVER" || fail "server exited non-zero"

# The merged trace is one document spanning both processes: the server's
# track and the client's own must both be present, with named processes.
for t in 0 1; do
  [ -s "$WORK/merged$t.json" ] || fail "client $t wrote no merged trace"
  grep -q '"name":"trainer-server"' "$WORK/merged$t.json" ||
    fail "merged trace $t lacks the server process track"
  grep -q "\"name\":\"trainer-tenant$t\"" "$WORK/merged$t.json" ||
    fail "merged trace $t lacks the client process track"
  grep -q '"name":"flow.server.next"' "$WORK/merged$t.json" ||
    fail "merged trace $t carries no server-side spans"
done

# --- Stage 2: throttled wire must show up in the verdict ---------------------

# shellcheck disable=SC2086
"$TRAINER" $COMMON --epochs 1 --serve-socket "$SOCK_SLOW" --tenants 1 \
  --throttle-wire-ms 20 >"$WORK/slow.server.log" 2>&1 &
SERVER=$!
wait_for_socket "$SOCK_SLOW"
# shellcheck disable=SC2086
"$TRAINER" $COMMON --epochs 1 --connect "$SOCK_SLOW" --tenant-name tenant0 \
  --trace-propagate --report-out "$WORK/slow.report.json" --validate \
  >"$WORK/slow.client.log" 2>&1 ||
  fail "throttled client exited non-zero"
wait "$SERVER" || fail "throttled server exited non-zero"

grep -Eq '"verdict":"(wire-bound|server-queue-bound)' "$WORK/slow.report.json" ||
  fail "throttled run did not produce a wire-bound/server-queue-bound verdict"

# --- Stage 3: fleet federation across both tenants ---------------------------

"$FLEETVIEW" "$WORK/fleet0.jsonl" "$WORK/fleet1.jsonl" \
  --out-jsonl "$WORK/fleet.merged.jsonl" --out-prom "$WORK/fleet.prom" \
  --require-reconciled >"$WORK/fleetview.log" 2>&1 ||
  fail "fleetview failed to reconcile the two tenants' series"

for t in 0 1; do
  grep -q "scope=\"tenant/tenant$t\"" "$WORK/fleet.prom" ||
    fail "prometheus body lost the tenant$t scope label"
done
grep -q '"schema":"sciprep.flow.fleet.v1"' "$WORK/fleet.merged.jsonl" ||
  fail "merged fleet series is not fleet.v1"

echo "flow_trace_smoke: OK"
