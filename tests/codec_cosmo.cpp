// Tests for the CosmoFlow lookup-table codec: exact round trip (FP16 cast is
// the only precision change), compression ratio, RLE/broadcast handling,
// multi-table splitting, GPU/CPU decode equivalence, corruption rejection.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "sciprep/codec/cosmo_codec.hpp"
#include "sciprep/common/error.hpp"
#include "sciprep/common/rng.hpp"
#include "sciprep/data/cosmo_gen.hpp"

namespace sciprep::codec {
namespace {

io::CosmoSample synthetic_sample(int dim = 32, std::uint64_t index = 0) {
  data::CosmoGenConfig cfg;
  cfg.dim = dim;
  cfg.seed = 77;
  return data::CosmoGenerator(cfg).generate(index);
}

/// The decode contract: value v becomes fp16(log1p(v)).
Half expected_value(std::int32_t count, bool log1p = true) {
  const auto x = static_cast<float>(count);
  return Half(log1p ? std::log1p(x) : x);
}

TEST(CosmoCodec, RoundTripIsExactUpToFp16) {
  const auto sample = synthetic_sample();
  const CosmoCodec codec;
  const Bytes encoded = codec.encode_sample(sample);
  const TensorF16 decoded = codec.decode_sample_cpu(encoded);

  ASSERT_EQ(decoded.values.size(), sample.counts.size());
  ASSERT_EQ(decoded.shape,
            (std::vector<std::uint64_t>{32, 32, 32, 4}));
  for (std::size_t i = 0; i < sample.counts.size(); ++i) {
    ASSERT_EQ(decoded.values[i].bits(), expected_value(sample.counts[i]).bits())
        << "value " << i << " count " << sample.counts[i];
  }
}

TEST(CosmoCodec, LabelsAreLossless) {
  const auto sample = synthetic_sample(32, 3);
  const CosmoCodec codec;
  const TensorF16 decoded = codec.decode_sample_cpu(codec.encode_sample(sample));
  ASSERT_EQ(decoded.float_labels.size(), 4u);
  for (int p = 0; p < 4; ++p) {
    EXPECT_EQ(decoded.float_labels[static_cast<std::size_t>(p)],
              sample.params[static_cast<std::size_t>(p)]);
  }
}

TEST(CosmoCodec, MatchesReferencePreprocessExactly) {
  // The paper: "Our CosmoFlow decoder is not lossy when casting to FP16" —
  // decode(encode(x)) must equal the baseline preprocess bit-for-bit.
  const auto sample = synthetic_sample(16, 5);
  const CosmoCodec codec;
  const TensorF16 decoded = codec.decode_sample_cpu(codec.encode_sample(sample));
  const TensorF16 reference = CosmoCodec::reference_preprocess_sample(sample);
  ASSERT_EQ(decoded.values.size(), reference.values.size());
  for (std::size_t i = 0; i < decoded.values.size(); ++i) {
    ASSERT_EQ(decoded.values[i].bits(), reference.values[i].bits());
  }
}

TEST(CosmoCodec, GpuDecodeMatchesCpu) {
  const auto sample = synthetic_sample(32, 1);
  const CosmoCodec codec;
  const Bytes encoded = codec.encode_sample(sample);
  const TensorF16 cpu = codec.decode_sample_cpu(encoded);
  sim::SimGpu gpu({.sm_count = 8, .warps_per_sm = 4});
  const TensorF16 dev = codec.decode_sample_gpu(encoded, gpu);
  ASSERT_EQ(cpu.values.size(), dev.values.size());
  for (std::size_t i = 0; i < cpu.values.size(); ++i) {
    ASSERT_EQ(cpu.values[i].bits(), dev.values[i].bits()) << "value " << i;
  }
  EXPECT_EQ(cpu.float_labels, dev.float_labels);
  // The gather kernel must have moved the full volume through the engine.
  EXPECT_GT(gpu.lifetime_stats().bytes_written,
            sample.value_count() * sizeof(Half) / 2);
}

TEST(CosmoCodec, CompressesClusteredVolumes) {
  const auto sample = synthetic_sample(32, 2);
  const CosmoCodec codec;
  const Bytes encoded = codec.encode_sample(sample);
  // vs the uint16 on-disk baseline (§V.B: ~4x with tables vs ~5x gzip).
  const double ratio = static_cast<double>(sample.byte_size()) /
                       static_cast<double>(encoded.size());
  EXPECT_GT(ratio, 2.0) << "encoded " << encoded.size() << " of "
                        << sample.byte_size();
}

TEST(CosmoCodec, InspectReportsStructure) {
  const auto sample = synthetic_sample(32, 4);
  const CosmoCodec codec;
  const Bytes encoded = codec.encode_sample(sample);
  const CosmoEncodedInfo info = CosmoCodec::inspect(encoded);
  EXPECT_GE(info.block_count, 1u);
  EXPECT_GT(info.total_groups, 100u);
  EXPECT_GT(info.key_bytes, 0u);
  EXPECT_EQ(info.table_bytes, info.total_groups * 4 * sizeof(std::int32_t));
}

TEST(CosmoCodec, UniformVolumeUsesBroadcastStream) {
  // An all-equal volume must RLE down to almost nothing.
  io::CosmoSample sample;
  sample.dim = 16;
  sample.counts.assign(sample.value_count(), 3);
  sample.params = {1, 2, 3, 4};
  const CosmoCodec codec;
  const Bytes encoded = codec.encode_sample(sample);
  EXPECT_LT(encoded.size(), 256u);
  const TensorF16 decoded = codec.decode_sample_cpu(encoded);
  for (const Half h : decoded.values) {
    ASSERT_EQ(h.bits(), expected_value(3).bits());
  }
  // GPU broadcast path decodes it identically.
  sim::SimGpu gpu({.sm_count = 4, .warps_per_sm = 2});
  const TensorF16 dev = codec.decode_sample_gpu(encoded, gpu);
  for (const Half h : dev.values) {
    ASSERT_EQ(h.bits(), expected_value(3).bits());
  }
}

TEST(CosmoCodec, RleDisabledStillRoundTrips) {
  io::CosmoSample sample;
  sample.dim = 8;
  sample.counts.assign(sample.value_count(), 7);
  CosmoEncodeOptions opt;
  opt.rle = false;
  const CosmoCodec codec(opt);
  const TensorF16 decoded = codec.decode_sample_cpu(codec.encode_sample(sample));
  for (const Half h : decoded.values) {
    ASSERT_EQ(h.bits(), expected_value(7).bits());
  }
}

TEST(CosmoCodec, OneByteKeysForTinyTables) {
  io::CosmoSample sample;
  sample.dim = 16;
  sample.counts.resize(sample.value_count());
  Rng rng(5);
  for (std::size_t v = 0; v < sample.voxel_count(); ++v) {
    // Only 10 distinct groups.
    const auto g = static_cast<std::int32_t>(rng.next_below(10));
    for (int r = 0; r < 4; ++r) {
      sample.counts[v * 4 + static_cast<std::size_t>(r)] = g;
    }
  }
  const CosmoCodec codec;
  const Bytes encoded = codec.encode_sample(sample);
  const CosmoEncodedInfo info = CosmoCodec::inspect(encoded);
  EXPECT_EQ(info.total_groups, 10u);
  // 1-byte keys: stream must be ~1 byte/voxel (RLE may shrink it further).
  EXPECT_LE(info.key_bytes, sample.voxel_count() + 16);
  const TensorF16 decoded = codec.decode_sample_cpu(encoded);
  for (std::size_t v = 0; v < sample.voxel_count(); ++v) {
    ASSERT_EQ(decoded.values[v * 4].bits(),
              expected_value(sample.counts[v * 4]).bits());
  }
}

TEST(CosmoCodec, SplitsIntoMultipleTablesWhenGroupsOverflow) {
  // Force > max_groups unique groups with a tiny cap.
  io::CosmoSample sample;
  sample.dim = 16;  // 4096 voxels
  sample.counts.resize(sample.value_count());
  for (std::size_t v = 0; v < sample.voxel_count(); ++v) {
    for (int r = 0; r < 4; ++r) {
      sample.counts[v * 4 + static_cast<std::size_t>(r)] =
          static_cast<std::int32_t>(v % 1024 + static_cast<std::size_t>(r));
    }
  }
  CosmoEncodeOptions opt;
  opt.max_groups_per_block = 256;
  const CosmoCodec codec(opt);
  const Bytes encoded = codec.encode_sample(sample);
  const CosmoEncodedInfo info = CosmoCodec::inspect(encoded);
  EXPECT_GE(info.block_count, 4u);  // 1024 groups / 256 per block
  const TensorF16 decoded = codec.decode_sample_cpu(encoded);
  for (std::size_t i = 0; i < sample.counts.size(); ++i) {
    ASSERT_EQ(decoded.values[i].bits(), expected_value(sample.counts[i]).bits());
  }
  // GPU path handles multi-block too.
  sim::SimGpu gpu({.sm_count = 4, .warps_per_sm = 2});
  const TensorF16 dev = codec.decode_sample_gpu(encoded, gpu);
  for (std::size_t i = 0; i < sample.counts.size(); ++i) {
    ASSERT_EQ(dev.values[i].bits(), expected_value(sample.counts[i]).bits());
  }
}

TEST(CosmoCodec, WithoutLog1pEmitsRawCounts) {
  io::CosmoSample sample;
  sample.dim = 8;
  sample.counts.resize(sample.value_count());
  for (std::size_t i = 0; i < sample.counts.size(); ++i) {
    sample.counts[i] = static_cast<std::int32_t>(i % 50);
  }
  CosmoEncodeOptions opt;
  opt.fuse_log1p = false;
  const CosmoCodec codec(opt);
  const TensorF16 decoded = codec.decode_sample_cpu(codec.encode_sample(sample));
  for (std::size_t i = 0; i < sample.counts.size(); ++i) {
    ASSERT_EQ(decoded.values[i].bits(),
              expected_value(sample.counts[i], false).bits());
  }
}

TEST(CosmoCodec, NegativeCountsRejectedWithLog1p) {
  io::CosmoSample sample;
  sample.dim = 8;
  sample.counts.assign(sample.value_count(), 0);
  sample.counts[17] = -1;
  const CosmoCodec codec;
  EXPECT_THROW(codec.encode_sample(sample), ConfigError);
}

TEST(CosmoCodec, RejectsCorruptHeader) {
  const auto sample = synthetic_sample(16, 6);
  const CosmoCodec codec;
  Bytes encoded = codec.encode_sample(sample);
  encoded[0] ^= 0xFF;  // magic
  EXPECT_THROW(codec.decode_sample_cpu(encoded), FormatError);
}

TEST(CosmoCodec, RejectsTruncation) {
  const auto sample = synthetic_sample(16, 6);
  const CosmoCodec codec;
  const Bytes encoded = codec.encode_sample(sample);
  const ByteSpan cut = ByteSpan(encoded).first(encoded.size() / 2);
  EXPECT_THROW(codec.decode_sample_cpu(cut), FormatError);
}

TEST(CosmoCodec, RejectsOutOfRangeKeys) {
  io::CosmoSample sample;
  sample.dim = 8;
  sample.counts.assign(sample.value_count(), 1);
  sample.counts[0] = 2;  // 2 groups -> keys {0,1}, 1-byte keys, raw or rle
  CosmoEncodeOptions opt;
  opt.rle = false;
  const CosmoCodec codec(opt);
  Bytes encoded = codec.encode_sample(sample);
  // Stream is the trailing voxel-count bytes; set one key to 0xEE (>= 2).
  encoded[encoded.size() - 5] = 0xEE;
  EXPECT_THROW(codec.decode_sample_cpu(encoded), FormatError);
}

TEST(CosmoCodec, BadOptionsRejected) {
  CosmoEncodeOptions opt;
  opt.max_groups_per_block = 0;
  EXPECT_THROW(CosmoCodec{opt}, ConfigError);
}

TEST(CosmoCodec, PluginInterfaceRoundTrips) {
  const auto sample = synthetic_sample(16, 7);
  const CosmoCodec codec;
  const SampleCodec& plugin = codec;
  EXPECT_EQ(plugin.name(), "cosmo-lut");
  const Bytes raw = sample.serialize();
  const Bytes encoded = plugin.encode(raw);
  EXPECT_LT(encoded.size(), raw.size());
  const TensorF16 via_plugin = plugin.decode_cpu(encoded);
  const TensorF16 reference = plugin.reference_preprocess(raw);
  ASSERT_EQ(via_plugin.values.size(), reference.values.size());
  for (std::size_t i = 0; i < via_plugin.values.size(); ++i) {
    ASSERT_EQ(via_plugin.values[i].bits(), reference.values[i].bits());
  }
}

// Property sweep: round trip holds across dims and universes.
class CosmoRoundTrip
    : public ::testing::TestWithParam<std::tuple<int, std::uint64_t>> {};

TEST_P(CosmoRoundTrip, ExactAcrossDimsAndIndices) {
  const int dim = std::get<0>(GetParam());
  const std::uint64_t index = std::get<1>(GetParam());
  const auto sample = synthetic_sample(dim, index);
  const CosmoCodec codec;
  const TensorF16 decoded = codec.decode_sample_cpu(codec.encode_sample(sample));
  for (std::size_t i = 0; i < sample.counts.size(); ++i) {
    ASSERT_EQ(decoded.values[i].bits(), expected_value(sample.counts[i]).bits());
  }
}

INSTANTIATE_TEST_SUITE_P(DimsAndUniverses, CosmoRoundTrip,
                         ::testing::Combine(::testing::Values(8, 16, 32),
                                            ::testing::Values<std::uint64_t>(
                                                0, 1, 2, 3)));

}  // namespace
}  // namespace sciprep::codec
