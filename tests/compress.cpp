// Tests for the from-scratch DEFLATE/gzip substrate.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <numeric>
#include <string>
#include <vector>

#include "sciprep/common/error.hpp"
#include "sciprep/common/rng.hpp"
#include "sciprep/compress/deflate.hpp"
#include "sciprep/compress/gzip.hpp"
#include "sciprep/compress/huffman.hpp"
#include "sciprep/compress/lz77.hpp"

namespace sciprep::compress {
namespace {

Bytes make_text(std::size_t approx_size, std::uint64_t seed) {
  // English-like repetitive text: compresses well and exercises matches.
  static constexpr const char* kWords[] = {
      "climate", "cosmo", "tensor", "sample", "pipeline", "decode",
      "segment", "redshift", "the",   "and",    "voxel",    "preprocess"};
  Rng rng(seed);
  std::string s;
  while (s.size() < approx_size) {
    s += kWords[rng.next_below(std::size(kWords))];
    s += ' ';
  }
  return Bytes(s.begin(), s.end());
}

Bytes make_random(std::size_t size, std::uint64_t seed) {
  Rng rng(seed);
  Bytes out(size);
  for (auto& b : out) b = static_cast<std::uint8_t>(rng.next_u64());
  return out;
}

TEST(Huffman, CanonicalCodesMatchRfcExample) {
  // RFC 1951 §3.2.2 example: lengths (3,3,3,3,3,2,4,4) -> specific codes.
  const std::vector<std::uint8_t> lengths = {3, 3, 3, 3, 3, 2, 4, 4};
  const auto codes = assign_canonical_codes(lengths);
  const std::vector<std::uint16_t> expected = {0b010,  0b011,  0b100, 0b101,
                                               0b110,  0b00,   0b1110, 0b1111};
  EXPECT_EQ(codes, expected);
}

TEST(Huffman, BuildLengthsRespectsLimit) {
  // Fibonacci-like frequencies force a deep unlimited tree; lengths must be
  // clamped to the limit while keeping the Kraft sum exactly 1.
  std::vector<std::uint64_t> freqs(20);
  std::uint64_t a = 1, b = 1;
  for (auto& f : freqs) {
    f = a;
    const std::uint64_t c = a + b;
    a = b;
    b = c;
  }
  const auto lengths = build_code_lengths(freqs, 7);
  std::uint64_t kraft = 0;
  for (const auto l : lengths) {
    ASSERT_GT(l, 0);
    ASSERT_LE(l, 7);
    kraft += 1ULL << (7 - l);
  }
  EXPECT_EQ(kraft, 1ULL << 7);
}

TEST(Huffman, SingleSymbolGetsOneBit) {
  std::vector<std::uint64_t> freqs(10, 0);
  freqs[4] = 100;
  const auto lengths = build_code_lengths(freqs);
  for (std::size_t s = 0; s < lengths.size(); ++s) {
    EXPECT_EQ(lengths[s], s == 4 ? 1 : 0);
  }
}

TEST(Huffman, EncoderDecoderRoundTrip) {
  Rng rng(17);
  std::vector<std::uint64_t> freqs(64);
  for (auto& f : freqs) f = 1 + rng.next_below(1000);
  const auto lengths = build_code_lengths(freqs);
  const HuffmanEncoder enc(lengths);
  const HuffmanDecoder dec(lengths);

  std::vector<std::uint16_t> symbols(5000);
  BitWriter w;
  for (auto& s : symbols) {
    s = static_cast<std::uint16_t>(rng.next_below(64));
    enc.emit(w, s);
  }
  const Bytes bytes = std::move(w).finish();
  BitReader r(bytes);
  for (const auto s : symbols) {
    EXPECT_EQ(dec.decode(r), s);
  }
}

TEST(Huffman, OverSubscribedLengthsRejected) {
  // Three 1-bit codes cannot coexist.
  const std::vector<std::uint8_t> bad = {1, 1, 1};
  EXPECT_THROW(HuffmanDecoder{bad}, FormatError);
}

TEST(Lz77, FindsRepeats) {
  const std::string s = "abcabcabcabcabcabc";
  const auto tokens = lz77_tokenize(as_bytes(s));
  // Expect 3 literals then one long match.
  ASSERT_GE(tokens.size(), 2u);
  EXPECT_TRUE(tokens[0].is_literal());
  bool has_match = false;
  std::size_t reconstructed = 0;
  for (const auto& t : tokens) {
    if (t.is_literal()) {
      reconstructed += 1;
    } else {
      has_match = true;
      EXPECT_GE(t.length, kMinMatch);
      EXPECT_LE(t.length, kMaxMatch);
      EXPECT_EQ(t.distance % 3, 0u);  // period-3 repeat
      reconstructed += t.length;
    }
  }
  EXPECT_TRUE(has_match);
  EXPECT_EQ(reconstructed, s.size());
}

TEST(Lz77, TokensReconstructInput) {
  const Bytes input = make_text(20000, 3);
  const auto tokens = lz77_tokenize(input);
  Bytes rebuilt;
  for (const auto& t : tokens) {
    if (t.is_literal()) {
      rebuilt.push_back(t.literal);
    } else {
      ASSERT_LE(t.distance, rebuilt.size());
      std::size_t src = rebuilt.size() - t.distance;
      for (int i = 0; i < t.length; ++i) rebuilt.push_back(rebuilt[src++]);
    }
  }
  EXPECT_EQ(rebuilt, input);
}

class DeflateRoundTrip
    : public ::testing::TestWithParam<std::tuple<std::size_t, DeflateLevel>> {};

TEST_P(DeflateRoundTrip, TextRoundTrips) {
  const auto [size, level] = GetParam();
  const Bytes input = make_text(size, size * 31 + 7);
  const Bytes packed = deflate(input, level);
  const Bytes unpacked = inflate(packed, input.size());
  EXPECT_EQ(unpacked, input);
  if (size > 1000) {
    EXPECT_LT(packed.size(), input.size());  // text must compress
  }
}

TEST_P(DeflateRoundTrip, RandomRoundTrips) {
  const auto [size, level] = GetParam();
  const Bytes input = make_random(size, size + 1);
  const Bytes packed = deflate(input, level);
  EXPECT_EQ(inflate(packed, input.size()), input);
}

INSTANTIATE_TEST_SUITE_P(
    SizesAndLevels, DeflateRoundTrip,
    ::testing::Combine(
        ::testing::Values<std::size_t>(0, 1, 2, 100, 4096, 70000, 300000),
        ::testing::Values(DeflateLevel::kFast, DeflateLevel::kDefault,
                          DeflateLevel::kBest)),
    [](const auto& info) {
      const std::size_t size = std::get<0>(info.param);
      const DeflateLevel level = std::get<1>(info.param);
      const char* lname = level == DeflateLevel::kFast      ? "fast"
                          : level == DeflateLevel::kDefault ? "default"
                                                            : "best";
      return std::to_string(size) + "_" + lname;
    });

TEST(Deflate, AllSameByte) {
  const Bytes input(100000, 0x55);
  const Bytes packed = deflate(input);
  EXPECT_EQ(inflate(packed), input);
  EXPECT_LT(packed.size(), input.size() / 50);  // extreme redundancy
}

TEST(Deflate, IncompressibleFallsBackToStored) {
  const Bytes input = make_random(100000, 9);
  const Bytes packed = deflate(input);
  // Stored blocks add ~5 bytes per 64 KiB; inflation must stay tiny.
  EXPECT_LT(packed.size(), input.size() + 64);
}

TEST(Deflate, FloatDataRoundTrips) {
  // Scientific-looking float payload (what TFRecord bodies contain).
  Rng rng(31);
  std::vector<float> values(50000);
  for (auto& v : values) {
    v = static_cast<float>(rng.poisson(3.0));
  }
  const ByteSpan input = as_bytes(values);
  const Bytes packed = deflate(input);
  const Bytes unpacked = inflate(packed, input.size());
  EXPECT_EQ(Bytes(input.begin(), input.end()), unpacked);
  EXPECT_LT(packed.size(), input.size());  // small-int floats compress
}

TEST(Inflate, RejectsCorruptStream) {
  const Bytes input = make_text(5000, 77);
  Bytes packed = deflate(input);
  // Flip bits through the stream; every corruption must throw or produce
  // different output (never crash / hang).
  for (std::size_t pos = 8; pos < packed.size(); pos += 97) {
    Bytes bad = packed;
    bad[pos] ^= 0x40;
    try {
      const Bytes out = inflate(bad, input.size());
      // Silent corruption is possible for some flips; gzip layer catches it.
    } catch (const Error&) {
      // expected for most flips
    }
  }
}

TEST(Inflate, RejectsTruncatedStream) {
  const Bytes input = make_text(5000, 78);
  const Bytes packed = deflate(input);
  const ByteSpan half = ByteSpan(packed).first(packed.size() / 2);
  EXPECT_THROW(inflate(half, input.size()), Error);
}

TEST(Inflate, RejectsReservedBlockType) {
  BitWriter w;
  w.put_bits(1, 1);     // final
  w.put_bits(0b11, 2);  // reserved type
  const Bytes bytes = std::move(w).finish();
  EXPECT_THROW(inflate(bytes), FormatError);
}

TEST(Gzip, RoundTripsWithValidFraming) {
  const Bytes input = make_text(30000, 5);
  const Bytes packed = gzip_compress(input);
  // RFC 1952 magic.
  ASSERT_GE(packed.size(), 18u);
  EXPECT_EQ(packed[0], 0x1F);
  EXPECT_EQ(packed[1], 0x8B);
  EXPECT_EQ(packed[2], 8);  // deflate
  EXPECT_EQ(gzip_decompress(packed), input);
}

TEST(Gzip, DetectsPayloadCorruption) {
  const Bytes input = make_text(20000, 6);
  Bytes packed = gzip_compress(input);
  packed[packed.size() / 2] ^= 0x01;
  EXPECT_THROW(gzip_decompress(packed), Error);
}

TEST(Gzip, DetectsBadMagic) {
  Bytes packed = gzip_compress(make_text(100, 1));
  packed[0] = 0x00;
  EXPECT_THROW(gzip_decompress(packed), FormatError);
}

TEST(Gzip, EmptyInput) {
  const Bytes packed = gzip_compress({});
  EXPECT_EQ(gzip_decompress(packed), Bytes{});
}

TEST(Gzip, CompressionRatioOnRepetitiveData) {
  const Bytes input = make_text(200000, 8);
  const Bytes packed = gzip_compress(input, DeflateLevel::kBest);
  const double ratio =
      static_cast<double>(input.size()) / static_cast<double>(packed.size());
  EXPECT_GT(ratio, 3.0);  // word-repetitive text compresses well
}

}  // namespace
}  // namespace sciprep::compress
