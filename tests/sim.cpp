// Tests for the platform / memory-hierarchy / SimGpu substrate.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>

#include "sciprep/common/error.hpp"
#include "sciprep/sim/memhier.hpp"
#include "sciprep/sim/platform.hpp"
#include "sciprep/sim/simgpu.hpp"

namespace sciprep::sim {
namespace {

constexpr std::uint64_t kMiB = 1024 * 1024;
constexpr std::uint64_t kGiB = 1024ull * kMiB;

TEST(Platform, TableOneValues) {
  const PlatformModel s = summit();
  EXPECT_EQ(s.gpus_per_node, 6);
  EXPECT_EQ(s.gpu.name, "V100");
  EXPECT_DOUBLE_EQ(s.gpu.fp32_tflops, 15.7);
  EXPECT_EQ(s.host_link, HostLink::kNvlink);

  const PlatformModel v = cori_v100();
  EXPECT_EQ(v.gpus_per_node, 8);
  EXPECT_DOUBLE_EQ(v.nvme_read_gibps, 3.2);
  EXPECT_EQ(v.host_link, HostLink::kPcie3);

  const PlatformModel a = cori_a100();
  EXPECT_EQ(a.gpu.name, "A100");
  EXPECT_EQ(a.gpu.sm_count, 104);
  EXPECT_DOUBLE_EQ(a.gpu.mem_bandwidth_tbps, 1.6);
  EXPECT_DOUBLE_EQ(a.host_memory_gb, 1056);
  EXPECT_EQ(all_platforms().size(), 3u);
}

// §IX.A: "For the range of transfer sizes of 4 to 64 MB ... the bandwidth
// range is 4-8 GB/s for the V100 node and 6-8 GB/s for the A100 node.
// Effectively, both nodes have close bandwidths" — the A100's PCIe4 must NOT
// double the effective sample-transfer bandwidth.
TEST(Platform, PageableBandwidthPlateauMatchesPaper) {
  const PlatformModel v = cori_v100();
  const PlatformModel a = cori_a100();
  for (const std::size_t mib : {4, 16, 64}) {
    const double bv = v.h2d_bandwidth_gibps(mib * kMiB);
    const double ba = a.h2d_bandwidth_gibps(mib * kMiB);
    EXPECT_GE(bv, 4.0);
    EXPECT_LE(bv, 8.0);
    EXPECT_GE(ba, 6.0);
    EXPECT_LE(ba, 8.5);
    EXPECT_LT(ba / bv, 1.5) << "A100 and V100 nodes must be close";
  }
  // Summit's NVLink is ~3x PCIe3 (§IX.B).
  const double bs = summit().h2d_bandwidth_gibps(16 * kMiB);
  EXPECT_GT(bs / v.h2d_bandwidth_gibps(16 * kMiB), 2.0);
}

TEST(Platform, TransferSecondsScalesWithBytes) {
  const PlatformModel v = cori_v100();
  const double t1 = v.transfer_seconds(Link::kHostToDevice, 16 * kMiB);
  const double t2 = v.transfer_seconds(Link::kHostToDevice, 32 * kMiB);
  EXPECT_GT(t2, t1 * 1.8);
  EXPECT_LT(t2, t1 * 2.2);
  // HBM is orders of magnitude faster than NVMe.
  EXPECT_LT(v.transfer_seconds(Link::kDeviceMemory, 64 * kMiB) * 50,
            v.transfer_seconds(Link::kNvmeToHost, 64 * kMiB));
}

TEST(Platform, GpuScalingFavorsA100) {
  host_calibration() = {8.0, 0.05, 0.02};
  const double host = 1.0;  // second
  const double on_v100 = cori_v100().scale_gpu_seconds(host, true);
  const double on_a100 = cori_a100().scale_gpu_seconds(host, true);
  // A100 HBM is 1.6/0.9 faster.
  EXPECT_NEAR(on_v100 / on_a100, 1.6 / 0.9, 1e-9);
  const double c_v100 = cori_v100().scale_gpu_seconds(host, false);
  const double c_a100 = cori_a100().scale_gpu_seconds(host, false);
  EXPECT_NEAR(c_v100 / c_a100, 19.5 / 15.7, 1e-9);
}

TEST(Platform, SummitCpuIsSlower) {
  // §IX.A: the Summit software stack processes host work slower per core.
  const double host = 1.0;
  EXPECT_GT(summit().scale_cpu_seconds(host),
            cori_v100().scale_cpu_seconds(host) * 1.05);
}

TEST(MemHier, SmallDatasetLivesInDram) {
  // DeepCAM small set: 1536 samples x ~56.6 MiB ~ 85 GiB < 70% of 384 GB.
  DatasetSpec d;
  d.bytes_per_sample = 57 * kMiB;
  d.samples_per_node = 1536;
  d.staged = true;
  EXPECT_EQ(steady_residency(cori_v100(), d), Residency::kHostMem);
}

TEST(MemHier, LargeDatasetFallsToNvmeWhenStaged) {
  // DeepCAM large set: 12288 samples ~ 680 GiB > DRAM, < 1.6 TB NVMe.
  DatasetSpec d;
  d.bytes_per_sample = 57 * kMiB;
  d.samples_per_node = 12288;
  d.staged = true;
  EXPECT_EQ(steady_residency(cori_v100(), d), Residency::kNvme);
  d.staged = false;
  EXPECT_EQ(steady_residency(cori_v100(), d), Residency::kPfs);
}

// The paper's core mechanism: encoding shrinks the large dataset back into
// DRAM.
TEST(MemHier, CompressionPromotesResidency) {
  DatasetSpec raw;
  raw.bytes_per_sample = 57 * kMiB;
  raw.samples_per_node = 12288;
  raw.staged = true;
  ASSERT_EQ(steady_residency(cori_v100(), raw), Residency::kNvme);
  DatasetSpec encoded = raw;
  encoded.bytes_per_sample = raw.bytes_per_sample / 4;  // ~4x codec
  EXPECT_EQ(steady_residency(cori_v100(), encoded), Residency::kHostMem);
}

TEST(MemHier, ReadCostOrdering) {
  const PlatformModel v = cori_v100();
  const std::uint64_t bytes = 16 * kMiB;
  const double dram = sample_read_seconds(v, Residency::kHostMem, bytes, 8);
  const double nvme = sample_read_seconds(v, Residency::kNvme, bytes, 8);
  const double pfs = sample_read_seconds(v, Residency::kPfs, bytes, 8);
  EXPECT_LT(dram, nvme);
  EXPECT_LT(nvme, pfs);
  // NVMe bandwidth is shared: more concurrent readers -> slower each.
  EXPECT_GT(sample_read_seconds(v, Residency::kNvme, bytes, 8),
            sample_read_seconds(v, Residency::kNvme, bytes, 1) * 4);
}

TEST(MemHier, StagingCostOnlyWhenStaged) {
  DatasetSpec d;
  d.bytes_per_sample = 10 * kMiB;
  d.samples_per_node = 100;
  d.staged = false;
  EXPECT_EQ(staging_seconds(cori_v100(), d), 0.0);
  d.staged = true;
  EXPECT_GT(staging_seconds(cori_v100(), d), 0.0);
}

TEST(SimGpu, ExecutesAllWarps) {
  ThreadPool pool(2);
  SimGpu gpu({.sm_count = 4, .warps_per_sm = 2}, &pool);
  std::vector<std::atomic<int>> hits(1000);
  const KernelStats stats = gpu.launch(hits.size(), [&](Warp& warp) {
    hits[warp.id()].fetch_add(1);
    warp.count_read(64);
  });
  for (auto& h : hits) {
    ASSERT_EQ(h.load(), 1);
  }
  EXPECT_EQ(stats.warps, 1000u);
  EXPECT_EQ(stats.bytes_read, 64000u);
  EXPECT_GE(stats.wall_seconds, 0.0);
}

TEST(SimGpu, LanesRunLockstep) {
  SimGpu gpu({.sm_count = 1, .warps_per_sm = 1});
  std::vector<int> order;
  gpu.launch(1, [&](Warp& warp) {
    warp.lanes([&](int lane) { order.push_back(lane); });
  });
  ASSERT_EQ(order.size(), 32u);
  for (int i = 0; i < 32; ++i) {
    EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
  }
}

TEST(SimGpu, CountersAggregate) {
  SimGpu gpu({.sm_count = 2, .warps_per_sm = 2});
  const KernelStats stats = gpu.launch(10, [](Warp& warp) {
    warp.lanes([](int) {});
    warp.count_write(128);
    warp.note_divergence();
  });
  EXPECT_EQ(stats.lockstep_ops, 10u);
  EXPECT_EQ(stats.bytes_written, 1280u);
  EXPECT_EQ(stats.divergent_branches, 10u);
  EXPECT_EQ(gpu.lifetime_stats().warps, 10u);
  // 128 bytes / (1 op * 32 lanes) = 4 B/lane-op boundary -> not BW bound.
  EXPECT_FALSE(stats.bandwidth_bound());
}

TEST(SimGpu, BandwidthBoundHeuristic) {
  KernelStats stats;
  stats.lockstep_ops = 1;
  stats.bytes_read = 1024;
  EXPECT_TRUE(stats.bandwidth_bound());
  stats.bytes_read = 64;
  EXPECT_FALSE(stats.bandwidth_bound());
}

TEST(SimGpu, KernelExceptionsPropagate) {
  SimGpu gpu({.sm_count = 2, .warps_per_sm = 2});
  EXPECT_THROW(gpu.launch(8,
                          [](Warp& warp) {
                            if (warp.id() == 5) throw Error("kernel fault");
                          }),
               Error);
  // Engine survives for subsequent launches.
  const KernelStats stats = gpu.launch(4, [](Warp&) {});
  EXPECT_EQ(stats.warps, 4u);
}

TEST(SimGpu, ZeroWarpLaunchIsNoop) {
  SimGpu gpu({.sm_count = 1, .warps_per_sm = 1});
  const KernelStats stats = gpu.launch(0, [](Warp&) { FAIL(); });
  EXPECT_EQ(stats.warps, 0u);
}

}  // namespace
}  // namespace sciprep::sim
