// Tests for sciprep::obs — span tracer, metrics registry, JSON helpers, and
// the ThreadPool/log wiring.
#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <cstdint>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include "sciprep/common/log.hpp"
#include "sciprep/common/threadpool.hpp"
#include "sciprep/obs/obs.hpp"

namespace sciprep::obs {
namespace {

// --- JSON helpers ----------------------------------------------------------

TEST(JsonEscape, EscapesControlAndQuoteCharacters) {
  EXPECT_EQ(json_escape("plain"), "plain");
  EXPECT_EQ(json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(json_escape("back\\slash"), "back\\\\slash");
  EXPECT_EQ(json_escape("line\nbreak"), "line\\nbreak");
  EXPECT_EQ(json_escape(std::string("nul\0byte", 8)), "nul\\u0000byte");
}

TEST(JsonNumber, NonFiniteBecomesNull) {
  EXPECT_EQ(json_number(std::nan("")), "null");
  EXPECT_EQ(json_number(std::numeric_limits<double>::infinity()), "null");
  EXPECT_EQ(json_number(2.5), "2.5");
}

TEST(JsonValid, AcceptsValidDocuments) {
  EXPECT_TRUE(json_valid("{}"));
  EXPECT_TRUE(json_valid("[1, 2.5e-3, \"x\", null, true, {\"k\": []}]"));
  EXPECT_TRUE(json_valid("{\"a\":{\"b\":[1,-2,3.0]}}"));
}

TEST(JsonValid, RejectsMalformedDocuments) {
  EXPECT_FALSE(json_valid(""));
  EXPECT_FALSE(json_valid("{"));
  EXPECT_FALSE(json_valid("{\"a\":}"));
  EXPECT_FALSE(json_valid("[1,]"));
  EXPECT_FALSE(json_valid("{} trailing"));
  EXPECT_FALSE(json_valid("nan"));
}

// --- Tracer ----------------------------------------------------------------

TEST(Tracer, RecordsAndExportsSpans) {
  Tracer tracer(16);
  tracer.record("decode", "pipeline", 1000, 3000, "{\"i\": 1}");
  tracer.record("ops", "pipeline", 3000, 4000);
  EXPECT_EQ(tracer.size(), 2u);

  const auto spans = tracer.snapshot();
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[0].name, "decode");
  EXPECT_EQ(spans[0].t_start_ns, 1000u);
  EXPECT_EQ(spans[0].args_json, "{\"i\": 1}");
  EXPECT_EQ(spans[1].name, "ops");

  const std::string json = tracer.to_chrome_json();
  EXPECT_TRUE(json_valid(json)) << json;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"decode\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"args\":{\"i\": 1}"), std::string::npos);
}

TEST(Tracer, RingWrapKeepsNewestSpans) {
  Tracer tracer(4);
  for (int i = 0; i < 10; ++i) {
    tracer.record(fmt("span{}", i), "t", static_cast<std::uint64_t>(i),
                  static_cast<std::uint64_t>(i + 1));
  }
  EXPECT_EQ(tracer.size(), 4u);
  EXPECT_EQ(tracer.total_recorded(), 10u);
  const auto spans = tracer.snapshot();
  ASSERT_EQ(spans.size(), 4u);
  EXPECT_EQ(spans.front().name, "span6");  // oldest retained
  EXPECT_EQ(spans.back().name, "span9");

  tracer.clear();
  EXPECT_EQ(tracer.size(), 0u);
  EXPECT_TRUE(json_valid(tracer.to_chrome_json()));
}

TEST(Tracer, ScopedSpanRespectsEnabledFlag) {
  Tracer tracer(16);
  {
    ScopedSpan span(tracer, "off", "t");
    EXPECT_FALSE(span.active());  // tracer disabled by default
  }
  EXPECT_EQ(tracer.size(), 0u);

  tracer.set_enabled(true);
  {
    ScopedSpan span(tracer, "on", "t");
    EXPECT_TRUE(span.active());
    span.set_args_json("{\"k\": 2}");
  }
  ASSERT_EQ(tracer.size(), 1u);
  const auto spans = tracer.snapshot();
  EXPECT_EQ(spans[0].name, "on");
  EXPECT_GE(spans[0].t_end_ns, spans[0].t_start_ns);
  EXPECT_EQ(spans[0].args_json, "{\"k\": 2}");
}

TEST(Tracer, ConcurrentWritersAllLand) {
  Tracer tracer(1 << 12);
  tracer.set_enabled(true);
  constexpr int kThreads = 4;
  constexpr int kPerThread = 200;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&tracer] {
      for (int i = 0; i < kPerThread; ++i) {
        ScopedSpan span(tracer, "work", "mt");
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(tracer.total_recorded(),
            static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_TRUE(json_valid(tracer.to_chrome_json()));
}

// --- Metrics ---------------------------------------------------------------

TEST(Metrics, CounterGaugeBasics) {
  MetricsRegistry registry;
  Counter& c = registry.counter("c_total");
  c.add();
  c.add(4);
  EXPECT_EQ(c.value(), 5u);
  EXPECT_EQ(registry.counter_value("c_total"), 5u);
  EXPECT_EQ(registry.counter_value("missing"), 0u);
  // find-or-create returns the same object
  EXPECT_EQ(&registry.counter("c_total"), &c);

  Gauge& g = registry.gauge("depth");
  g.add(3);
  g.add(2);
  g.add(-4);
  EXPECT_EQ(g.value(), 1);
  EXPECT_EQ(g.high_watermark(), 5);
  g.set(10);
  EXPECT_EQ(g.high_watermark(), 10);
}

TEST(Metrics, HistogramQuantilesMatchPercentileConvention) {
  MetricsRegistry registry;
  Histogram& h = registry.histogram("lat_seconds");
  for (int i = 1; i <= 100; ++i) {
    h.record(static_cast<double>(i) * 1e-3);
  }
  EXPECT_EQ(h.count(), 100u);
  EXPECT_NEAR(h.sum(), 5.050, 1e-9);
  // Log-bucketed: quantiles are bucket-resolution estimates. The default
  // options give 4 buckets per octave, so the relative error of a quantile
  // is bounded by one bucket's width (2^(1/4) ~ 1.19x).
  EXPECT_NEAR(h.quantile(0.5), 50.5e-3, 50.5e-3 * 0.2);
  EXPECT_NEAR(h.quantile(0.9), 90.1e-3, 90.1e-3 * 0.2);
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 1e-3);   // exact at the extremes
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 0.1);
}

TEST(Metrics, RegistryJsonDumpIsValid) {
  MetricsRegistry registry;
  registry.counter("events_total").add(3);
  registry.gauge("level").set(-2);
  registry.histogram("t_seconds").record(1e-3);
  registry.histogram("empty_seconds");  // empty histogram: NaN -> null

  const std::string json = registry.to_json();
  EXPECT_TRUE(json_valid(json)) << json;
  EXPECT_NE(json.find("\"events_total\":3"), std::string::npos);
  EXPECT_NE(json.find("\"high_watermark\":"), std::string::npos);
  EXPECT_NE(json.find("\"p99\":"), std::string::npos);
  EXPECT_NE(json.find("\"mean\":null"), std::string::npos);

  const std::string human = registry.human_dump();
  EXPECT_NE(human.find("events_total"), std::string::npos);

  registry.reset();
  EXPECT_EQ(registry.counter_value("events_total"), 0u);
  EXPECT_EQ(registry.histogram("t_seconds").count(), 0u);
}

TEST(Metrics, PoolMetricsObservesRealThreadPool) {
  MetricsRegistry registry;
  PoolMetrics observer(registry, "pool");
  {
    ThreadPool pool(2);
    pool.set_observer(&observer);
    pool.parallel_for(32, [](std::size_t) {
      std::this_thread::sleep_for(std::chrono::microseconds(100));
    });
    pool.set_observer(nullptr);
  }
  EXPECT_EQ(registry.counter_value("pool.tasks_total"), 32u);
  EXPECT_EQ(registry.gauge("pool.queue_depth").value(), 0);  // drained
  EXPECT_GT(registry.gauge("pool.queue_depth").high_watermark(), 0);
  EXPECT_EQ(registry.histogram("pool.task_run_seconds").count(), 32u);
  EXPECT_EQ(registry.histogram("pool.task_queue_seconds").count(), 32u);
  EXPECT_GT(registry.histogram("pool.task_run_seconds").sum(), 0.0);
}

TEST(Metrics, GlobalRegistryCountsLogEvents) {
  MetricsRegistry& global = MetricsRegistry::global();
  const std::uint64_t warn0 = global.counter_value("log.warnings_total");
  const std::uint64_t err0 = global.counter_value("log.errors_total");
  // Counting happens before threshold filtering: raise the threshold so the
  // warn line is suppressed, and check it is counted anyway.
  const LogLevel level0 = log_level();
  set_log_level(LogLevel::kError);
  log_message(LogLevel::kWarn, "obs test warn (should not print)");
  log_message(LogLevel::kError, "obs test error (expected in output)");
  set_log_level(level0);
  EXPECT_EQ(global.counter_value("log.warnings_total"), warn0 + 1);
  EXPECT_EQ(global.counter_value("log.errors_total"), err0 + 1);
}

// --- Macros ----------------------------------------------------------------

TEST(ObsMacros, SpanMacroRecordsWhenGlobalTracerEnabled) {
  Tracer& tracer = Tracer::global();
  tracer.clear();
  const std::uint64_t before = tracer.total_recorded();
  tracer.set_enabled(true);
  {
    SCIPREP_OBS_SPAN("macro.test", "test");
  }
  tracer.set_enabled(false);
#if defined(SCIPREP_OBS_DISABLED)
  EXPECT_EQ(tracer.total_recorded(), before);  // compiled out
#else
  EXPECT_EQ(tracer.total_recorded(), before + 1);
  const auto spans = tracer.snapshot();
  EXPECT_EQ(spans.back().name, "macro.test");
#endif
  tracer.clear();
}

TEST(ObsMacros, CountMacroBumpsGlobalCounter) {
  const std::uint64_t before =
      MetricsRegistry::global().counter_value("obs_test.macro_total");
  SCIPREP_OBS_COUNT("obs_test.macro_total", 3);
#if defined(SCIPREP_OBS_DISABLED)
  EXPECT_EQ(MetricsRegistry::global().counter_value("obs_test.macro_total"),
            before);
#else
  EXPECT_EQ(MetricsRegistry::global().counter_value("obs_test.macro_total"),
            before + 3);
#endif
}

}  // namespace
}  // namespace sciprep::obs
