#!/bin/sh
# Cross-process serving chaos smoke (ctest -L wire). One trainer process runs
# a WireServer fronting a resident DataService; every consumer is a separate
# trainer process attached over the AF_UNIX socket. The acceptance bar is the
# wire's whole contract at once:
#
#   1. A fault-free run: server + 3 client processes, one per tenant. Every
#      client and the server pass --validate, and each client's delivered-
#      stream digest file is byte-identical to the server's view of the same
#      tenant — the wire moved the bytes without changing them.
#   2. A chaos run on a fresh socket: frame corruption + connection drops are
#      injected into the transport, client 0 hard-exits mid-epoch without
#      detaching (exit 42, no cleanup — the kernel closes its socket exactly
#      like a SIGKILL), and after the lease lapses a replacement process
#      attaches with --resumed and finishes the stream. The surviving
#      clients' digest files must be byte-identical to stage 1, and every
#      tenant's server-side digest file — including the killed tenant's,
#      spanning the death — must be byte-identical to the fault-free run's.
#
# Usage: wire_chaos_smoke.sh <trainer> <work_dir>
set -u

TRAINER=$1
WORK=$2
rm -rf "$WORK"
mkdir -p "$WORK"

# sockaddr_un caps paths at ~107 bytes; the build tree can be deeper than
# that, so sockets live under /tmp, keyed by PID against parallel ctest.
SOCK_REF="/tmp/sciprep_wire_ref_$$.sock"
SOCK_CHAOS="/tmp/sciprep_wire_chaos_$$.sock"
trap 'rm -f "$SOCK_REF" "$SOCK_CHAOS"' EXIT

COMMON="--workload cosmo --samples 24 --epochs 2 --dim 16 --batch 4
        --workers 4 --placement cpu"

fail() {
  echo "wire_chaos_smoke: FAIL: $1" >&2
  for log in "$WORK"/*.log; do
    echo "--- $log ---" >&2
    cat "$log" >&2
  done
  exit 1
}

wait_for_socket() {
  i=0
  while [ ! -S "$1" ]; do
    i=$((i + 1))
    [ "$i" -gt 100 ] && fail "server never bound $1"
    sleep 0.1
  done
}

# --- Stage 1: fault-free reference ------------------------------------------

# shellcheck disable=SC2086  # COMMON is a flag list, splitting is the point
"$TRAINER" $COMMON --serve-socket "$SOCK_REF" --tenants 3 --lease-ms 500 \
  --digest-out "$WORK/ref.digest" --validate >"$WORK/ref.server.log" 2>&1 &
SERVER=$!
wait_for_socket "$SOCK_REF"

for t in 0 1 2; do
  # shellcheck disable=SC2086
  "$TRAINER" $COMMON --connect "$SOCK_REF" --tenant-name "tenant$t" \
    --digest-out "$WORK/ref.c$t.digest" --validate \
    >"$WORK/ref.c$t.log" 2>&1 &
  eval "C$t=\$!"
done
for t in 0 1 2; do
  eval "pid=\$C$t"
  wait "$pid" || fail "fault-free client $t exited non-zero"
done
wait "$SERVER" || fail "fault-free server exited non-zero"

# The wire is transparent: each client's delivered stream is byte-identical
# to the server's per-tenant digest of what it produced.
for t in 0 1 2; do
  cmp -s "$WORK/ref.c$t.digest" "$WORK/ref.digest.tenant$t" ||
    fail "client $t digest differs from the server's (wire not transparent)"
done

# --- Stage 2: chaos — corruption + drops + a mid-epoch process death --------

# shellcheck disable=SC2086
"$TRAINER" $COMMON --serve-socket "$SOCK_CHAOS" --tenants 3 --lease-ms 500 \
  --inject-wire-corrupt 0.05 --inject-wire-drop 0.05 --inject-seed 77 \
  --digest-out "$WORK/chaos.digest" --validate \
  >"$WORK/chaos.server.log" 2>&1 &
SERVER=$!
wait_for_socket "$SOCK_CHAOS"

# Client 0 dies mid-epoch (3 of 12 batches) without detaching.
# shellcheck disable=SC2086
"$TRAINER" $COMMON --connect "$SOCK_CHAOS" --tenant-name tenant0 \
  --kill-after-batches 3 >"$WORK/chaos.c0.log" 2>&1 &
DOOMED=$!
for t in 1 2; do
  # shellcheck disable=SC2086
  "$TRAINER" $COMMON --connect "$SOCK_CHAOS" --tenant-name "tenant$t" \
    --digest-out "$WORK/chaos.c$t.digest" --validate \
    >"$WORK/chaos.c$t.log" 2>&1 &
  eval "C$t=\$!"
done

wait "$DOOMED"
[ $? -eq 42 ] || fail "doomed client was supposed to hard-exit 42"

# Let the lease lapse (500ms) and the sweep suspend + checkpoint tenant0,
# then attach a replacement process that resumes the stream.
sleep 1.5
# shellcheck disable=SC2086
"$TRAINER" $COMMON --connect "$SOCK_CHAOS" --tenant-name tenant0 --resumed \
  --digest-out "$WORK/chaos.c0r.digest" --validate \
  >"$WORK/chaos.c0r.log" 2>&1 ||
  fail "replacement client failed to resume tenant0"

for t in 1 2; do
  eval "pid=\$C$t"
  wait "$pid" || fail "surviving client $t exited non-zero under chaos"
done
wait "$SERVER" || fail "chaos server exited non-zero"

# Isolation: the surviving tenants' delivered streams are byte-identical to
# the fault-free run — a corrupting transport and a dying co-tenant are
# invisible to them.
for t in 1 2; do
  cmp -s "$WORK/chaos.c$t.digest" "$WORK/ref.c$t.digest" ||
    fail "surviving client $t stream diverged under chaos"
done

# Recovery: every tenant's server-side stream — including tenant0's, which
# spans a process death, a lease sweep, and a resumed replacement — is
# byte-identical to the fault-free run's.
for t in 0 1 2; do
  cmp -s "$WORK/chaos.digest.tenant$t" "$WORK/ref.digest.tenant$t" ||
    fail "tenant $t server digest diverged under chaos (not bit-identical)"
done

echo "wire_chaos_smoke: OK"
