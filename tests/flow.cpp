// Unit tests for sciprep::flow — clock-offset estimation, the snapshot
// delta codec, fleet federation, multi-process trace splicing, and the
// end-to-end flow validator.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "sciprep/common/buffer.hpp"
#include "sciprep/common/error.hpp"
#include "sciprep/common/format.hpp"
#include "sciprep/common/rng.hpp"
#include "sciprep/flow/clock.hpp"
#include "sciprep/flow/fleet.hpp"
#include "sciprep/flow/merge.hpp"
#include "sciprep/flow/snapshot.hpp"
#include "sciprep/obs/metrics.hpp"
#include "sciprep/obs/trace.hpp"

namespace {

using namespace sciprep;

// ---------------------------------------------------------------------------
// ClockSyncEstimator

// Simulate an exchange against a remote whose steady clock reads
// local + true_offset, with the given one-way delays.
flow::ClockSample exchange(std::uint64_t t_send_local, std::int64_t true_offset,
                           std::uint64_t delay_out, std::uint64_t delay_back) {
  flow::ClockSample s;
  s.t_send_ns = t_send_local;
  const std::uint64_t t_remote_local = t_send_local + delay_out;
  s.t_remote_ns =
      static_cast<std::uint64_t>(static_cast<std::int64_t>(t_remote_local) +
                                 true_offset);
  s.t_recv_ns = t_remote_local + delay_back;
  return s;
}

TEST(FlowClock, SymmetricExchangeRecoversTheSkewExactly) {
  constexpr std::int64_t kTrueOffset = 7'000'000'123;  // remote is 7s ahead
  flow::ClockSyncEstimator est;
  EXPECT_FALSE(est.estimate().valid);
  est.add_sample(exchange(1'000'000, kTrueOffset, 50'000, 50'000));

  const flow::ClockOffset off = est.estimate();
  ASSERT_TRUE(off.valid);
  EXPECT_EQ(off.offset_ns, kTrueOffset);
  EXPECT_EQ(off.rtt_ns, 100'000u);
  EXPECT_EQ(off.error_bound_ns, 50'000u);
  EXPECT_EQ(off.samples, 1u);

  // local = remote - offset: a remote read maps back onto the local timeline.
  const flow::ClockSample s = exchange(2'000'000, kTrueOffset, 10, 10);
  EXPECT_EQ(flow::remap_remote_ns(s.t_remote_ns, off), 2'000'010u);
}

TEST(FlowClock, MinimumRttSampleWinsOverNoisyOnes) {
  constexpr std::int64_t kTrueOffset = -3'000'000;  // remote started later
  flow::ClockSyncEstimator est;
  // Noisy exchanges: large, asymmetric delays drag the midpoint estimate off.
  est.add_sample(exchange(100'000, kTrueOffset, 900'000, 80'000));
  est.add_sample(exchange(2'000'000, kTrueOffset, 30'000, 700'000));
  const std::int64_t noisy = est.estimate().offset_ns;
  EXPECT_NE(noisy, kTrueOffset);

  // One quiet symmetric exchange beats them all.
  est.add_sample(exchange(4'000'000, kTrueOffset, 4'000, 4'000));
  const flow::ClockOffset off = est.estimate();
  EXPECT_EQ(off.offset_ns, kTrueOffset);
  EXPECT_EQ(off.rtt_ns, 8'000u);
  EXPECT_EQ(off.error_bound_ns, 4'000u);
  EXPECT_EQ(off.samples, 3u);

  // A later, worse sample must not displace the winner.
  est.add_sample(exchange(6'000'000, kTrueOffset, 500'000, 20'000));
  EXPECT_EQ(est.estimate().rtt_ns, 8'000u);
  EXPECT_EQ(est.estimate().samples, 4u);
}

TEST(FlowClock, AsymmetricDelayErrorStaysWithinTheBound) {
  constexpr std::int64_t kTrueOffset = 123'456'789;
  // Worst-case asymmetry: all delay on one leg. The midpoint estimator is
  // then wrong by RTT/2 — exactly the advertised bound, never more.
  for (const auto& [out, back] : {std::pair<std::uint64_t, std::uint64_t>{
                                     200'000, 0},
                                 {0, 200'000},
                                 {150'000, 50'000}}) {
    flow::ClockSyncEstimator est;
    est.add_sample(exchange(1'000'000, kTrueOffset, out, back));
    const flow::ClockOffset off = est.estimate();
    ASSERT_TRUE(off.valid);
    const std::int64_t error = off.offset_ns - kTrueOffset;
    EXPECT_LE(static_cast<std::uint64_t>(error < 0 ? -error : error),
              off.error_bound_ns)
        << "out=" << out << " back=" << back;
  }
}

TEST(FlowClock, NonCausalSamplesAreCountedButNeverSelected) {
  flow::ClockSyncEstimator est;
  flow::ClockSample bogus;
  bogus.t_send_ns = 5'000'000;
  bogus.t_remote_ns = 99;
  bogus.t_recv_ns = 4'000'000;  // t_recv < t_send: hostile or broken peer
  est.add_sample(bogus);
  est.add_sample(bogus);
  EXPECT_EQ(est.samples_seen(), 2u);
  EXPECT_FALSE(est.estimate().valid);

  est.add_sample(exchange(6'000'000, 42, 1'000, 1'000));
  EXPECT_TRUE(est.estimate().valid);
  EXPECT_EQ(est.estimate().offset_ns, 42);
  EXPECT_EQ(est.samples_seen(), 3u);
}

TEST(FlowClock, RemapSaturatesAtZeroAndPreservesMonotonicity) {
  flow::ClockOffset off;
  off.offset_ns = 1'000'000;  // remote epoch predates local by 1ms
  off.valid = true;
  // Remote timestamps before the local epoch clamp instead of wrapping.
  EXPECT_EQ(flow::remap_remote_ns(0, off), 0u);
  EXPECT_EQ(flow::remap_remote_ns(999'999, off), 0u);
  EXPECT_EQ(flow::remap_remote_ns(1'000'001, off), 1u);

  // A monotone remote sequence stays monotone after remap (clamp included).
  std::uint64_t prev = 0;
  for (const std::uint64_t remote :
       {0ull, 500'000ull, 1'000'000ull, 1'500'000ull, 9'000'000ull}) {
    const std::uint64_t local = flow::remap_remote_ns(remote, off);
    EXPECT_GE(local, prev);
    prev = local;
  }
}

// ---------------------------------------------------------------------------
// Snapshot codec + delta algebra

obs::MetricsSnapshot sample_snapshot() {
  obs::MetricsSnapshot s;
  s.counters["pipeline.samples_total"] = 4096;
  s.counters["wire.frames_total"] = 17;
  s.gauges["serve.queue_depth"] = {3, 12};
  s.histograms["flow.client.wait_seconds"] = {64, 0.125};
  s.histograms["stage.decode_seconds"] = {64, 1.5};
  return s;
}

TEST(FlowSnapshot, EncodeDecodeRoundtripsExactly) {
  const obs::MetricsSnapshot s = sample_snapshot();
  const Bytes wire_bytes = flow::encode_snapshot(s);
  const obs::MetricsSnapshot back = flow::decode_snapshot(wire_bytes);
  EXPECT_EQ(back.counters, s.counters);
  ASSERT_EQ(back.gauges.size(), s.gauges.size());
  EXPECT_EQ(back.gauges.at("serve.queue_depth").value, 3);
  EXPECT_EQ(back.gauges.at("serve.queue_depth").high_watermark, 12);
  ASSERT_EQ(back.histograms.size(), s.histograms.size());
  EXPECT_EQ(back.histograms.at("stage.decode_seconds").count, 64u);
  EXPECT_DOUBLE_EQ(back.histograms.at("stage.decode_seconds").sum, 1.5);
}

TEST(FlowSnapshot, DeltaThenAccumulateReconstructsTheTotals) {
  obs::MetricsSnapshot t0;  // zero
  obs::MetricsSnapshot t1 = sample_snapshot();
  obs::MetricsSnapshot t2 = t1;
  t2.counters["pipeline.samples_total"] += 512;
  t2.counters["new.counter"] = 7;  // appears only in the second interval
  t2.gauges["serve.queue_depth"] = {1, 20};
  t2.histograms["stage.decode_seconds"].count += 8;
  t2.histograms["stage.decode_seconds"].sum += 0.25;

  const obs::MetricsSnapshot d1 = flow::snapshot_delta(t1, t0);
  const obs::MetricsSnapshot d2 = flow::snapshot_delta(t2, t1);
  EXPECT_EQ(d2.counters.at("pipeline.samples_total"), 512u);
  EXPECT_EQ(d2.counters.at("new.counter"), 7u);
  EXPECT_EQ(d2.histograms.at("stage.decode_seconds").count, 8u);

  obs::MetricsSnapshot acc;
  flow::snapshot_accumulate(acc, d1);
  flow::snapshot_accumulate(acc, d2);
  EXPECT_EQ(acc.counters, t2.counters);
  // Gauges are levels: accumulate keeps last value / max watermark.
  EXPECT_EQ(acc.gauges.at("serve.queue_depth").value, 1);
  EXPECT_EQ(acc.gauges.at("serve.queue_depth").high_watermark, 20);
  EXPECT_EQ(acc.histograms.at("stage.decode_seconds").count,
            t2.histograms.at("stage.decode_seconds").count);
  EXPECT_NEAR(acc.histograms.at("stage.decode_seconds").sum,
              t2.histograms.at("stage.decode_seconds").sum, 1e-12);
}

TEST(FlowSnapshot, TruncationAtEveryOffsetIsFormatError) {
  const Bytes full = flow::encode_snapshot(sample_snapshot());
  for (std::size_t len = 0; len < full.size(); ++len) {
    const ByteSpan prefix(full.data(), len);
    EXPECT_THROW(flow::decode_snapshot(prefix), FormatError) << "len=" << len;
  }
}

TEST(FlowSnapshot, BadVersionAndLyingEntryCountFailTyped) {
  Bytes bytes = flow::encode_snapshot(sample_snapshot());
  Bytes bad_version = bytes;
  bad_version[0] = static_cast<std::uint8_t>(flow::kSnapshotCodecVersion + 1);
  EXPECT_THROW(flow::decode_snapshot(bad_version), FormatError);

  // Entry count of the first section (u32 right after the version byte)
  // claiming more entries than the payload can hold must fail before any
  // allocation, not overread.
  Bytes lying = bytes;
  lying[1] = 0xFF;
  lying[2] = 0xFF;
  lying[3] = 0xFF;
  lying[4] = 0xFF;
  EXPECT_THROW(flow::decode_snapshot(lying), FormatError);
}

TEST(FlowSnapshot, FuzzedBytesFailTypedNeverCrash) {
  std::uint64_t state = 0xF10F10;
  int decoded = 0;
  for (int iter = 0; iter < 2000; ++iter) {
    Bytes noise(splitmix64(state) % 96);
    for (auto& b : noise) {
      b = static_cast<std::uint8_t>(splitmix64(state));
    }
    try {
      (void)flow::decode_snapshot(noise);
      ++decoded;
    } catch (const FormatError&) {
    }
  }
  EXPECT_LT(decoded, 2000);
}

// ---------------------------------------------------------------------------
// Fleet federation

TEST(FlowFleet, MultiScopeSeriesMergeAndReconcile) {
  // Two scopes, each shipping two delta lines built with the real algebra.
  auto series = [](const std::string& scope, std::uint64_t base) {
    obs::MetricsSnapshot zero;
    obs::MetricsSnapshot t1;
    t1.counters["pipeline.samples_total"] = base;
    t1.histograms["flow.client.wait_seconds"] = {base / 64, 0.5};
    obs::MetricsSnapshot t2 = t1;
    t2.counters["pipeline.samples_total"] += 128;
    std::string text;
    text += flow::fleet_line(scope, 0, 1.0, t1, flow::snapshot_delta(t1, zero));
    text += '\n';
    text += flow::fleet_line(scope, 1, 2.0, t2, flow::snapshot_delta(t2, t1));
    text += '\n';
    return text;
  };

  const flow::FleetMergeResult merged = flow::merge_fleet(
      {{"", series("tenant/a", 1024)}, {"", series("tenant/b", 2048)}});
  EXPECT_EQ(merged.lines_parsed, 4u);
  EXPECT_EQ(merged.lines_skipped, 0u);
  EXPECT_TRUE(merged.reconciled);
  ASSERT_EQ(merged.scopes.size(), 2u);
  EXPECT_EQ(merged.scopes.at("tenant/a").totals.counters.at(
                "pipeline.samples_total"),
            1024u + 128u);
  EXPECT_EQ(merged.scopes.at("tenant/b").totals.counters.at(
                "pipeline.samples_total"),
            2048u + 128u);

  // Prometheus body: one labelled series per scope plus the fleet-wide sum.
  EXPECT_NE(merged.prometheus.find(
                "sciprep_pipeline_samples_total{scope=\"tenant/a\"} 1152"),
            std::string::npos);
  EXPECT_NE(merged.prometheus.find(
                "sciprep_pipeline_samples_total{scope=\"tenant/b\"} 2176"),
            std::string::npos);
  EXPECT_NE(merged.prometheus.find("\nsciprep_pipeline_samples_total 3328\n"),
            std::string::npos);

  // Merged series is itself a valid fleet.v1 input and re-merges cleanly.
  const flow::FleetMergeResult again =
      flow::merge_fleet({{"", merged.merged_jsonl}});
  EXPECT_TRUE(again.reconciled);
  EXPECT_EQ(again.lines_parsed, 4u);

  const std::string summary = merged.summary_json();
  EXPECT_NE(summary.find("\"schema\":\"sciprep.flow.fleetview.v1\""),
            std::string::npos);
  EXPECT_NE(summary.find("\"reconciled\":true"), std::string::npos);
}

TEST(FlowFleet, ScopeHintLabelsExporterStyleLines) {
  // An insight exporter tick carries no schema/scope of its own; the hint
  // names it. The tick's totals double as the delta, so a single line
  // trivially reconciles.
  const std::string tick =
      "{\"t\":3.5,\"counters\":{\"pipeline.samples_total\":{\"total\":640,"
      "\"delta\":640}},\"gauges\":{},\"histograms\":{}}\n";
  const flow::FleetMergeResult merged = flow::merge_fleet({{"rank0", tick}});
  EXPECT_EQ(merged.lines_parsed, 1u);
  ASSERT_EQ(merged.scopes.count("rank0"), 1u);
  EXPECT_TRUE(merged.reconciled);
  EXPECT_EQ(merged.scopes.at("rank0").totals.counters.at(
                "pipeline.samples_total"),
            640u);

  // No hint and no scope in the line -> the "default" bucket.
  const flow::FleetMergeResult unhinted = flow::merge_fleet({{"", tick}});
  EXPECT_EQ(unhinted.scopes.count("default"), 1u);
}

TEST(FlowFleet, CorruptLinesSkipAndALostDeltaBreaksReconciliation) {
  obs::MetricsSnapshot zero;
  obs::MetricsSnapshot t1;
  t1.counters["c"] = 100;
  obs::MetricsSnapshot t2 = t1;
  t2.counters["c"] = 250;

  const std::string l1 =
      flow::fleet_line("tenant/x", 0, 1.0, t1, flow::snapshot_delta(t1, zero));
  const std::string l2 =
      flow::fleet_line("tenant/x", 1, 2.0, t2, flow::snapshot_delta(t2, t1));

  // Garbage and unrelated JSONL streams are skipped, not fatal.
  const std::string with_noise =
      l1 + "\nnot json at all\n{\"schema\":\"other.v1\",\"x\":1}\n" + l2 + "\n";
  const flow::FleetMergeResult ok = flow::merge_fleet({{"", with_noise}});
  EXPECT_EQ(ok.lines_parsed, 2u);
  EXPECT_EQ(ok.lines_skipped, 2u);
  EXPECT_TRUE(ok.reconciled);

  // Losing the first delta line leaves summed deltas (150) short of the
  // declared totals (250): the merge must notice.
  const flow::FleetMergeResult lost = flow::merge_fleet({{"", l2 + "\n"}});
  EXPECT_FALSE(lost.reconciled);
  EXPECT_FALSE(lost.scopes.at("tenant/x").reconciled);

  // Empty input reconciles nothing.
  EXPECT_FALSE(flow::merge_fleet({{"", ""}}).reconciled);
}

// ---------------------------------------------------------------------------
// merge_chrome_json

TEST(FlowMerge, ChromeDocumentCarriesPerProcessTracksOnACommonTimeline) {
  flow::ProcessTrace client;
  client.process_name = "trainer-tenant0";
  client.pid = 101;
  client.thread_names[0] = "consumer";
  obs::TraceSpan batch;
  batch.name = "flow.batch";
  batch.category = "flow";
  batch.t_start_ns = 2'000'000;
  batch.t_end_ns = 5'000'000;
  batch.args_json = "{\"trace_id\":9,\"span_id\":1}";
  client.spans.push_back(batch);

  flow::ProcessTrace server;
  server.process_name = "trainer-server";
  server.pid = 202;
  server.shift_ns = -1'000'000;  // server clock runs 1ms ahead of client
  obs::TraceSpan next;
  next.name = "flow.server.next";
  next.t_start_ns = 3'500'000;  // server timeline -> 2.5ms merged
  next.t_end_ns = 4'500'000;
  server.spans.push_back(next);
  obs::TraceSpan early;  // starts before the client epoch: clamps, no wrap
  early.name = "flow.server.queue_wait";
  early.t_start_ns = 500'000;
  early.t_end_ns = 1'100'000;
  server.spans.push_back(early);

  const std::string doc = flow::merge_chrome_json({client, server});
  // Process metadata with real pids, thread labels, args passthrough.
  EXPECT_NE(doc.find("\"name\":\"process_name\",\"ph\":\"M\",\"pid\":101,"
                     "\"args\":{\"name\":\"trainer-tenant0\"}"),
            std::string::npos);
  EXPECT_NE(doc.find("\"args\":{\"name\":\"trainer-server\"}"),
            std::string::npos);
  EXPECT_NE(doc.find("\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":101,"
                     "\"tid\":0,\"args\":{\"name\":\"consumer\"}"),
            std::string::npos);
  EXPECT_NE(doc.find("\"args\":{\"trace_id\":9,\"span_id\":1}"),
            std::string::npos);
  // The server span lands at ts=2500us on the merged timeline (shift applied,
  // microsecond units), same track as its pid.
  EXPECT_NE(doc.find("\"pid\":202,\"tid\":0,\"ts\":2500,\"dur\":1000"),
            std::string::npos);
  // The straddling span's start clamps to ts=0; only the post-epoch part
  // of its duration survives.
  EXPECT_NE(doc.find("\"ts\":0,\"dur\":100"), std::string::npos);
}

// ---------------------------------------------------------------------------
// validate_flow

struct FlowFixture {
  std::vector<obs::TraceSpan> client;
  std::vector<obs::TraceSpan> server;
  obs::MetricsSnapshot client_metrics;
  obs::MetricsSnapshot server_metrics;
};

obs::TraceSpan make_span(const char* name, std::uint64_t t0_ns,
                         std::uint64_t t1_ns, const std::string& args) {
  obs::TraceSpan s;
  s.name = name;
  s.category = "flow";
  s.t_start_ns = t0_ns;
  s.t_end_ns = t1_ns;
  s.args_json = args;
  return s;
}

// One fully decomposed batch per id: client batch + encode/wait/decode
// children, server next/queue_wait/encode/send, histograms recorded from the
// same intervals.
FlowFixture decomposed_batches(std::uint64_t trace_id, int batches) {
  FlowFixture f;
  auto hist = [](obs::MetricsSnapshot& m, const char* name, double seconds) {
    auto& h = m.histograms[name];
    h.count += 1;
    h.sum += seconds;
  };
  for (int i = 0; i < batches; ++i) {
    const std::uint64_t span_id = 100 + static_cast<std::uint64_t>(i);
    const std::uint64_t base = static_cast<std::uint64_t>(i) * 10'000'000;
    const std::string parent =
        fmt("{{\"trace_id\":{},\"span_id\":{}}}", trace_id, span_id);
    const std::string child =
        fmt("{{\"trace_id\":{},\"parent_span_id\":{}}}", trace_id, span_id);
    f.client.push_back(
        make_span(flow::kClientBatchSpan, base, base + 5'000'000, parent));
    f.client.push_back(make_span(flow::kClientEncodeSpan, base,
                                 base + 1'000'000, child));
    f.client.push_back(make_span(flow::kClientWaitSpan, base + 1'000'000,
                                 base + 4'000'000, child));
    f.client.push_back(make_span(flow::kClientDecodeSpan, base + 4'000'000,
                                 base + 5'000'000, child));
    hist(f.client_metrics, flow::kClientEncodeSeconds, 1e-3);
    hist(f.client_metrics, flow::kClientWaitSeconds, 3e-3);
    hist(f.client_metrics, flow::kClientDecodeSeconds, 1e-3);
    // Server timeline is arbitrary: linkage is by args, not by timestamps.
    const std::uint64_t sbase = 777'000'000 + base;
    f.server.push_back(make_span(flow::kServerNextSpan, sbase,
                                 sbase + 2'000'000, child));
    f.server.push_back(make_span(flow::kServerQueueWaitSpan, sbase,
                                 sbase + 500'000, child));
    f.server.push_back(make_span(flow::kServerEncodeSpan, sbase + 500'000,
                                 sbase + 1'500'000, child));
    f.server.push_back(make_span(flow::kServerSendSpan, sbase + 1'500'000,
                                 sbase + 2'000'000, child));
    // Read-ahead is trace enrichment only; the validator must ignore it.
    f.server.push_back(make_span(flow::kServerReadaheadSpan, sbase,
                                 sbase + 9'000'000, child));
    hist(f.server_metrics, flow::kServerQueueWaitSeconds, 0.5e-3);
    hist(f.server_metrics, flow::kServerEncodeSeconds, 1e-3);
    hist(f.server_metrics, flow::kServerSendSeconds, 0.5e-3);
  }
  return f;
}

TEST(FlowValidate, FullyDecomposedRunValidatesAndCrossChecksHistograms) {
  const FlowFixture f = decomposed_batches(0xAB, 6);
  const flow::FlowValidation v = flow::validate_flow(
      f.client, f.server, f.client_metrics, f.server_metrics);
  EXPECT_EQ(v.client_batches, 6u);
  EXPECT_EQ(v.linked, 6u);
  EXPECT_EQ(v.decomposed, 6u);
  EXPECT_DOUBLE_EQ(v.decomposed_fraction, 1.0);
  EXPECT_NEAR(v.client_span_seconds, 6 * 5e-3, 1e-9);
  EXPECT_NEAR(v.server_span_seconds, 6 * 2e-3, 1e-9);
  EXPECT_TRUE(v.histograms_consistent);
  EXPECT_NE(v.to_json().find("\"schema\":\"sciprep.flow.validation.v1\""),
            std::string::npos);
}

TEST(FlowValidate, MissingServerOrChildSpansDegradeTheCounts) {
  FlowFixture f = decomposed_batches(0xCD, 4);
  // Drop every server span of the last batch -> one batch unlinked.
  const std::string last_child = fmt("{{\"trace_id\":{},\"parent_span_id\":{}}}",
                                     0xCD, 103);
  std::erase_if(f.server, [&](const obs::TraceSpan& s) {
    return s.args_json == last_child;
  });
  // Drop the decode child of the first batch -> linked but not decomposed.
  std::erase_if(f.client, [&](const obs::TraceSpan& s) {
    return s.name == flow::kClientDecodeSpan &&
           s.args_json.find("\"parent_span_id\":100") != std::string::npos;
  });
  const flow::FlowValidation v = flow::validate_flow(
      f.client, f.server, f.client_metrics, f.server_metrics);
  EXPECT_EQ(v.client_batches, 4u);
  EXPECT_EQ(v.linked, 3u);
  EXPECT_EQ(v.decomposed, 2u);
  EXPECT_DOUBLE_EQ(v.decomposed_fraction, 0.5);
}

TEST(FlowValidate, HistogramDivergenceFailsUnlessSpansWereDropped) {
  FlowFixture f = decomposed_batches(0xEF, 3);
  f.server_metrics.histograms[flow::kServerSendSeconds].sum += 0.5;  // lies
  const flow::FlowValidation diverged = flow::validate_flow(
      f.client, f.server, f.client_metrics, f.server_metrics);
  EXPECT_FALSE(diverged.histograms_consistent);

  // A wrapped span ring makes the sums diverge by construction; the check
  // reports consistent rather than blaming instrumentation.
  const flow::FlowValidation wrapped = flow::validate_flow(
      f.client, f.server, f.client_metrics, f.server_metrics,
      /*client_spans_dropped=*/0, /*server_spans_dropped=*/5);
  EXPECT_TRUE(wrapped.histograms_consistent);
}

TEST(FlowValidate, ForeignTenantServerSpansAreExcludedFromTheSums) {
  FlowFixture f = decomposed_batches(0x22, 3);
  // The server's span ring is shared by every tenant it serves: another
  // tenant's spans ride along in the pulled trace, but its time lives in a
  // different per-tenant registry and must not skew this client's check.
  const FlowFixture other = decomposed_batches(0x33, 5);
  f.server.insert(f.server.end(), other.server.begin(), other.server.end());
  const flow::FlowValidation v = flow::validate_flow(
      f.client, f.server, f.client_metrics, f.server_metrics);
  EXPECT_EQ(v.client_batches, 3u);
  EXPECT_EQ(v.decomposed, 3u);
  EXPECT_NEAR(v.server_span_seconds, 3 * 2e-3, 1e-9);
  EXPECT_TRUE(v.histograms_consistent);
}

TEST(FlowValidate, SpansWithoutLinkageArgsAreInvisible) {
  FlowFixture f = decomposed_batches(0x11, 2);
  // Ambient spans with no args (pipeline stages, readahead without ids) and
  // spans whose args carry no trace_id must not affect the accounting.
  f.client.push_back(make_span(flow::kClientBatchSpan, 0, 1'000, ""));
  f.client.push_back(make_span(flow::kClientBatchSpan, 0, 1'000,
                               "{\"batch\":7}"));
  f.server.push_back(make_span(flow::kServerNextSpan, 0, 1'000, ""));
  const flow::FlowValidation v = flow::validate_flow(
      f.client, f.server, f.client_metrics, f.server_metrics);
  EXPECT_EQ(v.client_batches, 2u);
  EXPECT_EQ(v.linked, 2u);
  EXPECT_DOUBLE_EQ(v.decomposed_fraction, 1.0);
  EXPECT_TRUE(v.histograms_consistent);
}

}  // namespace
