// Tests for sciprep::fault: injector determinism, recovery-policy dispatch
// (retry / skip / fallback / fail), error-budget escalation, quarantine
// accounting, and the prefetch-failure contract of DataPipeline.
#include <gtest/gtest.h>

#include <algorithm>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "sciprep/codec/cam_codec.hpp"
#include "sciprep/codec/cosmo_codec.hpp"
#include "sciprep/common/error.hpp"
#include "sciprep/fault/fault.hpp"
#include "sciprep/pipeline/pipeline.hpp"
#include "sciprep/sim/simgpu.hpp"

namespace sciprep::pipeline {
namespace {

data::CosmoGenerator cosmo_gen(int dim = 16) {
  data::CosmoGenConfig cfg;
  cfg.dim = dim;
  cfg.seed = 11;
  return data::CosmoGenerator(cfg);
}

/// A pipeline over an encoded cosmo dataset with an attached injector.
struct Rig {
  explicit Rig(std::size_t n) : gen(cosmo_gen()), registry() {
    dataset.emplace(
        InMemoryDataset::make_cosmo(gen, n, StorageFormat::kEncoded, &codec));
  }

  DataPipeline make(fault::Injector* injector, fault::FaultPolicy policy,
                    PipelineConfig base = {}, sim::SimGpu* gpu = nullptr) {
    base.seed = 5;
    base.metrics = &registry;
    base.fault_policy = policy;
    base.injector = injector;
    return DataPipeline(*dataset, codec, base, gpu);
  }

  data::CosmoGenerator gen;
  codec::CosmoCodec codec;
  obs::MetricsRegistry registry;
  std::optional<InMemoryDataset> dataset;
};

/// Drain a full epoch; returns the number of delivered samples.
std::uint64_t drain_epoch(DataPipeline& pipe, std::uint64_t epoch) {
  pipe.start_epoch(epoch);
  Batch batch;
  std::uint64_t delivered = 0;
  std::uint64_t last_index = 0;
  bool first = true;
  while (pipe.next_batch(batch)) {
    EXPECT_GT(batch.size(), 0);  // empty batches must never surface
    if (!first) {
      EXPECT_EQ(batch.index_in_epoch, last_index + 1);  // indices contiguous
    }
    first = false;
    last_index = batch.index_in_epoch;
    delivered += static_cast<std::uint64_t>(batch.size());
  }
  return delivered;
}

TEST(Injector, DecisionsAreDeterministicAcrossInstancesAndCallOrder) {
  obs::MetricsRegistry reg_a;
  obs::MetricsRegistry reg_b;
  fault::Injector a(42, &reg_a);
  fault::Injector b(42, &reg_b);
  const fault::SiteConfig cfg{.transient_probability = 0.3,
                              .corrupt_probability = 0.3,
                              .truncate_probability = 0.1};
  a.configure(fault::Site::kIoRead, cfg);
  b.configure(fault::Site::kIoRead, cfg);

  const Bytes payload(256, 0xAB);
  std::vector<bool> threw_a;
  std::vector<Bytes> mutated_a;
  for (std::uint64_t op = 0; op < 200; ++op) {
    bool threw = false;
    try {
      a.on_operation(fault::Site::kIoRead, op);
    } catch (const TransientError&) {
      threw = true;
    }
    threw_a.push_back(threw);
    Bytes scratch;
    const ByteSpan out =
        a.mutate(fault::Site::kIoRead, op, ByteSpan(payload), scratch);
    mutated_a.emplace_back(out.begin(), out.end());
  }
  // Replay in reverse order on the second instance: decisions must be pure
  // functions of (seed, site, op), not of call order.
  for (std::uint64_t op = 200; op-- > 0;) {
    bool threw = false;
    try {
      b.on_operation(fault::Site::kIoRead, op);
    } catch (const TransientError&) {
      threw = true;
    }
    EXPECT_EQ(threw, threw_a[op]) << "op " << op;
    Bytes scratch;
    const ByteSpan out =
        b.mutate(fault::Site::kIoRead, op, ByteSpan(payload), scratch);
    EXPECT_EQ(Bytes(out.begin(), out.end()), mutated_a[op]) << "op " << op;
  }
  EXPECT_GT(a.injected_total(), 0u);
  EXPECT_EQ(a.injected_total(), b.injected_total());
  EXPECT_EQ(reg_a.counter_value("fault.io.read_total"), a.injected_total());
}

TEST(Injector, DifferentSeedsDisagree) {
  obs::MetricsRegistry reg;
  fault::Injector a(1, &reg);
  fault::Injector b(2, &reg);
  const fault::SiteConfig cfg{.transient_probability = 0.5};
  a.configure(fault::Site::kCodecDecode, cfg);
  b.configure(fault::Site::kCodecDecode, cfg);
  int disagreements = 0;
  for (std::uint64_t op = 0; op < 64; ++op) {
    const auto fires = [&](const fault::Injector& inj) {
      try {
        inj.on_operation(fault::Site::kCodecDecode, op);
        return false;
      } catch (const TransientError&) {
        return true;
      }
    };
    disagreements += fires(a) != fires(b) ? 1 : 0;
  }
  EXPECT_GT(disagreements, 0);
}

TEST(Injector, ZeroConfigIsTransparent) {
  obs::MetricsRegistry reg;
  const fault::Injector inj(7, &reg);
  const Bytes payload(64, 1);
  Bytes scratch;
  for (std::uint64_t op = 0; op < 32; ++op) {
    EXPECT_NO_THROW(inj.on_operation(fault::Site::kIoRead, op));
    const ByteSpan out =
        inj.mutate(fault::Site::kCodecDecode, op, ByteSpan(payload), scratch);
    // Not just equal bytes: the span must alias the original (no copy made).
    EXPECT_EQ(out.data(), payload.data());
  }
  EXPECT_EQ(inj.injected_total(), 0u);
  EXPECT_TRUE(scratch.empty());
}

TEST(Injector, SiteNamesMatchTheDocumentedAddresses) {
  EXPECT_STREQ(fault::site_name(fault::Site::kIoRead), "io.read");
  EXPECT_STREQ(fault::site_name(fault::Site::kTfrecordPayloadCrc),
               "tfrecord.payload_crc");
  EXPECT_STREQ(fault::site_name(fault::Site::kH5ChunkCrc), "h5lite.chunk_crc");
  EXPECT_STREQ(fault::site_name(fault::Site::kCodecDecode), "codec.decode");
  EXPECT_STREQ(fault::site_name(fault::Site::kGpuLaunch), "gpu.launch");
  EXPECT_STREQ(fault::site_name(fault::Site::kWireFrameCrc), "wire.frame_crc");
  EXPECT_STREQ(fault::site_name(fault::Site::kWireConnDrop), "wire.conn_drop");
}

TEST(Injector, GlobalInstallAppliesToNewPipelines) {
  Rig rig(6);
  obs::MetricsRegistry inj_reg;
  fault::Injector inj(9, &inj_reg);
  inj.configure(fault::Site::kCodecDecode, {.corrupt_probability = 1.0});
  fault::Injector::install_global(&inj);
  fault::FaultPolicy policy;
  policy.on_corrupt = fault::Action::kSkipSample;
  PipelineConfig base;
  base.shuffle = false;
  base.prefetch = false;
  {
    // No per-pipeline injector: the global one must be picked up.
    DataPipeline pipe = rig.make(nullptr, policy, base);
    EXPECT_EQ(drain_epoch(pipe, 0), 0u);
    EXPECT_EQ(pipe.stats().samples_skipped, 6u);
  }
  fault::Injector::install_global(nullptr);
  rig.registry.reset();  // the two pipelines share the rig's registry
  {
    DataPipeline pipe = rig.make(nullptr, policy, base);
    EXPECT_EQ(drain_epoch(pipe, 0), 6u);
    EXPECT_EQ(pipe.stats().samples_skipped, 0u);
  }
}

TEST(FaultPolicy, DefaultKFailRethrowsOutOfNextBatch) {
  Rig rig(8);
  fault::Injector inj(3, &rig.registry);
  inj.configure(fault::Site::kCodecDecode, {.corrupt_probability = 1.0});
  PipelineConfig base;
  base.shuffle = false;
  base.prefetch = false;
  base.batch_size = 4;
  DataPipeline pipe = rig.make(&inj, fault::FaultPolicy{}, base);
  Batch batch;
  EXPECT_THROW(pipe.next_batch(batch), Error);
}

TEST(FaultPolicy, SkipSampleKeepsTheEpochGoingAndQuarantines) {
  Rig rig(32);
  fault::Injector inj(21, &rig.registry);
  inj.configure(fault::Site::kCodecDecode, {.corrupt_probability = 0.3});
  fault::FaultPolicy policy;
  policy.on_corrupt = fault::Action::kSkipSample;
  PipelineConfig base;
  base.batch_size = 4;
  DataPipeline pipe = rig.make(&inj, policy, base);

  const std::uint64_t delivered = drain_epoch(pipe, 0);
  const PipelineStats stats = pipe.stats();
  EXPECT_EQ(delivered, stats.samples);
  EXPECT_EQ(stats.samples + stats.samples_skipped, 32u);
  EXPECT_GT(stats.samples_skipped, 0u);
  EXPECT_LT(stats.samples_skipped, 32u);
  EXPECT_TRUE(stats.degraded);
  const auto quarantined = pipe.quarantine();
  EXPECT_EQ(quarantined.size(), stats.samples_skipped);
  EXPECT_TRUE(std::is_sorted(quarantined.begin(), quarantined.end()));
  // Counters mirror into the injected registry.
  EXPECT_EQ(rig.registry.counter_value("pipeline.samples_skipped_total"),
            stats.samples_skipped);
}

TEST(FaultPolicy, CorruptionIsAtRestSoTheSameSamplesSkipEveryEpoch) {
  Rig rig(24);
  fault::Injector inj(21, &rig.registry);
  inj.configure(fault::Site::kCodecDecode, {.corrupt_probability = 0.25});
  fault::FaultPolicy policy;
  policy.on_corrupt = fault::Action::kSkipSample;
  DataPipeline pipe = rig.make(&inj, policy);

  (void)drain_epoch(pipe, 0);
  const auto after_first = pipe.quarantine();
  const std::uint64_t skipped_first = pipe.stats().samples_skipped;
  ASSERT_GT(skipped_first, 0u);
  (void)drain_epoch(pipe, 1);
  // Epoch 2 re-skips exactly the same ids: the quarantine set is unchanged
  // while the skip-event counter doubled.
  EXPECT_EQ(pipe.quarantine(), after_first);
  EXPECT_EQ(pipe.stats().samples_skipped, 2 * skipped_first);
}

TEST(FaultPolicy, EpochRestartResetsPerEpochRecoveryState) {
  // Learn how many skips one epoch of this (dataset, injector seed) costs.
  std::uint64_t skips_per_epoch = 0;
  {
    Rig probe_rig(24);
    fault::Injector inj(99, &probe_rig.registry);
    inj.configure(fault::Site::kCodecDecode, {.corrupt_probability = 0.3});
    fault::FaultPolicy generous;
    generous.on_corrupt = fault::Action::kSkipSample;
    generous.error_budget = 1u << 20;
    DataPipeline probe = probe_rig.make(&inj, generous);
    const std::uint64_t delivered = drain_epoch(probe, 0);
    skips_per_epoch = probe.stats().samples_skipped;
    ASSERT_GT(skips_per_epoch, 0u);
    ASSERT_EQ(delivered + skips_per_epoch, 24u);
  }

  // Now give the pipeline an *exact* budget: enough for one epoch's skips
  // and not one more. Epoch 1 only survives if start_epoch() refills the
  // budget, clears the epoch quarantine, and rewinds the prefetch cursor —
  // i.e. if per-epoch recovery state really resets on restart.
  Rig rig(24);
  fault::Injector inj(99, &rig.registry);
  inj.configure(fault::Site::kCodecDecode, {.corrupt_probability = 0.3});
  fault::FaultPolicy exact;
  exact.on_corrupt = fault::Action::kSkipSample;
  exact.error_budget = skips_per_epoch;
  DataPipeline pipe = rig.make(&inj, exact);

  const std::uint64_t epoch0 = drain_epoch(pipe, 0);
  const auto epoch0_quarantine = pipe.epoch_quarantine();
  ASSERT_EQ(epoch0 + skips_per_epoch, 24u);
  ASSERT_EQ(epoch0_quarantine.size(), skips_per_epoch);

  const std::uint64_t epoch1 = drain_epoch(pipe, 1);
  // Epoch 1 saw the full dataset again: every sample was re-attempted, the
  // same at-rest-corrupt records re-skipped under a refilled budget, and the
  // per-epoch quarantine rebuilt from scratch to the same ids.
  EXPECT_EQ(epoch1, epoch0);
  EXPECT_EQ(pipe.epoch_quarantine(), epoch0_quarantine);
  EXPECT_EQ(pipe.stats().samples_skipped, 2 * skips_per_epoch);
  // The lifetime quarantine de-duplicates re-skips.
  EXPECT_EQ(pipe.quarantine(), epoch0_quarantine);
}

TEST(FaultPolicy, RunsAreBitIdenticalUnderAFixedSeedPair) {
  Rig rig(40);
  fault::FaultPolicy policy;
  policy.on_transient = fault::Action::kRetry;
  policy.retry = {.max_attempts = 3, .backoff_seconds = 0};
  policy.on_retry_exhausted = fault::Action::kSkipSample;
  policy.on_corrupt = fault::Action::kSkipSample;

  auto run = [&](std::size_t workers, bool prefetch) {
    obs::MetricsRegistry reg;
    fault::Injector inj(77, &reg);
    inj.configure(fault::Site::kIoRead, {.transient_probability = 0.25});
    inj.configure(fault::Site::kCodecDecode, {.corrupt_probability = 0.05});
    PipelineConfig base;
    base.batch_size = 4;
    base.worker_threads = workers;
    base.prefetch = prefetch;
    base.seed = 5;
    base.metrics = &reg;
    base.fault_policy = policy;
    base.injector = &inj;
    DataPipeline pipe(*rig.dataset, rig.codec, base);
    std::uint64_t delivered = 0;
    for (std::uint64_t epoch = 0; epoch < 2; ++epoch) {
      delivered += drain_epoch(pipe, epoch);
    }
    const PipelineStats stats = pipe.stats();
    EXPECT_EQ(stats.samples + stats.samples_skipped, 80u);
    return std::make_tuple(delivered, stats.samples_skipped, stats.retries,
                           pipe.quarantine());
  };

  const auto a = run(1, false);
  const auto b = run(4, true);  // different parallelism, same decisions
  EXPECT_EQ(a, b);
  EXPECT_GT(std::get<2>(a), 0u);       // retries actually happened
  EXPECT_FALSE(std::get<3>(a).empty());  // and some samples were skipped
}

TEST(FaultPolicy, RetryRecoversTransientsWithoutSkipping) {
  Rig rig(16);
  fault::Injector inj(5, &rig.registry);
  // 30% transient faults, independent per attempt: three attempts push the
  // per-sample loss probability down to 2.7%, so retries do the heavy lifting.
  inj.configure(fault::Site::kIoRead, {.transient_probability = 0.3});
  fault::FaultPolicy policy;
  policy.on_transient = fault::Action::kRetry;
  policy.retry = {.max_attempts = 3, .backoff_seconds = 1e-5};
  policy.on_retry_exhausted = fault::Action::kSkipSample;
  DataPipeline pipe = rig.make(&inj, policy);

  const std::uint64_t delivered = drain_epoch(pipe, 0);
  const PipelineStats stats = pipe.stats();
  EXPECT_EQ(delivered + stats.samples_skipped, 16u);
  EXPECT_GT(stats.retries, 0u);
  EXPECT_EQ(rig.registry.counter_value("pipeline.retries_total"),
            stats.retries);
  EXPECT_GT(
      rig.registry.histogram("pipeline.stage.retry_backoff_seconds").count(),
      0u);
}

TEST(FaultPolicy, GpuLaunchFaultsFallBackToCpuDecode) {
  Rig rig(10);
  sim::SimGpu gpu({.sm_count = 2, .warps_per_sm = 2});
  fault::Injector inj(13, &rig.registry);
  inj.configure(fault::Site::kGpuLaunch, {.transient_probability = 1.0});
  fault::FaultPolicy policy;
  policy.on_transient = fault::Action::kFallback;
  PipelineConfig base;
  base.shuffle = false;
  base.prefetch = false;
  base.decode_placement = codec::Placement::kGpu;
  DataPipeline pipe = rig.make(&inj, policy, base, &gpu);

  const std::uint64_t delivered = drain_epoch(pipe, 0);
  const PipelineStats stats = pipe.stats();
  EXPECT_EQ(delivered, 10u);
  EXPECT_EQ(stats.samples_skipped, 0u);
  EXPECT_EQ(stats.fallbacks, 10u);
  EXPECT_TRUE(stats.degraded);

  // The fallback output is the CPU decode of the same bytes — bit-exact
  // against a clean CPU pipeline.
  PipelineConfig cpu_base;
  cpu_base.shuffle = false;
  cpu_base.prefetch = false;
  DataPipeline cpu_pipe = rig.make(nullptr, fault::FaultPolicy{}, cpu_base);
  pipe.start_epoch(0);
  Batch batch;
  ASSERT_TRUE(pipe.next_batch(batch));
  const codec::TensorF16& got = batch.samples.front();  // shuffle is off
  const codec::TensorF16 want = cpu_pipe.decode_sample(0);
  ASSERT_EQ(got.values.size(), want.values.size());
  for (std::size_t i = 0; i < got.values.size(); ++i) {
    ASSERT_EQ(got.values[i].bits(), want.values[i].bits());
  }
}

TEST(FaultPolicy, ErrorBudgetEscalatesToFailure) {
  Rig rig(12);
  fault::Injector inj(3, &rig.registry);
  inj.configure(fault::Site::kCodecDecode, {.corrupt_probability = 1.0});
  fault::FaultPolicy policy;
  policy.on_corrupt = fault::Action::kSkipSample;
  policy.error_budget = 5;  // every sample is corrupt; the 6th skip is denied
  PipelineConfig base;
  base.shuffle = false;
  base.prefetch = false;
  base.batch_size = 1;
  base.worker_threads = 1;
  DataPipeline pipe = rig.make(&inj, policy, base);

  Batch batch;
  std::uint64_t failures = 0;
  for (int i = 0; i < 12; ++i) {
    try {
      if (!pipe.next_batch(batch)) break;
      FAIL() << "every sample is corrupt — nothing should be delivered";
    } catch (const Error&) {
      ++failures;
    }
  }
  EXPECT_GT(failures, 0u);
  EXPECT_EQ(pipe.stats().samples_skipped, 5u);
}

// Satellite regression: an exception inside the prefetch future must not
// leave the pipeline holding a consumed future — the next next_batch() call
// is well-defined, continues with the remaining ranges, and the epoch
// terminates.
TEST(Pipeline, PrefetchFutureExceptionLeavesNextBatchWellDefined) {
  Rig rig(20);
  fault::Injector inj(17, &rig.registry);
  // Half the samples corrupt under kFail: several batches (sync and
  // prefetched alike) throw on delivery.
  inj.configure(fault::Site::kCodecDecode, {.corrupt_probability = 0.5});
  PipelineConfig base;
  base.batch_size = 2;
  base.prefetch = true;
  base.worker_threads = 2;
  DataPipeline pipe = rig.make(&inj, fault::FaultPolicy{}, base);

  auto count_epoch = [&](std::uint64_t epoch) {
    pipe.start_epoch(epoch);
    Batch batch;
    std::uint64_t throws = 0;
    std::uint64_t delivered_batches = 0;
    for (int guard = 0; guard < 64; ++guard) {
      try {
        if (!pipe.next_batch(batch)) break;
        ++delivered_batches;
      } catch (const Error&) {
        ++throws;
      }
    }
    // Every range surfaces exactly once — as a batch or as one exception.
    EXPECT_EQ(throws + delivered_batches, 10u);
    EXPECT_GT(throws, 0u);
    EXPECT_GT(delivered_batches, 0u);
    return std::make_pair(throws, delivered_batches);
  };

  const auto first = count_epoch(0);
  // The pipeline stays usable for further epochs after mid-prefetch throws.
  const auto second = count_epoch(1);
  EXPECT_EQ(first.first + first.second, second.first + second.second);
}

// Satellite: the per-epoch quarantine cap. A wholly corrupt dataset under
// the skip policy may quarantine at most `quarantine_cap` samples per epoch;
// the next skip escalates to failure and is reported as kBudgetExhausted
// naming the cap — it must not quarantine its way through one sample at a
// time forever.
TEST(FaultPolicy, QuarantineCapEscalatesWithinTheEpoch) {
  Rig rig(12);
  fault::Injector inj(3, &rig.registry);
  inj.configure(fault::Site::kCodecDecode, {.corrupt_probability = 1.0});
  fault::FaultPolicy policy;
  policy.on_corrupt = fault::Action::kSkipSample;
  policy.error_budget = 100;   // ample: the cap, not the budget, escalates
  policy.quarantine_cap = 4;

  std::mutex events_mutex;
  std::uint64_t skips = 0;
  std::vector<std::string> exhausted_details;
  PipelineConfig base;
  base.shuffle = false;
  base.prefetch = false;
  base.batch_size = 1;
  base.worker_threads = 1;
  base.on_recovery_event = [&](const fault::RecoveryEvent& event) {
    const std::lock_guard lock(events_mutex);
    if (event.kind == fault::EventKind::kSkipSample) ++skips;
    if (event.kind == fault::EventKind::kBudgetExhausted) {
      exhausted_details.push_back(event.detail);
    }
  };
  DataPipeline pipe = rig.make(&inj, policy, base);

  pipe.start_epoch(0);
  Batch batch;
  EXPECT_THROW(pipe.next_batch(batch), Error);
  EXPECT_EQ(skips, 4u);  // exactly the cap was quarantined, then escalation
  ASSERT_FALSE(exhausted_details.empty());
  EXPECT_NE(exhausted_details.front().find("quarantine cap 4"),
            std::string::npos);
  EXPECT_EQ(pipe.stats().samples, 0u);
}

// Satellite: the lifetime quarantine list is a bounded structure. Feeding
// the pipeline disjoint (all-corrupt) sample windows per epoch accumulates
// more distinct quarantined ids than the cap; the list must compact to the
// newest `cap` ids and count the evicted ones.
TEST(FaultPolicy, QuarantineListEvictsOldestPastTheCapAcrossEpochs) {
  Rig rig(9);
  fault::Injector inj(3, &rig.registry);
  inj.configure(fault::Site::kCodecDecode, {.corrupt_probability = 1.0});
  fault::FaultPolicy policy;
  policy.on_corrupt = fault::Action::kSkipSample;
  policy.quarantine_cap = 5;
  PipelineConfig base;
  base.shuffle = false;
  base.prefetch = false;
  base.batch_size = 3;
  base.worker_threads = 1;
  // Three disjoint ids per epoch: 3 skips stay under the per-epoch cap while
  // the lifetime set grows to 9 distinct ids.
  base.epoch_order = [](std::uint64_t epoch) {
    std::vector<std::size_t> ids;
    for (std::size_t i = 0; i < 3; ++i) ids.push_back(3 * epoch + i);
    return ids;
  };
  DataPipeline pipe = rig.make(&inj, policy, base);

  for (std::uint64_t epoch = 0; epoch < 3; ++epoch) {
    EXPECT_EQ(drain_epoch(pipe, epoch), 0u);
  }
  // 9 distinct ids ever skipped, cap 5: ids 0-3 were evicted oldest-first.
  const std::vector<std::size_t> expect{4, 5, 6, 7, 8};
  EXPECT_EQ(pipe.quarantine(), expect);
  EXPECT_EQ(rig.registry.counter_value("fault.quarantine_evictions_total"),
            4u);
}

TEST(Pipeline, AllSamplesSkippedYieldsCleanEmptyEpoch) {
  Rig rig(6);
  fault::Injector inj(2, &rig.registry);
  inj.configure(fault::Site::kCodecDecode, {.corrupt_probability = 1.0});
  fault::FaultPolicy policy;
  policy.on_corrupt = fault::Action::kSkipSample;
  PipelineConfig base;
  base.batch_size = 4;
  DataPipeline pipe = rig.make(&inj, policy, base);
  EXPECT_EQ(drain_epoch(pipe, 0), 0u);
  const PipelineStats stats = pipe.stats();
  EXPECT_EQ(stats.samples, 0u);
  EXPECT_EQ(stats.batches, 0u);
  EXPECT_EQ(stats.samples_skipped, 6u);
  EXPECT_EQ(pipe.quarantine().size(), 6u);
}

}  // namespace
}  // namespace sciprep::pipeline
