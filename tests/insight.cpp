// Tests for sciprep::insight — the critical-path analyzer (synthetic stage
// mixes with a known dominant stage, the occupancy-sum property, span-vs-
// histogram drift detection, the unattributed-histogram audit), the
// continuous exporter (tick deltas, rates, final-flush-on-stop), and the
// flight recorder (parseable incident dumps, rate limiting with the
// first-of-kind bypass, the incident cap).
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "sciprep/fault/fault.hpp"
#include "sciprep/insight/insight.hpp"
#include "sciprep/obs/json.hpp"
#include "sciprep/obs/metrics.hpp"
#include "sciprep/obs/trace.hpp"

namespace sciprep::insight {
namespace {

/// Fresh per-test scratch directory under gtest's temp root.
std::string scratch_dir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "/insight_" + name;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

#if !defined(SCIPREP_OBS_DISABLED)

/// Record `total` seconds into `hist` as `events` equal samples.
void fill_stage(obs::MetricsRegistry& reg, const char* hist, double total,
                int events = 4) {
  obs::Histogram& h = reg.histogram(hist);
  for (int i = 0; i < events; ++i) {
    h.record(total / events);
  }
}

std::string read_all(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

std::size_t count_incident_files(const std::string& dir) {
  std::size_t n = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.path().filename().string().rfind("incident-", 0) == 0) ++n;
  }
  return n;
}

// --- Critical-path analyzer ------------------------------------------------

TEST(Analyze, DecodeDominatedMixRanksDecodeFirst) {
  obs::MetricsRegistry reg;
  obs::Tracer tracer(64);  // empty: spans_complete stays false
  // decode histogram is inclusive of io + gunzip + backoff; the exclusive
  // decode cost the analyzer must report is 1.00 - 0.10 - 0.05 = 0.85 s.
  fill_stage(reg, "pipeline.stage.decode_seconds", 1.00);
  fill_stage(reg, "pipeline.stage.io_read_seconds", 0.10);
  fill_stage(reg, "pipeline.stage.gunzip_seconds", 0.05);
  fill_stage(reg, "pipeline.stage.ops_seconds", 0.20);
  fill_stage(reg, "pipeline.stage.prefetch_wait_seconds", 0.50);

  const BottleneckReport report = analyze_critical_path(
      {.metrics = &reg, .tracer = &tracer, .wall_seconds = 1.0, .workers = 2});

  EXPECT_EQ(report.dominant_stage, "decode");
  EXPECT_EQ(report.verdict, "decode-bound");
  ASSERT_FALSE(report.stages.empty());
  EXPECT_EQ(report.stages.front().name, "decode");
  EXPECT_NEAR(report.stages.front().busy_seconds, 0.85, 1e-9);
  EXPECT_NEAR(report.stages.front().occupancy, 0.85 / 2.0, 1e-9);
  EXPECT_NEAR(report.prefetch_stall_seconds, 0.50, 1e-9);
  EXPECT_FALSE(report.spans_complete);
  // Ranked descending throughout.
  for (std::size_t i = 1; i < report.stages.size(); ++i) {
    EXPECT_GE(report.stages[i - 1].busy_seconds, report.stages[i].busy_seconds);
  }
}

TEST(Analyze, InjectedIoStallsMakeIoReadDominant) {
  obs::MetricsRegistry reg;
  obs::Tracer tracer(64);
  // The injected-stall shape: io.read swallows most of the decode loop
  // (stalled reads charge the io histogram even when a deadline cancels
  // them), and the consumer visibly waits on batches.
  fill_stage(reg, "pipeline.stage.io_read_seconds", 1.20, 16);
  fill_stage(reg, "pipeline.stage.decode_seconds", 1.50, 16);
  fill_stage(reg, "pipeline.stage.retry_backoff_seconds", 0.05, 8);
  fill_stage(reg, "pipeline.stage.ops_seconds", 0.10);
  fill_stage(reg, "pipeline.stage.prefetch_wait_seconds", 0.60);

  const BottleneckReport report = analyze_critical_path(
      {.metrics = &reg, .tracer = &tracer, .wall_seconds = 2.0, .workers = 2});

  EXPECT_EQ(report.dominant_stage, "io.read");
  EXPECT_EQ(report.verdict, "io-bound");
  // Freeing the dominant stage must promise at least as much speedup as
  // freeing any other stage.
  double io_speedup = 0;
  for (const StageCost& stage : report.stages) {
    if (stage.name == "io.read") io_speedup = stage.whatif_speedup;
  }
  for (const StageCost& stage : report.stages) {
    EXPECT_LE(stage.whatif_speedup, io_speedup + 1e-9) << stage.name;
  }
}

TEST(Analyze, TinyPrefetchStallMeansConsumerBound) {
  obs::MetricsRegistry reg;
  obs::Tracer tracer(64);
  fill_stage(reg, "pipeline.stage.decode_seconds", 0.40);
  fill_stage(reg, "pipeline.stage.prefetch_wait_seconds", 0.01);

  const BottleneckReport report = analyze_critical_path(
      {.metrics = &reg, .tracer = &tracer, .wall_seconds = 1.0, .workers = 2});

  // The pipeline kept up: whatever stage dominates internally, epoch time is
  // the training step's problem.
  EXPECT_EQ(report.verdict, "consumer-bound");
}

TEST(Analyze, IdleRegistryProducesIdleVerdict) {
  obs::MetricsRegistry reg;
  obs::Tracer tracer(64);
  const BottleneckReport report = analyze_critical_path(
      {.metrics = &reg, .tracer = &tracer, .wall_seconds = 1.0, .workers = 1});
  EXPECT_TRUE(report.dominant_stage.empty());
  // No prefetch waits recorded → the consumer never stalled → consumer-bound
  // beats idle in the verdict order; idle needs a stall with no busy stage.
  EXPECT_EQ(report.verdict, "consumer-bound");
}

TEST(Analyze, OccupancySumsToAtMostOneAcrossMixes) {
  // Property: exclusive stage occupancies partition worker capacity, so they
  // sum to <= 1 whenever total busy work fits in wall * workers — which any
  // real measurement satisfies. Deterministic pseudo-random mixes.
  std::uint64_t state = 0x9e3779b97f4a7c15ULL;
  auto next_unit = [&state]() {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return static_cast<double>(state % 1000) / 1000.0;
  };
  for (int trial = 0; trial < 32; ++trial) {
    obs::MetricsRegistry reg;
    obs::Tracer tracer(16);
    const double io = next_unit();
    const double gunzip = next_unit();
    const double backoff = next_unit();
    const double decode_extra = next_unit();
    const double ops = next_unit();
    const double shuffle = next_unit();
    fill_stage(reg, "pipeline.stage.io_read_seconds", io);
    fill_stage(reg, "pipeline.stage.gunzip_seconds", gunzip);
    fill_stage(reg, "pipeline.stage.retry_backoff_seconds", backoff);
    fill_stage(reg, "pipeline.stage.decode_seconds",
               io + gunzip + backoff + decode_extra);
    fill_stage(reg, "pipeline.stage.ops_seconds", ops);
    fill_stage(reg, "pipeline.stage.shuffle_seconds", shuffle);

    const std::size_t workers = 1 + trial % 4;
    // Wall large enough that capacity covers the recorded busy time.
    const double busy =
        io + gunzip + backoff + decode_extra + ops + shuffle;
    const double wall = busy / static_cast<double>(workers) + next_unit();

    const BottleneckReport report = analyze_critical_path(
        {.metrics = &reg, .tracer = &tracer, .wall_seconds = wall,
         .workers = workers});
    double occupancy_sum = 0;
    for (const StageCost& stage : report.stages) {
      EXPECT_GE(stage.occupancy, 0.0) << stage.name;
      EXPECT_GE(stage.whatif_speedup, 1.0) << stage.name;
      occupancy_sum += stage.occupancy;
    }
    EXPECT_LE(occupancy_sum, 1.0 + 1e-9) << "trial " << trial;
  }
}

TEST(Analyze, SpanHistogramDriftIsMeasured) {
  obs::MetricsRegistry reg;
  fill_stage(reg, "pipeline.stage.io_read_seconds", 0.50);
  fill_stage(reg, "pipeline.stage.decode_seconds", 0.50);

  // Spans only account for half the histogram's io time → 50% drift: the
  // shape instrumentation drift (one layer updated, not the other) takes.
  obs::Tracer tracer(64);
  tracer.record("pipeline.io_read", "pipeline", 0, 250'000'000);
  const BottleneckReport report = analyze_critical_path(
      {.metrics = &reg, .tracer = &tracer, .wall_seconds = 1.0, .workers = 1});
  EXPECT_TRUE(report.spans_complete);
  EXPECT_NEAR(report.max_drift_fraction, 0.5, 1e-6);

  // A matching span sum reports (near) zero drift.
  obs::Tracer agreed(64);
  agreed.record("pipeline.io_read", "pipeline", 0, 500'000'000);
  const BottleneckReport clean = analyze_critical_path(
      {.metrics = &reg, .tracer = &agreed, .wall_seconds = 1.0, .workers = 1});
  EXPECT_NEAR(clean.max_drift_fraction, 0.0, 1e-6);
}

TEST(Analyze, UnknownStageHistogramIsFlaggedUnattributed) {
  obs::MetricsRegistry reg;
  obs::Tracer tracer(16);
  fill_stage(reg, "pipeline.stage.decode_seconds", 0.10);
  fill_stage(reg, "pipeline.stage.mystery_seconds", 0.10);

  const BottleneckReport report = analyze_critical_path(
      {.metrics = &reg, .tracer = &tracer, .wall_seconds = 1.0, .workers = 1});
  ASSERT_EQ(report.unattributed_histograms.size(), 1u);
  EXPECT_EQ(report.unattributed_histograms[0], "pipeline.stage.mystery_seconds");
  EXPECT_NE(report.human_table().find("pipeline.stage.mystery_seconds"),
            std::string::npos);
}

TEST(Analyze, ReportJsonIsValidAndRoundTrippable) {
  obs::MetricsRegistry reg;
  obs::Tracer tracer(16);
  fill_stage(reg, "pipeline.stage.decode_seconds", 0.30);
  fill_stage(reg, "pipeline.stage.prefetch_wait_seconds", 0.20);
  const BottleneckReport report = analyze_critical_path(
      {.metrics = &reg, .tracer = &tracer, .wall_seconds = 1.0, .workers = 2});

  const std::string json = report.to_json();
  EXPECT_TRUE(obs::json_valid(json)) << json;
  EXPECT_NE(json.find("\"schema\":\"sciprep.insight.bottleneck.v1\""),
            std::string::npos);
  EXPECT_NE(json.find("\"dominant_stage\":\"decode\""), std::string::npos);

  const std::string dir = scratch_dir("report");
  write_report(dir + "/report.json", report);
  EXPECT_EQ(read_all(dir + "/report.json"), json + "\n");
}

// --- Continuous exporter ---------------------------------------------------

TEST(Exporter, ManualTicksCarryDeltasAndRates) {
  const std::string dir = scratch_dir("exporter_manual");
  obs::MetricsRegistry reg;
  reg.counter("work.items_total").add(10);
  reg.histogram("work.latency_seconds").record(0.5);

  ExporterConfig cfg;
  cfg.jsonl_path = dir + "/series.jsonl";
  cfg.prom_path = dir + "/metrics.prom";
  cfg.metrics = &reg;
  ContinuousExporter exporter(cfg);

  // Manual driving establishes the baseline at the first tick: history from
  // before the exporter existed reports as totals, not as a delta spike.
  exporter.tick();
  reg.counter("work.items_total").add(5);
  reg.histogram("work.latency_seconds").record(0.25);
  exporter.tick();
  EXPECT_EQ(exporter.ticks_total(), 2u);

  std::ifstream in(cfg.jsonl_path);
  std::vector<std::string> lines;
  for (std::string line; std::getline(in, line);) lines.push_back(line);
  ASSERT_EQ(lines.size(), 2u);
  for (const std::string& line : lines) {
    EXPECT_TRUE(obs::json_valid(line)) << line;
  }
  EXPECT_NE(lines[0].find("\"work.items_total\":{\"total\":10,\"delta\":0"),
            std::string::npos)
      << lines[0];
  EXPECT_NE(lines[1].find("\"work.items_total\":{\"total\":15,\"delta\":5"),
            std::string::npos)
      << lines[1];
  EXPECT_NE(lines[1].find("\"count_delta\":1"), std::string::npos) << lines[1];
  // Non-zero interval + non-zero delta → a positive rate was exported.
  EXPECT_NE(lines[1].find("\"rate\":"), std::string::npos);
  EXPECT_EQ(lines[1].find("\"rate\":-"), std::string::npos);

  const std::string prom = read_all(cfg.prom_path);
  EXPECT_NE(prom.find("# TYPE sciprep_work_items_total counter"),
            std::string::npos);
  EXPECT_NE(prom.find("sciprep_work_items_total 15"), std::string::npos);
  EXPECT_NE(prom.find("sciprep_work_latency_seconds_count 2"),
            std::string::npos);
}

TEST(Exporter, StopFlushesTheFinalPartialInterval) {
  const std::string dir = scratch_dir("exporter_stop");
  obs::MetricsRegistry reg;
  ExporterConfig cfg;
  cfg.interval_seconds = 60;  // the thread alone would never tick
  cfg.jsonl_path = dir + "/series.jsonl";
  cfg.metrics = &reg;
  ContinuousExporter exporter(cfg);
  exporter.start();
  reg.counter("work.items_total").add(7);
  exporter.stop();

  // Exactly the closing tick — and it carries the increment.
  EXPECT_EQ(exporter.ticks_total(), 1u);
  const std::string series = read_all(cfg.jsonl_path);
  EXPECT_NE(series.find("\"work.items_total\":{\"total\":7,\"delta\":7"),
            std::string::npos)
      << series;
  exporter.stop();  // idempotent
  EXPECT_EQ(exporter.ticks_total(), 1u);
}

// --- Flight recorder -------------------------------------------------------

fault::RecoveryEvent make_event(fault::EventKind kind) {
  fault::RecoveryEvent event;
  event.kind = kind;
  event.stage = "io.read";
  event.detail = "synthetic \"quoted\" detail";
  event.sample_index = 42;
  event.attempt = 2;
  return event;
}

TEST(FlightRecorder, DumpsAParseableIncidentWithContext) {
  const std::string dir = scratch_dir("flightrec_dump");
  obs::MetricsRegistry reg;
  reg.counter("pipeline.retries_total").add(3);
  obs::Tracer tracer(64);
  tracer.record("pipeline.decode", "pipeline", 1000, 2000);

  FlightRecorderConfig cfg;
  cfg.dir = dir;
  cfg.metrics = &reg;
  cfg.tracer = &tracer;
  cfg.config_fingerprint = 0xabcdef12u;
  FlightRecorder recorder(cfg);
  recorder.record_incident(make_event(fault::EventKind::kRetry));

  EXPECT_EQ(recorder.incidents_written(), 1u);
  EXPECT_EQ(recorder.incidents_suppressed(), 0u);
  const std::string body = read_all(dir + "/incident-0-retry.json");
  EXPECT_TRUE(obs::json_valid(body)) << body;
  EXPECT_NE(body.find("\"schema\":\"sciprep.insight.incident.v1\""),
            std::string::npos);
  EXPECT_NE(body.find("\"kind\":\"retry\""), std::string::npos);
  EXPECT_NE(body.find("\"stage\":\"io.read\""), std::string::npos);
  EXPECT_NE(body.find("\"config_fingerprint\":\"abcdef12\""),
            std::string::npos);
  EXPECT_NE(body.find("\"name\":\"pipeline.decode\""), std::string::npos);
  EXPECT_NE(body.find("\"pipeline.retries_total\":3"), std::string::npos);
}

TEST(FlightRecorder, IntervalLimitSuppressesRepeatsButNotNewKinds) {
  const std::string dir = scratch_dir("flightrec_rate");
  obs::MetricsRegistry reg;
  obs::Tracer tracer(16);
  FlightRecorderConfig cfg;
  cfg.dir = dir;
  cfg.metrics = &reg;
  cfg.tracer = &tracer;
  cfg.min_interval_seconds = 3600;  // nothing re-dumps inside the test
  FlightRecorder recorder(cfg);

  for (int i = 0; i < 5; ++i) {
    recorder.record_incident(make_event(fault::EventKind::kRetry));
  }
  EXPECT_EQ(recorder.incidents_written(), 1u);
  EXPECT_EQ(recorder.incidents_suppressed(), 4u);

  // A kind not yet dumped bypasses the interval: the rare deadline expiry
  // arriving mid-retry-storm still produces its incident file.
  recorder.record_incident(make_event(fault::EventKind::kDeadlineExpired));
  EXPECT_EQ(recorder.incidents_written(), 2u);
  EXPECT_EQ(count_incident_files(dir), 2u);
  const std::string body =
      read_all(dir + "/incident-1-deadline_expired.json");
  EXPECT_TRUE(obs::json_valid(body)) << body;
  // The suppressed repeats still made the decision log of the later dump.
  EXPECT_NE(body.find("\"kind\":\"retry\""), std::string::npos);
}

TEST(FlightRecorder, IncidentCapIsAbsolute) {
  const std::string dir = scratch_dir("flightrec_cap");
  obs::MetricsRegistry reg;
  obs::Tracer tracer(16);
  FlightRecorderConfig cfg;
  cfg.dir = dir;
  cfg.metrics = &reg;
  cfg.tracer = &tracer;
  cfg.min_interval_seconds = 0;  // only the cap limits
  cfg.max_incidents = 2;
  FlightRecorder recorder(cfg);

  recorder.record_incident(make_event(fault::EventKind::kRetry));
  recorder.record_incident(make_event(fault::EventKind::kSkipSample));
  // Even a first-of-kind event cannot pass the cap.
  recorder.record_incident(make_event(fault::EventKind::kDeadlineExpired));
  EXPECT_EQ(recorder.incidents_written(), 2u);
  EXPECT_EQ(recorder.incidents_suppressed(), 1u);
  EXPECT_EQ(count_incident_files(dir), 2u);
}

TEST(FlightRecorder, ListenerFeedsRecordIncident) {
  const std::string dir = scratch_dir("flightrec_listener");
  obs::MetricsRegistry reg;
  obs::Tracer tracer(16);
  FlightRecorderConfig cfg;
  cfg.dir = dir;
  cfg.metrics = &reg;
  cfg.tracer = &tracer;
  FlightRecorder recorder(cfg);

  const fault::RecoveryListener listener = recorder.listener();
  ASSERT_TRUE(static_cast<bool>(listener));
  listener(make_event(fault::EventKind::kFallback));
  EXPECT_EQ(recorder.incidents_written(), 1u);
  EXPECT_EQ(count_incident_files(dir), 1u);
}

fault::RecoveryEvent make_scoped_event(fault::EventKind kind,
                                       const std::string& scope) {
  fault::RecoveryEvent event = make_event(kind);
  event.scope = scope;
  return event;
}

// Satellite: rate limits are per scope. One tenant's incident storm spends
// only that tenant's interval window and cap — another tenant's first
// incident of the same kind still produces its file, attributed to its own
// scope.
TEST(FlightRecorder, TenantStormDoesNotSuppressAnotherTenantsFirstIncident) {
  const std::string dir = scratch_dir("flightrec_scopes");
  obs::MetricsRegistry reg;
  obs::Tracer tracer(16);
  FlightRecorderConfig cfg;
  cfg.dir = dir;
  cfg.metrics = &reg;
  cfg.tracer = &tracer;
  cfg.min_interval_seconds = 3600;  // nothing re-dumps inside the test
  FlightRecorder recorder(cfg);

  for (int i = 0; i < 8; ++i) {
    recorder.record_incident(
        make_scoped_event(fault::EventKind::kRetry, "tenant0"));
  }
  EXPECT_EQ(recorder.incidents_written(), 1u);
  EXPECT_EQ(recorder.incidents_suppressed(), 7u);

  // Same kind, different scope: tenant1's first retry is not a repeat of
  // tenant0's — it dumps, and the file names its scope.
  recorder.record_incident(
      make_scoped_event(fault::EventKind::kRetry, "tenant1"));
  EXPECT_EQ(recorder.incidents_written(), 2u);
  EXPECT_EQ(count_incident_files(dir), 2u);
  const std::string body = read_all(dir + "/incident-1-retry.json");
  EXPECT_TRUE(obs::json_valid(body)) << body;
  EXPECT_NE(body.find("\"scope\":\"tenant1\""), std::string::npos) << body;

  // And the per-scope cap is per scope too: tenant1's next *new* kind dumps
  // even though tenant0 already spent several suppressions.
  recorder.record_incident(
      make_scoped_event(fault::EventKind::kDeadlineExpired, "tenant1"));
  EXPECT_EQ(recorder.incidents_written(), 3u);
}

// Satellite: the global backstop bounds the file count across all scopes —
// a service with many tenants cannot scale incident files with tenant count
// past max_total_incidents, even though each tenant is under its own cap.
TEST(FlightRecorder, TotalIncidentBackstopBoundsAcrossScopes) {
  const std::string dir = scratch_dir("flightrec_total");
  obs::MetricsRegistry reg;
  obs::Tracer tracer(16);
  FlightRecorderConfig cfg;
  cfg.dir = dir;
  cfg.metrics = &reg;
  cfg.tracer = &tracer;
  cfg.min_interval_seconds = 0;
  cfg.max_incidents = 2;        // per scope
  cfg.max_total_incidents = 3;  // global backstop
  FlightRecorder recorder(cfg);

  recorder.record_incident(make_scoped_event(fault::EventKind::kRetry, "a"));
  recorder.record_incident(
      make_scoped_event(fault::EventKind::kSkipSample, "a"));
  recorder.record_incident(make_scoped_event(fault::EventKind::kRetry, "b"));
  // Scope "b" still has per-scope headroom, but the backstop is spent.
  recorder.record_incident(
      make_scoped_event(fault::EventKind::kSkipSample, "b"));
  recorder.record_incident(make_scoped_event(fault::EventKind::kRetry, "c"));
  EXPECT_EQ(recorder.incidents_written(), 3u);
  EXPECT_EQ(recorder.incidents_suppressed(), 2u);
  EXPECT_EQ(count_incident_files(dir), 3u);
}

// Satellite: a per-tenant bottleneck report carries its scope into the JSON,
// so serve-mode reports stay attributable after they are written out.
TEST(Analyze, ReportCarriesTheTenantScope) {
  obs::MetricsRegistry reg;
  reg.histogram("pipeline.stage.decode_seconds").record(0.5);
  const BottleneckReport report = analyze_critical_path(
      {.metrics = &reg, .scope = "tenant3", .wall_seconds = 1.0, .workers = 2});
  EXPECT_EQ(report.scope, "tenant3");
  const std::string json = report.to_json();
  EXPECT_TRUE(obs::json_valid(json)) << json;
  EXPECT_NE(json.find("\"scope\":\"tenant3\""), std::string::npos) << json;
}

#else  // SCIPREP_OBS_DISABLED

// With the instrumentation compiled out, every insight entry point must be a
// structural no-op: no files, no threads, a null listener, an empty report.

TEST(InsightDisabled, AnalyzerReturnsEmptyReport) {
  const BottleneckReport report =
      analyze_critical_path({.wall_seconds = 1.0, .workers = 2});
  EXPECT_TRUE(report.stages.empty());
  EXPECT_TRUE(report.dominant_stage.empty());
}

TEST(InsightDisabled, ExporterAndRecorderWriteNothing) {
  const std::string dir = scratch_dir("disabled");
  ExporterConfig ecfg;
  ecfg.jsonl_path = dir + "/series.jsonl";
  ContinuousExporter exporter(ecfg);
  exporter.start();
  exporter.tick();
  exporter.stop();
  EXPECT_EQ(exporter.ticks_total(), 0u);
  EXPECT_FALSE(std::filesystem::exists(ecfg.jsonl_path));

  FlightRecorderConfig fcfg;
  fcfg.dir = dir + "/incidents";
  FlightRecorder recorder(fcfg);
  EXPECT_FALSE(static_cast<bool>(recorder.listener()));
  fault::RecoveryEvent event;
  recorder.record_incident(event);
  EXPECT_EQ(recorder.incidents_written(), 0u);
}

#endif  // SCIPREP_OBS_DISABLED

}  // namespace
}  // namespace sciprep::insight
