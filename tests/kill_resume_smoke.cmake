# Kill-and-resume smoke, driven end to end through the trainer binary
# (ctest -L guard). Three stages:
#
#   1. An uninterrupted reference run records per-batch content digests.
#   2. The same run is repeated with periodic checkpointing and a simulated
#      crash (hard exit 42) mid-epoch, under fault injection so the recovery
#      paths are live when the process dies.
#   3. A third process resumes from the checkpoint and must deliver the
#      bit-identical remaining batches and end with the reference run's final
#      counters (--expect-digest + --validate enforce both).
#
# Usage: cmake -DTRAINER=<path> -DWORK_DIR=<dir> -P kill_resume_smoke.cmake
if(NOT DEFINED TRAINER OR NOT DEFINED WORK_DIR)
  message(FATAL_ERROR "kill_resume_smoke: pass -DTRAINER=... -DWORK_DIR=...")
endif()

file(MAKE_DIRECTORY ${WORK_DIR})
set(common_args
  --workload cosmo --samples 24 --epochs 2 --dim 16 --batch 4 --workers 2
  --placement cpu
  --inject-corrupt 0.05 --inject-truncate 0.05 --inject-seed 77
  --fault-policy skip)

execute_process(
  COMMAND ${TRAINER} ${common_args}
          --digest-out ${WORK_DIR}/full.digest --validate
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "reference run failed (rc=${rc})")
endif()

execute_process(
  COMMAND ${TRAINER} ${common_args}
          --checkpoint-out ${WORK_DIR}/checkpoint.bin --checkpoint-every 2
          --kill-after-batches 7
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 42)
  message(FATAL_ERROR "killed run must exit 42, got rc=${rc}")
endif()

execute_process(
  COMMAND ${TRAINER} ${common_args}
          --resume-from ${WORK_DIR}/checkpoint.bin
          --digest-out ${WORK_DIR}/resumed.digest
          --expect-digest ${WORK_DIR}/full.digest --validate
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "resumed run failed the digest/validate check (rc=${rc})")
endif()
