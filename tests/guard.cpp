// Tests for sciprep::guard: cooperative cancellation (token tree, ambient
// scopes, interruptible sleep), the deadline watchdog, snapshot framing
// robustness (truncation / bit flips / versioning), and the pipeline-level
// guard contracts — cancel-mid-epoch, deadline-trip-recovered-by-policy, and
// the kill-and-resume property (a resumed pipeline delivers the bit-identical
// remaining batch sequence and ends with the same final counters).
#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <map>
#include <optional>
#include <thread>
#include <utility>
#include <vector>

#include "sciprep/codec/cosmo_codec.hpp"
#include "sciprep/common/crc.hpp"
#include "sciprep/common/error.hpp"
#include "sciprep/data/cosmo_gen.hpp"
#include "sciprep/fault/fault.hpp"
#include "sciprep/guard/guard.hpp"
#include "sciprep/pipeline/pipeline.hpp"

namespace sciprep::guard {
namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

TEST(CancelToken, NullTokenIsInertAndFree) {
  const CancelToken null_token;
  EXPECT_FALSE(null_token.valid());
  EXPECT_FALSE(null_token.cancelled());
  EXPECT_NO_THROW(null_token.check());
  EXPECT_NO_THROW(null_token.cancel());  // no-op, not an error
  EXPECT_NO_THROW(poll_cancellation());  // no ambient token installed
}

TEST(CancelToken, CancelPropagatesDownTheTreeNotUp) {
  const CancelToken root = CancelToken::make();
  const CancelToken child = root.child();
  const CancelToken grandchild = child.child();
  const CancelToken sibling = root.child();

  child.cancel("stop this branch");
  EXPECT_TRUE(child.cancelled());
  EXPECT_TRUE(grandchild.cancelled());
  EXPECT_FALSE(root.cancelled());
  EXPECT_FALSE(sibling.cancelled());

  // A child created under an already-cancelled parent is born cancelled.
  EXPECT_TRUE(child.child().cancelled());
}

TEST(CancelToken, CheckThrowsTypedErrorsThatClassify) {
  const CancelToken user = CancelToken::make();
  user.cancel("caller aborted");
  try {
    user.check();
    FAIL() << "check() must throw";
  } catch (const CancelledError& e) {
    EXPECT_EQ(classify(e), ErrorClass::kCancelled);
  }

  const CancelToken hung = CancelToken::make();
  hung.cancel_deadline("decode", 1.5);
  try {
    hung.check();
    FAIL() << "check() must throw";
  } catch (const DeadlineError& e) {
    // A hang is transient by taxonomy: the fault policy may retry it.
    EXPECT_EQ(classify(e), ErrorClass::kTransient);
    EXPECT_EQ(e.stage(), "decode");
    EXPECT_DOUBLE_EQ(e.elapsed_seconds(), 1.5);
  }
}

TEST(CancelToken, FirstCancelWins) {
  const CancelToken token = CancelToken::make();
  token.cancel_deadline("io.read", 0.2);
  token.cancel("late user cancel must not overwrite the deadline");
  EXPECT_THROW(token.check(), DeadlineError);
}

TEST(CancelToken, ScopesNestAndRestore) {
  EXPECT_FALSE(current_token().valid());
  const CancelToken outer = CancelToken::make();
  {
    const CancelScope outer_scope(outer);
    EXPECT_TRUE(current_token().valid());
    {
      // Installing a null token keeps the enclosing one visible.
      const CancelScope noop_scope{CancelToken()};
      EXPECT_TRUE(current_token().valid());
    }
    outer.cancel("epoch abandoned");
    EXPECT_THROW(poll_cancellation(), CancelledError);
  }
  EXPECT_FALSE(current_token().valid());
  EXPECT_NO_THROW(poll_cancellation());
}

TEST(CancelToken, SleepWakesPromptlyOnCancel) {
  const CancelToken token = CancelToken::make();
  const auto t0 = std::chrono::steady_clock::now();
  std::thread canceller([&token] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    token.cancel("wake up");
  });
  EXPECT_THROW(token.sleep_for(5.0), CancelledError);
  canceller.join();
  EXPECT_LT(seconds_since(t0), 2.0);  // woke early, not after 5s
}

TEST(CancelToken, SleepSeesAncestorCancellationWithinAPollSlice) {
  const CancelToken parent = CancelToken::make();
  const CancelToken token = parent.child();
  const auto t0 = std::chrono::steady_clock::now();
  std::thread canceller([&parent] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    parent.cancel();  // wakes the child via the 10ms poll slice
  });
  EXPECT_THROW(token.sleep_for(5.0), CancelledError);
  canceller.join();
  EXPECT_LT(seconds_since(t0), 2.0);
}

TEST(Watchdog, ExpiryCancelsTheTokenAndExportsMetrics) {
  obs::MetricsRegistry registry;
  Watchdog dog(&registry);
  const CancelToken token = CancelToken::make();
  {
    Watchdog::Armed armed = dog.arm("decode", 0.02, token);
    const auto t0 = std::chrono::steady_clock::now();
    while (!token.cancelled() && seconds_since(t0) < 5.0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    EXPECT_TRUE(token.cancelled());
    EXPECT_THROW(token.check(), DeadlineError);
    EXPECT_EQ(dog.expired_total(), 1u);
    // The observed stall is recorded when the tripped stage disarms.
    EXPECT_EQ(registry.histogram("guard.stall_seconds").count(), 0u);
  }
  EXPECT_EQ(registry.counter_value("guard.deadline_expired_total"), 1u);
  EXPECT_EQ(registry.histogram("guard.stall_seconds").count(), 1u);
}

TEST(Watchdog, DisarmBeforeTheDeadlineIsANoOp) {
  obs::MetricsRegistry registry;
  Watchdog dog(&registry);
  const CancelToken token = CancelToken::make();
  { Watchdog::Armed armed = dog.arm("io.read", 30.0, token); }
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  EXPECT_FALSE(token.cancelled());
  EXPECT_EQ(dog.expired_total(), 0u);
  EXPECT_EQ(registry.histogram("guard.stall_seconds").count(), 0u);
}

TEST(Watchdog, ManyArmsExpireIndependently) {
  obs::MetricsRegistry registry;
  Watchdog dog(&registry);
  std::vector<CancelToken> tokens;
  std::vector<Watchdog::Armed> armed;
  for (int i = 0; i < 8; ++i) {
    tokens.push_back(CancelToken::make());
    // Alternate between deadlines that will expire and ones that won't.
    armed.push_back(dog.arm("decode", i % 2 == 0 ? 0.01 : 60.0, tokens.back()));
  }
  const auto t0 = std::chrono::steady_clock::now();
  while (dog.expired_total() < 4 && seconds_since(t0) < 5.0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_EQ(dog.expired_total(), 4u);
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(tokens[static_cast<std::size_t>(i)].cancelled(), i % 2 == 0)
        << "token " << i;
  }
}

Snapshot sample_snapshot() {
  Snapshot s;
  s.config_fingerprint = 0xDEADBEEFCAFEF00DULL;
  s.epoch = 3;
  s.cursor = 40;
  s.batch_index = 10;
  s.recovery_events = 7;
  s.samples = 120;
  s.batches = 30;
  s.bytes_at_rest = 1u << 20;
  s.samples_skipped = 4;
  s.fallbacks = 2;
  s.degraded = true;
  s.quarantine = {3, 9, 17, 31};
  s.epoch_quarantine = {9, 31};
  return s;
}

TEST(Snapshot, SerializeParseRoundTrips) {
  const Snapshot s = sample_snapshot();
  const Bytes wire = s.serialize();
  EXPECT_EQ(Snapshot::parse(ByteSpan(wire)), s);

  // Empty lists and zero fields round-trip too.
  const Snapshot zero;
  EXPECT_EQ(Snapshot::parse(ByteSpan(zero.serialize())), zero);
}

TEST(Snapshot, ZeroLengthInputIsTruncated) {
  EXPECT_THROW(Snapshot::parse(ByteSpan()), TruncatedError);
}

TEST(Snapshot, EveryStrictPrefixIsRejectedWithATypedError) {
  const Bytes wire = sample_snapshot().serialize();
  for (std::size_t len = 0; len < wire.size(); ++len) {
    try {
      (void)Snapshot::parse(ByteSpan(wire.data(), len));
      FAIL() << "prefix of length " << len << " must not parse";
    } catch (const TruncatedError&) {
    } catch (const FormatError&) {
    }
  }
}

TEST(Snapshot, EveryBitFlipIsDetected) {
  const Bytes wire = sample_snapshot().serialize();
  for (std::size_t byte = 0; byte < wire.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      Bytes mutated = wire;
      mutated[byte] ^= static_cast<std::uint8_t>(1u << bit);
      try {
        (void)Snapshot::parse(ByteSpan(mutated));
        FAIL() << "flip at byte " << byte << " bit " << bit
               << " must not parse";
      } catch (const TruncatedError&) {
      } catch (const FormatError&) {
      }
    }
  }
}

TEST(Snapshot, UnsupportedVersionIsRejected) {
  Bytes wire = sample_snapshot().serialize();
  wire[4] = 0x7F;  // version field (bytes 4..7, little-endian)
  EXPECT_THROW((void)Snapshot::parse(ByteSpan(wire)), FormatError);
}

TEST(Snapshot, CheckpointerWritesAtomicallyOnItsCadence) {
  const std::string path = "guard_test_checkpoint.bin";
  obs::MetricsRegistry registry;
  Checkpointer checkpointer(path, 4, &registry);
  EXPECT_FALSE(checkpointer.due(0));
  EXPECT_FALSE(checkpointer.due(3));
  EXPECT_TRUE(checkpointer.due(4));
  EXPECT_FALSE(checkpointer.due(5));
  EXPECT_TRUE(checkpointer.due(8));

  const Snapshot s = sample_snapshot();
  checkpointer.write(s);
  EXPECT_EQ(checkpointer.written_total(), 1u);
  EXPECT_EQ(registry.counter_value("guard.checkpoints_written_total"), 1u);
  EXPECT_EQ(read_snapshot(path), s);
  // The temporary staging file must not survive a successful rename.
  std::FILE* tmp = std::fopen((path + ".tmp").c_str(), "rb");
  EXPECT_EQ(tmp, nullptr);
  if (tmp != nullptr) std::fclose(tmp);
  std::remove(path.c_str());
}

TEST(Snapshot, ReadOfMissingFileIsIoError) {
  EXPECT_THROW((void)read_snapshot("guard_test_no_such_file.bin"), IoError);
}

// ---------------------------------------------------------------------------
// Pipeline-level guard contracts.

using pipeline::Batch;
using pipeline::DataPipeline;
using pipeline::InMemoryDataset;
using pipeline::PipelineConfig;
using pipeline::PipelineStats;
using pipeline::StorageFormat;

/// A pipeline over a small encoded cosmo dataset, with its own registry and
/// injector so concurrent tests never share counters.
struct GuardRig {
  explicit GuardRig(std::size_t n, std::uint64_t injector_seed = 77)
      : injector(injector_seed, &registry) {
    data::CosmoGenConfig cfg;
    cfg.dim = 16;
    cfg.seed = 11;
    gen.emplace(cfg);
    dataset.emplace(
        InMemoryDataset::make_cosmo(*gen, n, StorageFormat::kEncoded, &codec));
  }

  DataPipeline make(PipelineConfig base, bool inject = false) {
    base.seed = 5;
    base.metrics = &registry;
    base.injector = inject ? &injector : nullptr;
    return DataPipeline(*dataset, codec, base);
  }

  std::optional<data::CosmoGenerator> gen;
  codec::CosmoCodec codec;
  obs::MetricsRegistry registry;
  fault::Injector injector;
  std::optional<InMemoryDataset> dataset;
};

std::uint32_t batch_crc(const Batch& batch) {
  std::uint32_t crc = 0;
  for (const auto& t : batch.samples) {
    crc = crc32c(as_bytes(t.shape), crc);
    crc = crc32c(as_bytes(t.values), crc);
    crc = crc32c(as_bytes(t.float_labels), crc);
    crc = crc32c(as_bytes(t.byte_labels), crc);
  }
  return crc;
}

TEST(PipelineGuard, CancelUnwindsTheEpochAsCancelledError) {
  GuardRig rig(16);
  PipelineConfig base;
  base.batch_size = 4;
  base.cancel = CancelToken::make();
  DataPipeline pipe = rig.make(base);

  Batch batch;
  ASSERT_TRUE(pipe.next_batch(batch));
  base.cancel.cancel("user hit ^C");
  EXPECT_THROW(pipe.next_batch(batch), CancelledError);
  // The pipeline survives: a new epoch under the same (cancelled) token
  // still refuses, which is the documented contract for a root cancel.
  EXPECT_THROW(pipe.next_batch(batch), CancelledError);
}

TEST(PipelineGuard, InjectedStallTripsTheDeadlineAndThePolicyRecoversIt) {
  GuardRig rig(12);
  // Every read stalls 0.5s; the io.read deadline is 25ms. Without the
  // watchdog this epoch costs >= 6s of stalls; with it, each stall unwinds
  // at deadline expiry and the skip policy quarantines the sample.
  rig.injector.configure(fault::Site::kIoRead,
                         {.delay_probability = 1.0, .delay_seconds = 0.5});
  PipelineConfig base;
  base.batch_size = 4;
  base.worker_threads = 2;
  base.fault_policy.on_transient = fault::Action::kSkipSample;
  base.fault_policy.error_budget = 1u << 20;
  base.deadlines.io_read_seconds = 0.025;
  DataPipeline pipe = rig.make(base, /*inject=*/true);

  const auto t0 = std::chrono::steady_clock::now();
  Batch batch;
  std::uint64_t delivered = 0;
  while (pipe.next_batch(batch)) delivered += batch.samples.size();
  const double wall = seconds_since(t0);

  const PipelineStats stats = pipe.stats();
  EXPECT_EQ(delivered, 0u);
  EXPECT_EQ(stats.samples_skipped, 12u);
  EXPECT_EQ(pipe.quarantine().size(), 12u);
  EXPECT_TRUE(stats.degraded);
  EXPECT_GE(rig.registry.counter_value("guard.deadline_expired_total"), 12u);
  EXPECT_GE(rig.registry.histogram("guard.stall_seconds").count(), 12u);
  // Generous bound: 12 samples x 25ms deadlines, not 12 x 0.5s stalls.
  EXPECT_LT(wall, 4.0);
}

TEST(PipelineGuard, DeadlineExpiryRetriesLikeAnyTransient) {
  GuardRig rig(12);
  // Half the reads stall (keyed per attempt), so a retry usually clears.
  rig.injector.configure(fault::Site::kIoRead,
                         {.delay_probability = 0.5, .delay_seconds = 0.5});
  PipelineConfig base;
  base.batch_size = 4;
  base.fault_policy.on_transient = fault::Action::kRetry;
  base.fault_policy.retry = {.max_attempts = 4, .backoff_seconds = 0,
                             .backoff_multiplier = 1};
  base.fault_policy.on_retry_exhausted = fault::Action::kSkipSample;
  base.fault_policy.error_budget = 1u << 20;
  base.deadlines.io_read_seconds = 0.025;
  DataPipeline pipe = rig.make(base, /*inject=*/true);

  Batch batch;
  std::uint64_t delivered = 0;
  while (pipe.next_batch(batch)) delivered += batch.samples.size();

  const PipelineStats stats = pipe.stats();
  EXPECT_EQ(delivered + stats.samples_skipped, 12u);
  EXPECT_GT(delivered, 0u);       // retries rescued some stalled samples
  EXPECT_GT(stats.retries, 0u);   // and were counted doing it
  EXPECT_GT(rig.registry.counter_value("guard.deadline_expired_total"), 0u);
}

/// Everything the kill-and-resume property compares between runs.
struct RunRecord {
  std::map<std::pair<std::uint64_t, std::uint64_t>, std::uint32_t> digests;
  PipelineStats stats;
  std::vector<std::size_t> quarantine;
};

PipelineConfig property_config(std::size_t workers, bool prefetch) {
  PipelineConfig base;
  base.batch_size = 4;
  base.worker_threads = workers;
  base.prefetch = prefetch;
  base.fault_policy.on_corrupt = fault::Action::kSkipSample;
  base.fault_policy.error_budget = 1u << 20;
  return base;
}

constexpr int kEpochs = 2;
constexpr double kCorruptProbability = 0.25;

void arm_corruption(GuardRig& rig) {
  rig.injector.configure(fault::Site::kCodecDecode,
                         {.corrupt_probability = kCorruptProbability});
}

TEST(PipelineGuard, KillAndResumeReproducesTheRemainingBatchesBitIdentically) {
  for (const std::size_t workers : {std::size_t{1}, std::size_t{4}}) {
    for (const bool prefetch : {false, true}) {
      SCOPED_TRACE(fmt("workers={} prefetch={}", workers, prefetch));
      const std::size_t n = 24;
      const std::uint64_t kill_after = 4;  // batches; mid-epoch-0

      // Uninterrupted reference run.
      GuardRig full_rig(n);
      arm_corruption(full_rig);
      RunRecord full;
      {
        DataPipeline pipe =
            full_rig.make(property_config(workers, prefetch), true);
        Batch batch;
        for (int epoch = 0; epoch < kEpochs; ++epoch) {
          pipe.start_epoch(static_cast<std::uint64_t>(epoch));
          while (pipe.next_batch(batch)) {
            full.digests[{batch.epoch, batch.index_in_epoch}] =
                batch_crc(batch);
          }
        }
        full.stats = pipe.stats();
        full.quarantine = pipe.quarantine();
      }
      ASSERT_GT(full.stats.samples_skipped, 0u)
          << "property run must exercise the quarantine path";

      // Killed run: snapshot at a delivered-batch boundary, then destroy the
      // pipeline mid-epoch (an in-flight prefetch is abandoned, exactly as a
      // crash would).
      Snapshot snap;
      {
        GuardRig killed_rig(n);
        arm_corruption(killed_rig);
        DataPipeline pipe =
            killed_rig.make(property_config(workers, prefetch), true);
        Batch batch;
        std::uint64_t delivered = 0;
        pipe.start_epoch(0);
        while (pipe.next_batch(batch)) {
          if (++delivered == kill_after) {
            snap = pipe.snapshot();
            break;
          }
        }
        ASSERT_EQ(delivered, kill_after);
      }
      // The snapshot round-trips through its wire format, like a real file.
      snap = Snapshot::parse(ByteSpan(snap.serialize()));

      // Resumed run: fresh pipeline, fresh registry, restore, finish.
      GuardRig resumed_rig(n);
      arm_corruption(resumed_rig);
      RunRecord resumed;
      {
        DataPipeline pipe =
            resumed_rig.make(property_config(workers, prefetch), true);
        pipe.resume(snap);
        Batch batch;
        for (int epoch = static_cast<int>(snap.epoch); epoch < kEpochs;
             ++epoch) {
          if (epoch != static_cast<int>(snap.epoch)) {
            pipe.start_epoch(static_cast<std::uint64_t>(epoch));
          }
          while (pipe.next_batch(batch)) {
            resumed.digests[{batch.epoch, batch.index_in_epoch}] =
                batch_crc(batch);
          }
        }
        resumed.stats = pipe.stats();
        resumed.quarantine = pipe.quarantine();
      }

      // The resumed run delivered exactly the remaining batches...
      EXPECT_EQ(resumed.digests.size() + kill_after, full.digests.size());
      // ...each bit-identical to the uninterrupted run's same batch...
      for (const auto& [key, crc] : resumed.digests) {
        const auto it = full.digests.find(key);
        ASSERT_NE(it, full.digests.end())
            << "unexpected batch epoch=" << key.first
            << " index=" << key.second;
        EXPECT_EQ(crc, it->second) << "batch epoch=" << key.first
                                   << " index=" << key.second;
      }
      // ...and the final counters agree (retries are exempt by contract:
      // they measure spent wall clock, not delivered data).
      EXPECT_EQ(resumed.stats.samples, full.stats.samples);
      EXPECT_EQ(resumed.stats.batches, full.stats.batches);
      EXPECT_EQ(resumed.stats.bytes_at_rest, full.stats.bytes_at_rest);
      EXPECT_EQ(resumed.stats.samples_skipped, full.stats.samples_skipped);
      EXPECT_EQ(resumed.stats.fallbacks, full.stats.fallbacks);
      EXPECT_EQ(resumed.stats.degraded, full.stats.degraded);
      EXPECT_EQ(resumed.quarantine, full.quarantine);
    }
  }
}

TEST(PipelineGuard, SnapshotWithAPrefetchInFlightStaysDeliveryConsistent) {
  GuardRig rig(24);
  PipelineConfig base;
  base.batch_size = 4;
  base.prefetch = true;
  DataPipeline pipe = rig.make(base);

  Batch batch;
  ASSERT_TRUE(pipe.next_batch(batch));  // a prefetch is now in flight
  const Snapshot snap = pipe.snapshot();
  // The parked prefetched batch is NOT part of the snapshot: only one batch
  // (4 samples) has been delivered.
  EXPECT_EQ(snap.cursor, 4u);
  EXPECT_EQ(snap.batch_index, 1u);
  EXPECT_EQ(snap.samples, 4u);
  // ...and it is still delivered to this pipeline afterwards, in order.
  ASSERT_TRUE(pipe.next_batch(batch));
  EXPECT_EQ(batch.index_in_epoch, 1u);
}

TEST(PipelineGuard, ResumeRejectsAForeignSnapshot) {
  GuardRig rig(16);
  Snapshot snap;
  {
    PipelineConfig base;
    base.batch_size = 4;
    DataPipeline pipe = rig.make(base);
    Batch batch;
    ASSERT_TRUE(pipe.next_batch(batch));
    snap = pipe.snapshot();
  }
  PipelineConfig other;
  other.batch_size = 8;  // different batching => different batch sequence
  DataPipeline pipe = rig.make(other);
  EXPECT_THROW(pipe.resume(snap), ConfigError);
}

// Satellite: snapshot() racing asynchronous cancellation. A consumer that
// checkpoints after every delivered batch while another thread cancels the
// pipeline's token mid-run must (a) see the cancellation only as a typed
// CancelledError from next_batch()/snapshot(), never a hang or a torn
// snapshot, and (b) be able to resume from its last good checkpoint into a
// fresh pipeline that re-delivers the uninterrupted run's batches
// bit-identically from that cut — the serve suspend/reattach shape.
TEST(PipelineGuard, SnapshotRacesCancellationAndLastCheckpointResumes) {
  const std::size_t n = 48;
  PipelineConfig base;
  base.batch_size = 4;
  base.prefetch = true;
  base.worker_threads = 4;

  // Uninterrupted reference digests.
  std::map<std::uint64_t, std::uint32_t> reference;
  {
    GuardRig rig(n);
    DataPipeline pipe = rig.make(base);
    Batch batch;
    while (pipe.next_batch(batch)) {
      reference[batch.index_in_epoch] = batch_crc(batch);
    }
  }

  // Raced run: checkpoint at every delivered-batch boundary while a second
  // thread cancels somewhere in the middle of the epoch.
  GuardRig rig(n);
  PipelineConfig raced = base;
  raced.cancel = CancelToken::make();
  DataPipeline pipe = rig.make(raced);
  Batch batch;
  ASSERT_TRUE(pipe.next_batch(batch));  // guarantee one pre-race checkpoint
  std::uint64_t delivered = 1;
  Snapshot last_good = Snapshot::parse(ByteSpan(pipe.snapshot().serialize()));
  std::thread canceller([&raced] {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    raced.cancel.cancel("raced shutdown");
  });
  bool cancelled = false;
  try {
    while (pipe.next_batch(batch)) {
      ++delivered;
      Snapshot snap = pipe.snapshot();
      // Every checkpoint survives its wire round-trip, even mid-race.
      snap = Snapshot::parse(ByteSpan(snap.serialize()));
      EXPECT_EQ(snap.batch_index, delivered);
      last_good = std::move(snap);
    }
  } catch (const CancelledError&) {
    cancelled = true;
  }
  canceller.join();

  // Resume the last good checkpoint in a fresh pipeline (fresh token): it
  // must deliver exactly the reference batches from the cut onward.
  GuardRig resumed_rig(n);
  DataPipeline resumed = resumed_rig.make(base);
  resumed.resume(last_good);
  std::map<std::uint64_t, std::uint32_t> suffix;
  while (resumed.next_batch(batch)) {
    suffix[batch.index_in_epoch] = batch_crc(batch);
  }
  EXPECT_EQ(suffix.size() + last_good.batch_index, reference.size());
  for (const auto& [index, crc] : suffix) {
    ASSERT_TRUE(reference.count(index)) << "unexpected batch " << index;
    EXPECT_EQ(crc, reference.at(index)) << "batch " << index;
  }
  // When the cancel landed mid-epoch the raced run must not have silently
  // delivered the whole epoch anyway.
  if (cancelled) {
    EXPECT_LT(delivered, reference.size());
  }
}

// Satellite: snapshot() racing watchdog deadline expiry under the default
// kFail policy. Checkpointing after every delivered batch means snapshot()'s
// quiesce is what completes the in-flight prefetch — when that batch's read
// stalls past the io.read deadline, the DeadlineError must surface as a
// typed error (out of snapshot() or the next next_batch()), and afterwards
// the pipeline must still produce a parseable, in-bounds snapshot.
TEST(PipelineGuard, SnapshotRacesDeadlineExpiryUnderKFail) {
  const std::size_t n = 24;
  GuardRig rig(n);
  // Half the reads stall 0.5s against a 25ms deadline; kFail escalates.
  rig.injector.configure(fault::Site::kIoRead,
                         {.delay_probability = 0.5, .delay_seconds = 0.5});
  PipelineConfig base;
  base.batch_size = 4;
  base.prefetch = true;
  base.worker_threads = 2;
  base.shuffle = false;
  base.deadlines.io_read_seconds = 0.025;
  DataPipeline pipe = rig.make(base, /*inject=*/true);

  pipe.start_epoch(0);
  Batch batch;
  std::uint64_t delivered = 0;
  std::uint64_t escalations = 0;
  for (int i = 0; i < 32; ++i) {
    try {
      if (!pipe.next_batch(batch)) break;
      ++delivered;
      Snapshot snap = pipe.snapshot();  // quiesces the in-flight prefetch
      snap = Snapshot::parse(ByteSpan(snap.serialize()));
      EXPECT_EQ(snap.batches, delivered);
    } catch (const TransientError&) {
      ++escalations;  // DeadlineError is-a TransientError
    }
  }
  EXPECT_GT(escalations, 0u);
  EXPECT_GT(rig.registry.counter_value("guard.deadline_expired_total"), 0u);
  // The pipeline is not wedged: a final snapshot parses and stays in bounds.
  Snapshot final_snap = pipe.snapshot();
  final_snap = Snapshot::parse(ByteSpan(final_snap.serialize()));
  EXPECT_EQ(final_snap.epoch, 0u);
  EXPECT_LE(final_snap.cursor, n);
  EXPECT_EQ(final_snap.batches, delivered);
}

// Same race under a recovery policy: with on_transient = kSkipSample every
// deadline expiry quarantines instead of escalating, so *every* snapshot —
// including ones whose quiesce absorbed a stalled prefetch — must succeed,
// and the final accounting covers the whole epoch.
TEST(PipelineGuard, SnapshotRacesDeadlineExpiryUnderSkipPolicy) {
  const std::size_t n = 16;
  GuardRig rig(n);
  rig.injector.configure(fault::Site::kIoRead,
                         {.delay_probability = 0.5, .delay_seconds = 0.5});
  PipelineConfig base;
  base.batch_size = 4;
  base.prefetch = true;
  base.worker_threads = 2;
  base.shuffle = false;
  base.fault_policy.on_transient = fault::Action::kSkipSample;
  base.fault_policy.error_budget = 1u << 20;
  base.deadlines.io_read_seconds = 0.025;
  DataPipeline pipe = rig.make(base, /*inject=*/true);

  pipe.start_epoch(0);
  Batch batch;
  std::uint64_t delivered = 0;
  while (pipe.next_batch(batch)) {
    delivered += batch.samples.size();
    const Snapshot snap =
        Snapshot::parse(ByteSpan(pipe.snapshot().serialize()));
    EXPECT_EQ(snap.samples, delivered);
  }
  const Snapshot final_snap =
      Snapshot::parse(ByteSpan(pipe.snapshot().serialize()));
  EXPECT_EQ(final_snap.samples + final_snap.samples_skipped, n);
  EXPECT_GT(final_snap.samples_skipped, 0u);
  EXPECT_EQ(final_snap.quarantine.size(), final_snap.samples_skipped);
  EXPECT_GT(rig.registry.counter_value("guard.deadline_expired_total"), 0u);
}

}  // namespace
}  // namespace sciprep::guard
