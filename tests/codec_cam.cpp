// Tests for the DeepCAM differential codec: bounded lossy error, line mode
// selection, normalization fusion, layout (transpose) fusion, GPU/CPU
// equivalence, label losslessness, corruption rejection.
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "sciprep/codec/cam_codec.hpp"
#include "sciprep/common/error.hpp"
#include "sciprep/common/rng.hpp"
#include "sciprep/data/cam_gen.hpp"

namespace sciprep::codec {
namespace {

io::CamSample synthetic_sample(std::uint64_t index = 0, int h = 64, int w = 96,
                               int c = 4) {
  data::CamGenConfig cfg;
  cfg.height = h;
  cfg.width = w;
  cfg.channels = c;
  cfg.seed = 99;
  return data::CamGenerator(cfg).generate(index);
}

/// Normalized ground truth for a pixel (matches the codec's convention).
std::vector<float> normalized_reference(const io::CamSample& s) {
  std::vector<float> out(s.value_count());
  for (int c = 0; c < s.channels; ++c) {
    const float* plane = s.image.data() + static_cast<std::size_t>(c) * s.pixel_count();
    double sum = 0;
    for (std::size_t i = 0; i < s.pixel_count(); ++i) sum += plane[i];
    const double mean = sum / static_cast<double>(s.pixel_count());
    double var = 0;
    for (std::size_t i = 0; i < s.pixel_count(); ++i) {
      var += (plane[i] - mean) * (plane[i] - mean);
    }
    var /= static_cast<double>(s.pixel_count());
    const double inv = 1.0 / std::sqrt(std::max(var, 1e-12));
    for (std::size_t i = 0; i < s.pixel_count(); ++i) {
      out[static_cast<std::size_t>(c) * s.pixel_count() + i] =
          static_cast<float>((plane[i] - mean) * inv);
    }
  }
  return out;
}

TEST(CamCodec, LossyButBounded) {
  const auto sample = synthetic_sample();
  const CamCodec codec;
  const Bytes encoded = codec.encode_sample(sample);
  const TensorF16 decoded = codec.decode_sample_cpu(encoded);
  ASSERT_EQ(decoded.values.size(), sample.value_count());

  const std::vector<float> reference = normalized_reference(sample);
  // Paper §V.A: "roughly 3% of the values with larger than 10% error,
  // primarily for small values close to zero". Bound the tail at 10%.
  const double bad = fraction_above_rel_error(reference, decoded.values, 0.10);
  EXPECT_LT(bad, 0.10) << "fraction above 10% rel error";
  // And most values are much better than that.
  const double loose = fraction_above_rel_error(reference, decoded.values, 0.5);
  EXPECT_LT(loose, 0.02);
}

TEST(CamCodec, CompressesSmoothImages) {
  const auto sample = synthetic_sample(1);
  const CamCodec codec;
  const Bytes encoded = codec.encode_sample(sample);
  const double ratio = static_cast<double>(sample.byte_size()) /
                       static_cast<double>(encoded.size());
  EXPECT_GT(ratio, 2.0) << "encoded " << encoded.size() << " of "
                        << sample.byte_size();
  const CamEncodedInfo info = CamCodec::inspect(encoded);
  EXPECT_GT(info.delta_lines, info.raw_lines)
      << "smooth climate images must mostly delta-encode";
}

TEST(CamCodec, LabelsAreLossless) {
  const auto sample = synthetic_sample(2);
  const CamCodec codec;
  const TensorF16 decoded = codec.decode_sample_cpu(codec.encode_sample(sample));
  EXPECT_EQ(decoded.byte_labels, sample.labels);
}

TEST(CamCodec, GpuDecodeMatchesCpu) {
  const auto sample = synthetic_sample(3);
  const CamCodec codec;
  const Bytes encoded = codec.encode_sample(sample);
  const TensorF16 cpu = codec.decode_sample_cpu(encoded);
  sim::SimGpu gpu({.sm_count = 8, .warps_per_sm = 4});
  const TensorF16 dev = codec.decode_sample_gpu(encoded, gpu);
  ASSERT_EQ(cpu.values.size(), dev.values.size());
  for (std::size_t i = 0; i < cpu.values.size(); ++i) {
    ASSERT_EQ(cpu.values[i].bits(), dev.values[i].bits()) << "value " << i;
  }
  EXPECT_EQ(cpu.byte_labels, dev.byte_labels);
  // Delta lines create divergence the stats must expose.
  EXPECT_GT(gpu.lifetime_stats().divergent_branches, 0u);
}

TEST(CamCodec, HwcLayoutIsTransposedChw) {
  const auto sample = synthetic_sample(4, 16, 24, 3);
  const CamCodec chw_codec({}, {CamLayout::kCHW});
  const CamCodec hwc_codec({}, {CamLayout::kHWC});
  const Bytes encoded = chw_codec.encode_sample(sample);
  const TensorF16 chw = chw_codec.decode_sample_cpu(encoded);
  const TensorF16 hwc = hwc_codec.decode_sample_cpu(encoded);
  ASSERT_EQ(chw.shape, (std::vector<std::uint64_t>{3, 16, 24}));
  ASSERT_EQ(hwc.shape, (std::vector<std::uint64_t>{16, 24, 3}));
  for (int c = 0; c < 3; ++c) {
    for (int y = 0; y < 16; ++y) {
      for (int x = 0; x < 24; ++x) {
        const std::size_t ci = (static_cast<std::size_t>(c) * 16 + y) * 24 + x;
        const std::size_t hi = (static_cast<std::size_t>(y) * 24 + x) * 3 + c;
        ASSERT_EQ(chw.values[ci].bits(), hwc.values[hi].bits());
      }
    }
  }
  // GPU path honours the layout too.
  sim::SimGpu gpu({.sm_count = 4, .warps_per_sm = 2});
  const TensorF16 hwc_gpu = hwc_codec.decode_sample_gpu(encoded, gpu);
  for (std::size_t i = 0; i < hwc.values.size(); ++i) {
    ASSERT_EQ(hwc.values[i].bits(), hwc_gpu.values[i].bits());
  }
}

TEST(CamCodec, ConstantLinesCollapse) {
  io::CamSample sample;
  sample.height = 8;
  sample.width = 64;
  sample.channels = 2;
  sample.image.assign(sample.value_count(), 42.5F);
  sample.labels.assign(sample.pixel_count(), 0);
  CamEncodeOptions opt;
  opt.normalize = false;  // keep raw values observable
  const CamCodec codec(opt);
  const Bytes encoded = codec.encode_sample(sample);
  const CamEncodedInfo info = CamCodec::inspect(encoded);
  EXPECT_EQ(info.constant_lines, 16u);
  EXPECT_EQ(info.delta_lines, 0u);
  const TensorF16 decoded = codec.decode_sample_cpu(encoded);
  for (const Half h : decoded.values) {
    ASSERT_EQ(h.to_float(), 42.5F);
  }
}

TEST(CamCodec, AbruptLinesFallBackToRaw) {
  io::CamSample sample;
  sample.height = 4;
  sample.width = 128;
  sample.channels = 1;
  sample.image.resize(sample.value_count());
  Rng rng(123);
  // White noise spanning decades: differential encoding cannot win.
  for (auto& v : sample.image) {
    v = static_cast<float>(rng.normal()) *
        std::pow(10.0F, static_cast<float>(rng.uniform(-3, 3)));
  }
  sample.labels.assign(sample.pixel_count(), 0);
  const CamCodec codec;
  const CamEncodedInfo info = CamCodec::inspect(codec.encode_sample(sample));
  EXPECT_GT(info.raw_lines, 0u);
}

TEST(CamCodec, RawLinesAreFp16Exact) {
  // A raw line decodes to exactly fp16(normalized value) — same as baseline.
  io::CamSample sample;
  sample.height = 2;
  sample.width = 64;
  sample.channels = 1;
  sample.image.resize(sample.value_count());
  Rng rng(9);
  for (auto& v : sample.image) {
    v = static_cast<float>(rng.normal() * 100.0);
  }
  sample.labels.assign(sample.pixel_count(), 0);
  const CamCodec codec;
  const Bytes encoded = codec.encode_sample(sample);
  const CamEncodedInfo info = CamCodec::inspect(encoded);
  ASSERT_EQ(info.raw_lines, 2u);  // white noise lines go raw
  const TensorF16 decoded = codec.decode_sample_cpu(encoded);
  const TensorF16 reference = CamCodec::reference_preprocess_sample(sample);
  for (std::size_t i = 0; i < decoded.values.size(); ++i) {
    ASSERT_EQ(decoded.values[i].bits(), reference.values[i].bits());
  }
}

TEST(CamCodec, NoiseRemovalOnSmoothLines) {
  // A smooth ramp with tiny sensor noise: the decoded line must be closer to
  // the clean ramp than the noisy input is (the paper's "effectively removes
  // noises" claim).
  const int w = 512;
  io::CamSample sample;
  sample.height = 1;
  sample.width = w;
  sample.channels = 1;
  sample.image.resize(static_cast<std::size_t>(w));
  sample.labels.assign(static_cast<std::size_t>(w), 0);
  std::vector<float> clean(static_cast<std::size_t>(w));
  Rng rng(17);
  for (int x = 0; x < w; ++x) {
    clean[static_cast<std::size_t>(x)] =
        100.0F + 0.5F * static_cast<float>(x) +
        10.0F * std::sin(static_cast<float>(x) * 0.02F);
    sample.image[static_cast<std::size_t>(x)] =
        clean[static_cast<std::size_t>(x)] +
        1e-4F * static_cast<float>(rng.normal());
  }
  CamEncodeOptions opt;
  opt.normalize = false;
  const CamCodec codec(opt);
  const TensorF16 decoded = codec.decode_sample_cpu(codec.encode_sample(sample));
  double err_decoded = 0;
  for (int x = 0; x < w; ++x) {
    err_decoded += std::abs(decoded.values[static_cast<std::size_t>(x)].to_float() -
                            clean[static_cast<std::size_t>(x)]);
  }
  // FP16 quantization at magnitude ~300 has ulp ~0.25; the decoded signal
  // must stay within a few ulp of the clean ramp on average.
  EXPECT_LT(err_decoded / w, 0.5);
}

TEST(CamCodec, ReconstructionDoesNotDrift) {
  // Long smooth line: per-value error must not grow with x (the encoder
  // tracks its own reconstruction).
  const int w = 4096;
  io::CamSample sample;
  sample.height = 1;
  sample.width = w;
  sample.channels = 1;
  sample.image.resize(static_cast<std::size_t>(w));
  sample.labels.assign(static_cast<std::size_t>(w), 0);
  for (int x = 0; x < w; ++x) {
    sample.image[static_cast<std::size_t>(x)] =
        std::sin(static_cast<float>(x) * 0.01F) * 50.0F + 200.0F;
  }
  CamEncodeOptions opt;
  opt.normalize = false;
  const CamCodec codec(opt);
  const TensorF16 decoded = codec.decode_sample_cpu(codec.encode_sample(sample));
  double head_err = 0;
  double tail_err = 0;
  for (int x = 0; x < 256; ++x) {
    head_err += std::abs(decoded.values[static_cast<std::size_t>(x)].to_float() -
                         sample.image[static_cast<std::size_t>(x)]);
    tail_err += std::abs(
        decoded.values[static_cast<std::size_t>(w - 1 - x)].to_float() -
        sample.image[static_cast<std::size_t>(w - 1 - x)]);
  }
  EXPECT_LT(tail_err, head_err * 4 + 32.0);
}

TEST(CamCodec, NormalizationKeepsLargeMagnitudesInFp16Range) {
  // Pressure-scale channels (~1e5) overflow FP16 without the fused
  // normalization; with it, every decoded value must be finite.
  const auto sample = synthetic_sample(5, 32, 64, 16);
  const CamCodec codec;
  const TensorF16 decoded = codec.decode_sample_cpu(codec.encode_sample(sample));
  for (const Half h : decoded.values) {
    ASSERT_FALSE(h.is_inf());
    ASSERT_FALSE(h.is_nan());
  }
}

TEST(CamCodec, RejectsCorruptMagic) {
  const auto sample = synthetic_sample(6, 16, 32, 2);
  const CamCodec codec;
  Bytes encoded = codec.encode_sample(sample);
  encoded[1] ^= 0xFF;
  EXPECT_THROW(codec.decode_sample_cpu(encoded), FormatError);
}

TEST(CamCodec, RejectsTruncation) {
  const auto sample = synthetic_sample(6, 16, 32, 2);
  const CamCodec codec;
  const Bytes encoded = codec.encode_sample(sample);
  EXPECT_THROW(
      codec.decode_sample_cpu(ByteSpan(encoded).first(encoded.size() - 7)),
      FormatError);
}

TEST(CamCodec, RejectsDegenerateWidth) {
  io::CamSample sample;
  sample.height = 2;
  sample.width = 1;
  sample.channels = 1;
  sample.image.assign(2, 0.0F);
  sample.labels.assign(2, 0);
  const CamCodec codec;
  EXPECT_THROW(codec.encode_sample(sample), ConfigError);
}

TEST(CamCodec, BadOptionsRejected) {
  CamEncodeOptions opt;
  opt.max_segment_length = 1;
  EXPECT_THROW(CamCodec{opt}, ConfigError);
}

TEST(CamCodec, PluginInterfaceWorksEndToEnd) {
  const auto sample = synthetic_sample(7, 32, 48, 4);
  const CamCodec codec;
  const SampleCodec& plugin = codec;
  EXPECT_EQ(plugin.name(), "cam-delta");
  const Bytes raw = sample.serialize();
  const Bytes encoded = plugin.encode(raw);
  EXPECT_LT(encoded.size(), raw.size());
  const TensorF16 decoded = plugin.decode_cpu(encoded);
  const TensorF16 reference = plugin.reference_preprocess(raw);
  ASSERT_EQ(decoded.values.size(), reference.values.size());
  std::vector<float> ref_floats(reference.values.size());
  for (std::size_t i = 0; i < reference.values.size(); ++i) {
    ref_floats[i] = reference.values[i].to_float();
  }
  EXPECT_LT(fraction_above_rel_error(ref_floats, decoded.values, 0.10), 0.10);
}

// Property sweep: bounded error across samples and image sizes.
class CamErrorSweep
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, int>> {};

TEST_P(CamErrorSweep, ErrorTailBounded) {
  const std::uint64_t index = std::get<0>(GetParam());
  const int width = std::get<1>(GetParam());
  const auto sample = synthetic_sample(index, 48, width, 8);
  const CamCodec codec;
  const TensorF16 decoded = codec.decode_sample_cpu(codec.encode_sample(sample));
  const std::vector<float> reference = normalized_reference(sample);
  EXPECT_LT(fraction_above_rel_error(reference, decoded.values, 0.10), 0.10);
}

INSTANTIATE_TEST_SUITE_P(SamplesAndWidths, CamErrorSweep,
                         ::testing::Combine(::testing::Values<std::uint64_t>(0,
                                                                             1,
                                                                             2),
                                            ::testing::Values(64, 96, 160)));

TEST(CodecRegistry, RegisterAndLookup) {
  auto& registry = CodecRegistry::instance();
  const auto before = registry.names();
  const bool has_cam = std::find(before.begin(), before.end(), "cam-delta") !=
                       before.end();
  if (!has_cam) {
    registry.register_codec(std::make_unique<CamCodec>());
  }
  EXPECT_EQ(registry.get("cam-delta").name(), "cam-delta");
  EXPECT_THROW(registry.get("nope"), ConfigError);
  EXPECT_THROW(registry.register_codec(std::make_unique<CamCodec>()),
               ConfigError);  // duplicate
}

TEST(FractionAboveRelError, CountsCorrectly) {
  const std::vector<float> ref = {1.0F, 2.0F, 0.0F, -4.0F};
  const std::vector<Half> dec = {Half(1.05F), Half(2.5F), Half(0.0F),
                                 Half(-4.0F)};
  // 1.05 within 10%, 2.5 exceeds, 0->0 fine, -4 exact: 1 of 4.
  EXPECT_DOUBLE_EQ(fraction_above_rel_error(ref, dec, 0.10), 0.25);
}

}  // namespace
}  // namespace sciprep::codec
